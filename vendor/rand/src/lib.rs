//! Offline stub of the `rand` crate — see `vendor/README.md`.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256\*\* seeded via
//! SplitMix64), the [`SeedableRng`] seeding trait and the [`RngExt`]
//! range-sampling extension. The generated stream is stable across builds
//! of this workspace but does not match the real `rand` crate's `StdRng`.

/// Core random-number generation: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic seeding from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*,
    /// state-seeded with SplitMix64 exactly as the xoshiro reference code
    /// recommends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u64;
                // Lemire-style unbiased bounded sampling via rejection.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let m = rng.next_u64() as u128 * span as u128;
                    if m as u64 >= threshold {
                        return self.start.wrapping_add((m >> 64) as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let r = start..(end.wrapping_add(1));
                r.sample(rng)
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u8, i32, i64);

/// Extension methods for every [`RngCore`]: high-level sampling.
pub trait RngExt: RngCore {
    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias of [`RngExt`] matching the real crate's trait name.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for i in 1usize..200 {
            let x = rng.random_range(0..i);
            assert!(x < i);
            let y = rng.random_range(0..=i);
            assert!(y <= i);
            let z = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
