//! The customary glob import: `use proptest::prelude::*;`.

pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::Config as ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Namespaced access to strategy constructors (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}
