//! Test execution: configuration and the case-running loop.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Configuration of a [`TestRunner`]; `ProptestConfig` in the prelude.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Unused by the stub (no shrinking); kept for API compatibility.
    pub max_shrink_iters: u32,
    /// Seed of the deterministic case generator.
    pub rng_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 0,
            rng_seed: 0x5EED_CA5E_5EED_CA5E,
        }
    }
}

/// The random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// Underlying generator (public to the crate's strategy impls only).
    pub(crate) rng: StdRng,
}

/// Runs a strategy's generated cases through a test closure.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner for `config`.
    pub fn new(config: Config) -> Self {
        let rng = TestRng {
            rng: StdRng::seed_from_u64(config.rng_seed),
        };
        TestRunner { config, rng }
    }

    /// Generates [`Config::cases`] values and calls `test` on each.
    ///
    /// # Panics
    ///
    /// Re-raises the first failing case's panic after printing the
    /// generated input (the stub does not shrink).
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value),
    {
        for case in 0..self.config.cases {
            let value = strategy.new_value(&mut self.rng);
            let shown = format!("{value:?}");
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| test(value))) {
                eprintln!(
                    "proptest case {case}/{} failed (no shrinking in the offline stub).\n\
                     Input: {shown}",
                    self.config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}
