//! Strategies for collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// Acceptable element counts for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
