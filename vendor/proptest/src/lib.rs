//! Offline stub of the `proptest` crate — see `vendor/README.md`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] test macro, integer-range / tuple / [`strategy::Just`] /
//! mapped / flat-mapped / weighted-union strategies, sized collections via
//! [`collection::vec`], and `prop_assert*` assertions.
//!
//! Cases are generated from a fixed-seed deterministic generator, so runs
//! are reproducible. Unlike real proptest there is **no shrinking**: on
//! failure the offending input is printed as generated.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// An optional `#![proptest_config(expr)]` header applies a
/// [`test_runner::Config`] to every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)+);
                runner.run(&strategy, |($($pat,)+)| $body);
            }
        )*
    };
}

/// Asserts a condition inside a property test (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Combines strategies into a weighted (or unweighted) random choice.
///
/// `prop_oneof![3 => a, 1 => b]` picks `a` three times as often as `b`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
