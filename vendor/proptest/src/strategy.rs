//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::RngExt;

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates the final value from
    /// the strategy `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core of [`Strategy`], used behind [`BoxedStrategy`].
trait DynStrategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_new_value(rng)
    }
}

/// Always yields a clone of one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Weighted random choice between type-erased strategies, built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct WeightedUnion<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> std::fmt::Debug for WeightedUnion<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WeightedUnion({} arms)", self.arms.len())
    }
}

impl<V> WeightedUnion<V> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or every weight is zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        WeightedUnion { arms, total }
    }
}

impl<V> Strategy for WeightedUnion<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum covered the sampled value")
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range!(u8, u32, u64, usize, i32, i64);

macro_rules! impl_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}
