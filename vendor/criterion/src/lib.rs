//! Offline stub of the `criterion` crate — see `vendor/README.md`.
//!
//! Runs each benchmark for a short fixed sampling loop and prints the mean
//! wall-clock time per iteration. When invoked by `cargo test` (which
//! passes `--test` to `harness = false` bench binaries) each benchmark is
//! executed exactly once, so the test suite stays fast while still
//! exercising every bench body.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark: a function name plus a parameter rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (ignored in `--test` mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let iters = if self.criterion.test_mode {
            1
        } else {
            self.criterion.sample_size as u64
        };
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        let mean = b.elapsed.checked_div(iters as u32).unwrap_or_default();
        println!("{}/{}: {} iters, mean {:?}", self.name, id, iters, mean);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness = false bench binaries with `--test`;
        // real criterion uses that flag to run each bench once.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
