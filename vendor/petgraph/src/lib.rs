//! Offline stub of the `petgraph` crate — see `vendor/README.md`.
//!
//! Implements the directed-graph subset the TEDG needs: node/edge
//! insertion, counts, indexing by [`graph::NodeIndex`], and iteration over
//! a node's outgoing edges through the [`visit::EdgeRef`] abstraction.

/// Graph data structures.
pub mod graph {
    use std::ops::Index;

    /// Opaque handle of a node inside a [`DiGraph`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct NodeIndex(usize);

    impl NodeIndex {
        /// Creates an index from a raw position.
        pub fn new(ix: usize) -> Self {
            NodeIndex(ix)
        }

        /// The raw position of the node in insertion order.
        pub fn index(self) -> usize {
            self.0
        }
    }

    /// Opaque handle of an edge inside a [`DiGraph`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct EdgeIndex(usize);

    impl EdgeIndex {
        /// The raw position of the edge in insertion order.
        pub fn index(self) -> usize {
            self.0
        }
    }

    #[derive(Debug, Clone)]
    struct EdgeData<E> {
        source: usize,
        target: usize,
        weight: E,
    }

    /// A growable directed graph with node weights `N` and edge weights `E`.
    #[derive(Debug, Clone, Default)]
    pub struct DiGraph<N, E> {
        nodes: Vec<N>,
        edges: Vec<EdgeData<E>>,
        /// Outgoing edge ids per node, in insertion order.
        out: Vec<Vec<usize>>,
    }

    impl<N, E> DiGraph<N, E> {
        /// Creates an empty graph.
        pub fn new() -> Self {
            DiGraph {
                nodes: Vec::new(),
                edges: Vec::new(),
                out: Vec::new(),
            }
        }

        /// Adds a node and returns its index.
        pub fn add_node(&mut self, weight: N) -> NodeIndex {
            self.nodes.push(weight);
            self.out.push(Vec::new());
            NodeIndex(self.nodes.len() - 1)
        }

        /// Adds a directed edge `a -> b` and returns its index.
        ///
        /// # Panics
        ///
        /// Panics if either endpoint is not a node of this graph.
        pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, weight: E) -> EdgeIndex {
            assert!(
                a.0 < self.nodes.len() && b.0 < self.nodes.len(),
                "endpoint out of bounds"
            );
            let id = self.edges.len();
            self.edges.push(EdgeData {
                source: a.0,
                target: b.0,
                weight,
            });
            self.out[a.0].push(id);
            EdgeIndex(id)
        }

        /// Number of nodes.
        pub fn node_count(&self) -> usize {
            self.nodes.len()
        }

        /// Number of edges.
        pub fn edge_count(&self) -> usize {
            self.edges.len()
        }

        /// The node weight behind `ix`, if in bounds.
        pub fn node_weight(&self, ix: NodeIndex) -> Option<&N> {
            self.nodes.get(ix.0)
        }

        /// Iterates over the outgoing edges of `a` in insertion order.
        pub fn edges(&self, a: NodeIndex) -> Edges<'_, E> {
            Edges {
                graph_edges: &self.edges,
                ids: self.out.get(a.0).map(|v| v.as_slice()).unwrap_or(&[]),
                pos: 0,
            }
        }
    }

    impl<N, E> Index<NodeIndex> for DiGraph<N, E> {
        type Output = N;

        fn index(&self, ix: NodeIndex) -> &N {
            &self.nodes[ix.0]
        }
    }

    /// A borrowed view of one edge, yielded by [`DiGraph::edges`].
    #[derive(Debug)]
    pub struct EdgeReference<'a, E> {
        id: usize,
        source: usize,
        target: usize,
        weight: &'a E,
    }

    impl<E> Clone for EdgeReference<'_, E> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<E> Copy for EdgeReference<'_, E> {}

    impl<'a, E> crate::visit::EdgeRef for EdgeReference<'a, E> {
        type NodeId = NodeIndex;
        type EdgeId = EdgeIndex;
        type Weight = E;

        fn source(&self) -> NodeIndex {
            NodeIndex(self.source)
        }

        fn target(&self) -> NodeIndex {
            NodeIndex(self.target)
        }

        fn weight(&self) -> &'a E {
            self.weight
        }

        fn id(&self) -> EdgeIndex {
            EdgeIndex(self.id)
        }
    }

    /// Iterator over a node's outgoing edges.
    #[derive(Debug, Clone)]
    pub struct Edges<'a, E> {
        graph_edges: &'a [EdgeData<E>],
        ids: &'a [usize],
        pos: usize,
    }

    impl<'a, E> Iterator for Edges<'a, E> {
        type Item = EdgeReference<'a, E>;

        fn next(&mut self) -> Option<Self::Item> {
            let id = *self.ids.get(self.pos)?;
            self.pos += 1;
            let e = &self.graph_edges[id];
            Some(EdgeReference {
                id,
                source: e.source,
                target: e.target,
                weight: &e.weight,
            })
        }
    }
}

/// Graph-traversal traits.
pub mod visit {
    /// A reference to a graph edge: endpoints plus weight.
    pub trait EdgeRef: Copy {
        /// Node handle type.
        type NodeId;
        /// Edge handle type.
        type EdgeId;
        /// Edge weight type.
        type Weight;

        /// The edge's source node.
        fn source(&self) -> Self::NodeId;
        /// The edge's target node.
        fn target(&self) -> Self::NodeId;
        /// The edge's weight.
        fn weight(&self) -> &Self::Weight;
        /// The edge's own handle.
        fn id(&self) -> Self::EdgeId;
    }
}

#[cfg(test)]
mod tests {
    use super::graph::DiGraph;
    use super::visit::EdgeRef;

    #[test]
    fn build_and_walk() {
        let mut g: DiGraph<&'static str, u32> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, c, 3);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g[b], "b");
        let out: Vec<(&str, u32)> = g.edges(a).map(|e| (g[e.target()], *e.weight())).collect();
        assert_eq!(out, vec![("b", 1), ("c", 2)]);
        assert!(g.edges(c).next().is_none());
        assert_eq!(g.edges(b).next().unwrap().source(), b);
    }
}
