//! Context-word accounting invariants (Section III-C): the mapper's
//! counts, the `KernelMapping` arithmetic and the assembler's definitive
//! word counts must all agree, and the fit inequality must hold for every
//! memory-aware mapping.

use cmam::arch::{CgraConfig, TileId};
use cmam::core::{FlowVariant, Mapper};
use cmam::isa::assemble;

#[test]
fn mapping_word_arithmetic_matches_assembler() {
    // For every kernel and flow, KernelMapping::context_words (ops +
    // moves + idle runs) must equal the assembler's per-tile word count
    // (instructions + compressed pnops).
    for spec in cmam::kernels::all() {
        for (variant, config) in [
            (FlowVariant::Basic, CgraConfig::hom64()),
            (FlowVariant::Cab, CgraConfig::het1()),
        ] {
            let mapper = Mapper::new(variant.options());
            let result = mapper.map(&spec.cdfg, &config).expect("maps");
            let (_, report) = assemble(&spec.cdfg, &result.mapping, &config).expect("assembles");
            for i in 0..16 {
                let t = TileId(i);
                assert_eq!(
                    result.mapping.context_words(t),
                    report.words(t),
                    "{} / {variant}: tile {t}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn section_3c_inequality_holds_for_aware_mappings() {
    // n(Mo) + n(pnop) <= n(I) per tile, and the global sum inequality.
    for spec in cmam::kernels::all() {
        for config in [CgraConfig::het1(), CgraConfig::het2()] {
            let mapper = Mapper::new(FlowVariant::Cab.options());
            let result = mapper
                .map(&spec.cdfg, &config)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let (_, report) = assemble(&spec.cdfg, &result.mapping, &config).expect("fits");
            let mut total_words = 0;
            for (t, tile) in config.tiles() {
                let (ops, moves, pnops) = report.per_tile[t.0];
                assert!(
                    ops + moves + pnops <= tile.cm_words,
                    "{}: {t} overflows",
                    spec.name
                );
                total_words += ops + moves + pnops;
            }
            assert!(total_words <= config.total_cm_words());
        }
    }
}

#[test]
fn move_and_pnop_totals_are_consistent() {
    let spec = cmam::kernels::fft::spec();
    let config = CgraConfig::hom64();
    let mapper = Mapper::new(FlowVariant::Basic.options());
    let result = mapper.map(&spec.cdfg, &config).expect("maps");
    let (_, report) = assemble(&spec.cdfg, &result.mapping, &config).expect("assembles");
    assert_eq!(result.mapping.total_moves(), report.total_moves());
    assert_eq!(result.mapping.total_pnops(16), report.total_pnops());
    // Every placed op instance is an operation word (no op lost).
    let placed_ops: usize = result.mapping.blocks.iter().map(|b| b.ops.len()).sum();
    assert_eq!(placed_ops, report.total_ops());
}

#[test]
fn basic_flow_reports_uneven_distribution() {
    // The Fig 2 premise: under the basic flow the hottest tile uses at
    // least twice the words of the coldest.
    let spec = cmam::kernels::matm::spec();
    let config = CgraConfig::hom64();
    let mapper = Mapper::new(FlowVariant::Basic.options());
    let result = mapper.map(&spec.cdfg, &config).expect("maps");
    let (binary, _) = assemble(&spec.cdfg, &result.mapping, &config).expect("assembles");
    let words: Vec<usize> = (0..16).map(|i| binary.context_words(TileId(i))).collect();
    let max = *words.iter().max().unwrap();
    let min = *words.iter().min().unwrap();
    assert!(
        max >= 2 * min,
        "expected hot spots, got max {max} / min {min}"
    );
}
