//! Pinned corpus of generated kernels: a small, committed golden file
//! over one fixed kernel per generator profile, so a regression anywhere
//! in generate → map → assemble → simulate is caught by `cargo test`
//! without re-running the full `gen_suite` sweep.
//!
//! Each line digests the *observable pipeline output* for one
//! (kernel, flow, config) job: cycle count, the assembled program's
//! context listing, the final memory image and the headline simulator
//! counters. The digests are plain FNV-1a — deliberately **not** the
//! engine's salted content hash, which changes whenever toolchain source
//! changes (that salt exists to invalidate caches, exactly what a
//! committed golden must not do).
//!
//! Regenerate (only when an *intentional* generator or pipeline change
//! lands) with:
//!
//! ```text
//! CMAM_REGEN_GOLDEN=1 cargo test --test gen_golden
//! ```

use cmam::arch::CgraConfig;
use cmam::cdfg::generate::GenParams;
use cmam::core::{FlowVariant, Mapper};
use cmam::isa::assemble;
use cmam::kernels::{generated_spec, kernel_seeds};
use cmam::sim::{simulate, SimOptions};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Root seed of the pinned corpus (one derived seed per profile).
const CORPUS_SEED: u64 = 0x601D;

/// Plain FNV-1a (same construction as the mapper/simulator goldens).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// One observed golden line:
///
/// `<kernel> <variant> <config> ok <cycles> <listing> <mem> <stats>`
/// `<kernel> <variant> <config> maperr <message with spaces escaped>`
fn observe(params: &GenParams, seed: u64, variant: FlowVariant, config: &CgraConfig) -> String {
    let spec = generated_spec(params, seed);
    let head = format!("{} {variant} {}", spec.name, config.name());
    let result = match Mapper::new(variant.options()).map(&spec.cdfg, config) {
        Ok(r) => r,
        Err(e) => return format!("{head} maperr {}", e.to_string().replace(' ', "_")),
    };
    let (binary, _) = assemble(&spec.cdfg, &result.mapping, config).expect("assembles");

    let mut mem = spec.mem.clone();
    let stats = simulate(&binary, config, &mut mem, SimOptions::default()).expect("simulates");
    spec.check(&mem)
        .unwrap_or_else(|(i, got, want)| panic!("{head}: mem[{i}] = {got}, want {want}"));

    let mut listing = Fnv::new();
    listing.bytes(cmam::isa::listing::context_listing(&binary).as_bytes());
    let mut memh = Fnv::new();
    for &w in &mem {
        memh.u64(w as u32 as u64);
    }
    let mut stat = Fnv::new();
    stat.u64(stats.cycles);
    stat.u64(stats.stall_cycles);
    stat.u64(stats.total_instructions());
    for &e in &stats.block_execs {
        stat.u64(e);
    }
    format!(
        "{head} ok {} {:016x} {:016x} {:016x}",
        stats.cycles, listing.0, memh.0, stat.0
    )
}

fn run_suite() -> String {
    let seeds = kernel_seeds(CORPUS_SEED, GenParams::PROFILES.len());
    let matrix = [
        (FlowVariant::Basic, CgraConfig::hom64()),
        (FlowVariant::Cab, CgraConfig::het1()),
    ];
    let mut out = String::new();
    for (i, name) in GenParams::PROFILES.iter().enumerate() {
        let params = GenParams::profile(name).expect("known profile");
        for (variant, config) in &matrix {
            let _ = writeln!(out, "{}", observe(&params, seeds[i], *variant, config));
        }
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("generated.golden")
}

#[test]
fn generated_corpus_matches_golden() {
    let path = golden_path();
    let observed = run_suite();
    if std::env::var_os("CMAM_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &observed).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             CMAM_REGEN_GOLDEN=1 cargo test --test gen_golden",
            path.display()
        )
    });
    let golden_lines: Vec<&str> = golden.lines().collect();
    let observed_lines: Vec<&str> = observed.lines().collect();
    assert_eq!(
        golden_lines.len(),
        observed_lines.len(),
        "golden file has {} lines, suite produced {}",
        golden_lines.len(),
        observed_lines.len()
    );
    for (g, o) in golden_lines.iter().zip(&observed_lines) {
        assert_eq!(g, o, "generated-corpus divergence");
    }
}
