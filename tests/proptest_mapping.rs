//! Property-based end-to-end test over *generated* kernels: seeded CDFGs
//! from `cmam_cdfg::generate` (multi-block, loops, branches, symbol
//! pressure — not just straight-line code) are mapped, assembled and
//! simulated, and the CGRA's memory image must always equal the reference
//! interpreter's.
//!
//! The strategy draws `(profile, seed)` pairs instead of hand-rolled op
//! lists: every case is a valid kernel by construction (the old generator
//! wasted cases on rejected graphs), so the case count is ~3x higher for
//! similar wall time.

use cmam::arch::CgraConfig;
use cmam::cdfg::generate::GenParams;
use cmam::core::{FlowVariant, Mapper};
use cmam::isa::assemble;
use cmam::kernels::generated_spec;
use cmam::sim::{simulate, SimOptions};
use proptest::prelude::*;

/// `(params, seed)` over every named profile and the full seed space.
fn kernels() -> impl Strategy<Value = (GenParams, u64)> {
    (0..GenParams::PROFILES.len(), 0u64..u64::MAX).prop_map(|(i, seed)| {
        (
            GenParams::profile(GenParams::PROFILES[i]).expect("known profile"),
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, // each case maps + simulates a whole kernel
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_kernels_simulate_to_golden((params, seed) in kernels()) {
        let spec = generated_spec(&params, seed);
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(FlowVariant::Basic.options());
        let result = mapper
            .map(&spec.cdfg, &config)
            .expect("basic flow maps generated kernels on the unconstrained config");
        let (binary, report) = assemble(&spec.cdfg, &result.mapping, &config).expect("assembles");

        // CGRA execution against the interpreter golden (spec.expected).
        let mut mem = spec.mem.clone();
        simulate(&binary, &config, &mut mem, SimOptions::default()).expect("simulates");
        spec.check(&mem).unwrap_or_else(|(i, got, want)| {
            panic!("{}: mem[{i}] = {got}, want {want}", spec.name)
        });

        // Accounting invariants hold for arbitrary programs too.
        for i in 0..16 {
            let t = cmam::arch::TileId(i);
            prop_assert_eq!(result.mapping.context_words(t), report.words(t));
        }
    }

    #[test]
    fn random_kernels_map_context_aware_on_het1((params, seed) in kernels()) {
        let spec = generated_spec(&params, seed);
        let config = CgraConfig::het1();
        let mapper = Mapper::new(FlowVariant::Cab.options());
        // A generated kernel can legitimately exceed HET1's context
        // memories; what must *never* happen is a returned mapping that
        // overflows them.
        let result = match mapper.map(&spec.cdfg, &config) {
            Ok(r) => r,
            Err(_) => return,
        };
        let (_, report) = assemble(&spec.cdfg, &result.mapping, &config).expect("fits");
        for (t, tile) in config.tiles() {
            prop_assert!(report.words(t) <= tile.cm_words);
        }
    }
}
