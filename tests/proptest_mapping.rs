//! Property-based end-to-end test: random straight-line kernels are
//! mapped, assembled and simulated, and the CGRA's memory image must
//! always equal the reference interpreter's. This exercises the binding,
//! routing, re-computation, register allocation and simulator against
//! arbitrary data-flow shapes, not just the seven paper kernels.

use cmam::arch::CgraConfig;
use cmam::cdfg::{interp, Cdfg, CdfgBuilder, Opcode, ValueId};
use cmam::core::{FlowVariant, Mapper};
use cmam::isa::assemble;
use cmam::sim::{simulate, SimOptions};
use proptest::prelude::*;

/// One randomly generated operation: opcode selector plus operand picks.
#[derive(Debug, Clone)]
struct GenOp {
    kind: u8,
    a: usize,
    b: usize,
    c: usize,
    imm: i32,
}

fn gen_ops(max: usize) -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        (0u8..8, 0usize..64, 0usize..64, 0usize..64, -20i32..20)
            .prop_map(|(kind, a, b, c, imm)| GenOp { kind, a, b, c, imm }),
        1..max,
    )
}

/// Builds a single-block CDFG from the generated recipe. Values are drawn
/// from earlier results (modulo indexing) or fresh constants; a few loads
/// read from the low 16 memory words; the last value is stored to word 40.
fn build(ops: &[GenOp]) -> Cdfg {
    let mut b = CdfgBuilder::new("prop");
    let bb = b.block("b0");
    b.select(bb);
    let mut values: Vec<ValueId> = Vec::new();
    let pick = |values: &[ValueId], b: &mut CdfgBuilder, idx: usize, imm: i32| -> ValueId {
        if values.is_empty() || idx % 3 == 0 {
            b.constant(imm)
        } else {
            values[idx % values.len()]
        }
    };
    for g in ops {
        let v = match g.kind {
            0 => {
                let addr = b.constant((g.a % 16) as i32);
                b.load_name(addr, "m")
            }
            1 => {
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, g.imm.wrapping_add(1));
                b.op(Opcode::Add, &[x, y])
            }
            2 => {
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, 3);
                b.op(Opcode::Mul, &[x, y])
            }
            3 => {
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, g.imm);
                b.op(Opcode::Sub, &[x, y])
            }
            4 => {
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, g.imm);
                b.op(Opcode::Xor, &[x, y])
            }
            5 => {
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, g.imm);
                b.op(Opcode::Min, &[x, y])
            }
            6 => {
                let cnd = pick(&values, &mut b, g.c, 1);
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, g.imm);
                b.op(Opcode::Select, &[cnd, x, y])
            }
            _ => {
                let x = pick(&values, &mut b, g.a, g.imm);
                b.op(Opcode::Mov, &[x])
            }
        };
        values.push(v);
    }
    let last = *values.last().expect("at least one op");
    let out = b.constant(40);
    b.store(out, last, "out");
    b.ret();
    b.finish().expect("generated cdfg is valid")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case maps + simulates a whole kernel
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_kernels_simulate_to_golden(ops in gen_ops(28)) {
        let cdfg = build(&ops);
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(FlowVariant::Basic.options());
        let result = mapper.map(&cdfg, &config).expect("basic flow maps straight-line code");
        let (binary, report) = assemble(&cdfg, &result.mapping, &config).expect("assembles");

        // Golden execution.
        let mut golden = vec![7i32; 64];
        interp::run(&cdfg, &mut golden, 1_000_000).expect("interprets");

        // CGRA execution.
        let mut mem = vec![7i32; 64];
        simulate(&binary, &config, &mut mem, SimOptions::default()).expect("simulates");

        prop_assert_eq!(mem, golden);

        // Accounting invariants hold for arbitrary programs too.
        for i in 0..16 {
            let t = cmam::arch::TileId(i);
            prop_assert_eq!(result.mapping.context_words(t), report.words(t));
        }
    }

    #[test]
    fn random_kernels_map_context_aware_on_het1(ops in gen_ops(16)) {
        let cdfg = build(&ops);
        let config = CgraConfig::het1();
        let mapper = Mapper::new(FlowVariant::Cab.options());
        let result = mapper.map(&cdfg, &config).expect("aware flow maps small kernels");
        let (_, report) = assemble(&cdfg, &result.mapping, &config).expect("fits");
        for (t, tile) in config.tiles() {
            prop_assert!(report.words(t) <= tile.cm_words);
        }
    }
}
