//! Experiment-shape assertions: cheap versions of the headline claims,
//! run in CI so regressions in the mapper or the models are caught
//! immediately. (The full figures come from the `cmam-bench` binaries.)

use cmam::arch::CgraConfig;
use cmam::core::{FlowVariant, Mapper};
use cmam::cpu::CpuModel;
use cmam::energy::{cgra_energy, cpu_energy, EnergyParams};
use cmam::isa::assemble;
use cmam::sim::{simulate, SimOptions};

struct Run {
    cycles: u64,
    energy_uj: f64,
}

fn run(spec: &cmam::kernels::KernelSpec, variant: FlowVariant, config: &CgraConfig) -> Run {
    let mapper = Mapper::new(variant.options());
    let result = mapper.map(&spec.cdfg, config).expect("maps");
    let (binary, _) = assemble(&spec.cdfg, &result.mapping, config).expect("fits");
    let mut mem = spec.mem.clone();
    let stats = simulate(&binary, config, &mut mem, SimOptions::default()).expect("simulates");
    spec.check(&mem).expect("correct");
    let e = cgra_energy(&EnergyParams::default(), config, &stats, 0.25);
    Run {
        cycles: stats.cycles,
        energy_uj: e.total(),
    }
}

/// Table II headline: the context-aware mapping on HET2 beats the basic
/// mapping on HOM64 in energy for every kernel, with at least a 1.4x
/// average gain, at comparable latency.
#[test]
fn context_aware_energy_gain_over_basic() {
    let hom64 = CgraConfig::hom64();
    let het2 = CgraConfig::het2();
    let mut gains = Vec::new();
    for spec in cmam::kernels::all() {
        let basic = run(&spec, FlowVariant::Basic, &hom64);
        let aware = run(&spec, FlowVariant::Cab, &het2);
        let gain = basic.energy_uj / aware.energy_uj;
        assert!(gain > 1.0, "{}: gain {gain}", spec.name);
        // Latency stays comparable (within 50% as in Figs 6-8).
        let lat = aware.cycles as f64 / basic.cycles as f64;
        assert!(lat < 1.5, "{}: latency ratio {lat}", spec.name);
        gains.push(gain);
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    assert!(avg > 1.4, "average energy gain {avg} (paper: 2.3x)");
}

/// Fig 10 headline: every kernel runs several times faster on the CGRA
/// than on the CPU, under both flows.
#[test]
fn cgra_speedup_over_cpu() {
    for spec in cmam::kernels::all() {
        let mut mem = spec.mem.clone();
        let (cpu, _) = CpuModel::default()
            .run(&spec.cdfg, &mut mem, 100_000_000)
            .expect("cpu runs");
        let aware = run(&spec, FlowVariant::Cab, &CgraConfig::het2());
        let speedup = cpu.cycles as f64 / aware.cycles as f64;
        assert!(speedup > 2.0, "{}: speed-up {speedup}", spec.name);
    }
}

/// Table II headline vs the CPU: the context-aware CGRA also wins in
/// energy against the scalar core, for every kernel.
#[test]
fn cgra_energy_gain_over_cpu() {
    for spec in cmam::kernels::all() {
        let mut mem = spec.mem.clone();
        let (cpu, _) = CpuModel::default()
            .run(&spec.cdfg, &mut mem, 100_000_000)
            .expect("cpu runs");
        let cpu_uj = cpu_energy(&EnergyParams::default(), &cpu).total();
        let aware = run(&spec, FlowVariant::Cab, &CgraConfig::het2());
        let gain = cpu_uj / aware.energy_uj;
        assert!(gain > 2.0, "{}: energy gain {gain}", spec.name);
    }
}

/// Table I structural claim: the heterogeneous configurations halve (or
/// nearly halve) the total context memory of HOM64.
#[test]
fn het_configs_halve_context_memory() {
    let hom64 = CgraConfig::hom64().total_cm_words() as f64;
    assert_eq!(CgraConfig::het2().total_cm_words() as f64, hom64 / 2.0);
    assert!(CgraConfig::het1().total_cm_words() as f64 <= 0.6 * hom64);
}

/// Fig 11 shape: area ordering CPU < HET2 <= HET1 < HOM64.
#[test]
fn area_ordering_matches_fig11() {
    use cmam::energy::{cgra_area, cpu_area, AreaParams};
    let p = AreaParams::default();
    let cpu = cpu_area(&p).total();
    let hom64 = cgra_area(&p, &CgraConfig::hom64()).total();
    let het1 = cgra_area(&p, &CgraConfig::het1()).total();
    let het2 = cgra_area(&p, &CgraConfig::het2()).total();
    assert!(cpu < het2 && het2 <= het1 && het1 < hom64);
}

/// The mapper is deterministic: same seed, same mapping — across kernels
/// and flows.
#[test]
fn mapping_determinism_across_flows() {
    let spec = cmam::kernels::dc::spec();
    for variant in [FlowVariant::Basic, FlowVariant::Cab] {
        let config = CgraConfig::het1();
        let a = Mapper::new(variant.options())
            .map(&spec.cdfg, &config)
            .unwrap();
        let b = Mapper::new(variant.options())
            .map(&spec.cdfg, &config)
            .unwrap();
        assert_eq!(a.mapping, b.mapping, "{variant}");
    }
}
