//! Cross-checks the mapper's reachability arithmetic against the
//! *materialised* time-extended directed graph (TEDG) of Section III-A:
//! every direct (move-free) producer→consumer edge of a real mapping must
//! correspond to a value-flow path in the TEDG, and every operand read
//! must respect the TEDG's adjacency (own tile or direct neighbour).

use cmam::arch::{CgraConfig, Tedg, TileId};
use cmam::cdfg::ValueKind;
use cmam::core::{FlowVariant, Mapper};
use cmam::isa::OperandSource;

#[test]
fn mapped_dependencies_follow_tedg_edges() {
    let spec = cmam::kernels::fir::spec();
    let config = CgraConfig::hom64();
    let mapper = Mapper::new(FlowVariant::Basic.options());
    let result = mapper.map(&spec.cdfg, &config).expect("maps");

    for (bidx, bm) in result.mapping.blocks.iter().enumerate() {
        if bm.length < 2 {
            continue;
        }
        let tedg = Tedg::unroll(config.geometry(), bm.length + 1);
        // Producer instances per value (including moves creating copies).
        let producers = |value, tile: TileId| -> Option<usize> {
            bm.ops
                .iter()
                .filter(|po| po.tile == tile && spec.cdfg.op(po.op).result == Some(value))
                .map(|po| po.cycle)
                .chain(
                    bm.moves
                        .iter()
                        .filter(|m| m.tile == tile && m.value == value)
                        .map(|m| m.cycle),
                )
                .min()
        };
        for po in &bm.ops {
            for src in &po.operands {
                let OperandSource::Rf { tile, value } = *src else {
                    continue;
                };
                // Adjacency is a TEDG edge property.
                assert!(
                    config.geometry().distance(tile, po.tile) <= 1,
                    "block {bidx}: non-adjacent read"
                );
                // Cross-block symbol reads start in the home RF (cycle 0);
                // everything else must flow from a producer instance
                // through the TEDG.
                let is_symbol_home = matches!(spec.cdfg.value(value).kind, ValueKind::SymbolUse(_));
                if is_symbol_home && producers(value, tile).is_none() {
                    continue;
                }
                let p_cycle = producers(value, tile)
                    .unwrap_or_else(|| panic!("block {bidx}: no producer for {value:?}"));
                assert!(
                    tedg.value_can_flow(tile, p_cycle, po.tile, po.cycle),
                    "block {bidx}: {value:?} cannot flow {tile}@{p_cycle} -> {}@{}",
                    po.tile,
                    po.cycle
                );
            }
        }
    }
}
