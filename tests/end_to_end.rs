//! End-to-end correctness: every paper kernel, mapped by both flows onto
//! the paper's configurations, must — after assembly and cycle-accurate
//! simulation — leave the data memory in exactly the state of the golden
//! reference interpreter.

use cmam::arch::CgraConfig;
use cmam::cdfg::interp;
use cmam::core::{FlowVariant, Mapper};
use cmam::isa::assemble;
use cmam::sim::{simulate, SimOptions};

fn golden_memory(spec: &cmam::kernels::KernelSpec) -> Vec<i32> {
    let mut mem = spec.mem.clone();
    interp::run(&spec.cdfg, &mut mem, 100_000_000).expect("interpreter runs");
    mem
}

fn check_full_memory(spec: &cmam::kernels::KernelSpec, variant: FlowVariant, config: &CgraConfig) {
    let mapper = Mapper::new(variant.options());
    let result = mapper
        .map(&spec.cdfg, config)
        .unwrap_or_else(|e| panic!("{} / {variant} / {}: {e}", spec.name, config.name()));
    let (binary, report) = assemble(&spec.cdfg, &result.mapping, config)
        .unwrap_or_else(|e| panic!("{} / {variant} / {}: {e}", spec.name, config.name()));
    // Context-memory fit (the Section III-C inequality) per tile.
    for (t, tile) in config.tiles() {
        assert!(
            report.words(t) <= tile.cm_words,
            "{}: tile {t} uses {} of {} words",
            spec.name,
            report.words(t),
            tile.cm_words
        );
    }
    let mut mem = spec.mem.clone();
    simulate(&binary, config, &mut mem, SimOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    // Full-memory equality against the interpreter, not just the output
    // range: scratch regions must match too.
    assert_eq!(mem, golden_memory(spec), "{} memory mismatch", spec.name);
}

#[test]
fn all_kernels_basic_flow_on_hom64() {
    for spec in cmam::kernels::all() {
        check_full_memory(&spec, FlowVariant::Basic, &CgraConfig::hom64());
    }
}

#[test]
fn all_kernels_context_aware_on_het1() {
    for spec in cmam::kernels::all() {
        check_full_memory(&spec, FlowVariant::Cab, &CgraConfig::het1());
    }
}

#[test]
fn all_kernels_context_aware_on_het2() {
    for spec in cmam::kernels::all() {
        check_full_memory(&spec, FlowVariant::Cab, &CgraConfig::het2());
    }
}

#[test]
fn cpu_baseline_matches_reference_for_all_kernels() {
    for spec in cmam::kernels::all() {
        let model = cmam::cpu::CpuModel::default();
        let mut mem = spec.mem.clone();
        let (stats, _) = model
            .run(&spec.cdfg, &mut mem, 100_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        spec.check(&mem)
            .unwrap_or_else(|(i, g, w)| panic!("{}: mem[{i}]={g} want {w}", spec.name));
        assert!(stats.cycles > stats.instructions, "{}: CPI > 1", spec.name);
    }
}
