//! # cmam — Context-Memory Aware Mapping for CGRAs
//!
//! Umbrella crate re-exporting the whole tool-chain of the DATE 2019 paper
//! reproduction *"Context-memory Aware Mapping for Energy Efficient
//! Acceleration with CGRAs"* (Das, Martin, Coussy):
//!
//! * [`arch`] — CGRA architecture model (torus grid, tiles, Table I
//!   context-memory configurations, TEDG);
//! * [`cdfg`] — control-data-flow-graph IR, builder, analyses, reference
//!   interpreter;
//! * [`kernels`] — the seven evaluation kernels (FIR, MatMul, Convolution,
//!   separable/non-separable filters, FFT, DC filter);
//! * [`isa`] — instruction encoding, mapping model, assembler with pnop
//!   compression;
//! * [`pool`] — the shared persistent thread pool (beam parallelism and
//!   engine batches draw from the same workers);
//! * [`core`] — the paper's contribution: the basic mapping flow and the
//!   context-memory aware flow (weighted traversal + ACMAP + ECMAP + CAB),
//!   with deterministic beam-parallel candidate expansion;
//! * [`sim`] — cycle-level CGRA simulator;
//! * [`cpu`] — or1k-like scalar CPU baseline;
//! * [`energy`] — area and energy models (Fig 11, Table II);
//! * [`engine`] — parallel, content-addressed batch compilation engine
//!   (job dedup, work-stealing pool, in-memory + on-disk memoisation);
//! * [`fault`] — seeded deterministic fault injection (chaos testing of
//!   the engine's retry/quarantine and self-healing cache paths).
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! system inventory and experiment index.

pub use cmam_arch as arch;
pub use cmam_cdfg as cdfg;
pub use cmam_core as core;
pub use cmam_cpu as cpu;
pub use cmam_energy as energy;
pub use cmam_engine as engine;
pub use cmam_fault as fault;
pub use cmam_isa as isa;
pub use cmam_kernels as kernels;
pub use cmam_pool as pool;
pub use cmam_sim as sim;
