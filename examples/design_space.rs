//! Design-space exploration: the paper's motivation is that the compiler,
//! once context-memory aware, lets the architect *shrink* the context
//! memories for a target application domain. This example sweeps uniform
//! CM sizes and reports, per kernel, the smallest context memory the full
//! flow can still map — together with the area and energy payoff.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use cmam::arch::CgraConfig;
use cmam::core::{Mapper, MapperOptions};
use cmam::energy::{cgra_area, cgra_energy, AreaParams, EnergyParams};
use cmam::isa::assemble;
use cmam::sim::{simulate, SimOptions};

fn main() {
    let sizes = [64usize, 48, 32, 24, 16, 12, 8];
    println!("minimum uniform context-memory size per kernel (full aware flow)\n");
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>14}",
        "kernel", "min CM", "area µm²", "energy µJ", "vs CM-64"
    );
    for spec in cmam::kernels::all() {
        let mut best: Option<(usize, f64, f64)> = None;
        let mut e64 = None;
        for &words in &sizes {
            let config = CgraConfig::builder(4, 4)
                .name(format!("UNI{words}"))
                .uniform_cm(words)
                .build()
                .expect("valid config");
            let mapper = Mapper::new(MapperOptions::context_aware());
            let Ok(result) = mapper.map(&spec.cdfg, &config) else {
                continue;
            };
            let Ok((binary, _)) = assemble(&spec.cdfg, &result.mapping, &config) else {
                continue;
            };
            let mut mem = spec.mem.clone();
            let stats =
                simulate(&binary, &config, &mut mem, SimOptions::default()).expect("simulate");
            spec.check(&mem).expect("correct");
            let area = cgra_area(&AreaParams::default(), &config).total();
            let energy = cgra_energy(&EnergyParams::default(), &config, &stats, 0.2).total();
            if words == 64 {
                e64 = Some(energy);
            }
            best = Some((words, area, energy));
        }
        match best {
            Some((words, area, energy)) => {
                let gain = e64.map(|e| e / energy).unwrap_or(1.0);
                println!(
                    "{:<14} {:>8} {:>12.0} {:>12.4} {:>13.2}x",
                    spec.name, words, area, energy, gain
                );
            }
            None => println!("{:<14} {:>8}", spec.name, "none"),
        }
    }
    println!("\n(smaller context memories cut both fetch energy and leakage;");
    println!(" the aware flow finds mappings the basic flow cannot)");
}
