//! Full energy breakdown for one kernel across CPU and CGRA targets —
//! a drill-down into one row of Table II showing *where* the energy goes
//! (instruction supply, datapath, registers, data memory, leakage).
//!
//! ```sh
//! cargo run --release --example energy_report
//! ```

use cmam::arch::CgraConfig;
use cmam::core::{FlowVariant, Mapper};
use cmam::cpu::CpuModel;
use cmam::energy::{cgra_energy, cpu_energy, EnergyBreakdown, EnergyParams};
use cmam::isa::assemble;
use cmam::sim::{simulate, SimOptions};

fn row(name: &str, cycles: u64, e: &EnergyBreakdown) {
    println!(
        "{:<22} {:>8} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
        name,
        cycles,
        e.instruction_supply,
        e.compute,
        e.registers,
        e.data_memory,
        e.leakage,
        e.total()
    );
}

fn main() {
    let spec = cmam::kernels::conv::spec();
    let params = EnergyParams::default();
    println!("kernel: {}\n", spec.name);
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "target", "cycles", "instr µJ", "comp µJ", "reg µJ", "dmem µJ", "leak µJ", "total µJ"
    );

    // CPU baseline.
    let mut mem = spec.mem.clone();
    let (cpu_stats, _) = CpuModel::default()
        .run(&spec.cdfg, &mut mem, 100_000_000)
        .expect("cpu run");
    spec.check(&mem).expect("cpu correct");
    row(
        "CPU (or1k-like)",
        cpu_stats.cycles,
        &cpu_energy(&params, &cpu_stats),
    );

    // CGRA targets.
    for (variant, config) in [
        (FlowVariant::Basic, CgraConfig::hom64()),
        (FlowVariant::Cab, CgraConfig::het1()),
        (FlowVariant::Cab, CgraConfig::het2()),
    ] {
        let mapper = Mapper::new(variant.options());
        let Ok(result) = mapper.map(&spec.cdfg, &config) else {
            println!("{:<22} no mapping", config.name());
            continue;
        };
        let (binary, _) = assemble(&spec.cdfg, &result.mapping, &config).expect("fits");
        let mut mem = spec.mem.clone();
        let stats = simulate(&binary, &config, &mut mem, SimOptions::default()).expect("sim");
        spec.check(&mem).expect("cgra correct");
        let label = format!(
            "{} ({})",
            config.name(),
            if variant == FlowVariant::Basic {
                "basic"
            } else {
                "aware"
            }
        );
        row(
            &label,
            stats.cycles,
            &cgra_energy(&params, &config, &stats, 0.25),
        );
    }
    println!("\n(instruction supply = CM fetches on the CGRA, ifetch+pipeline on the CPU;");
    println!(" shrinking the context memories attacks exactly that column plus leakage)");
}
