//! Compare the basic (context-unaware) flow against the context-memory
//! aware flow on one of the paper's kernels: context-word distribution,
//! latency and energy on each Table I configuration.
//!
//! ```sh
//! cargo run --release --example compare_flows
//! ```

use cmam::arch::{CgraConfig, TileId};
use cmam::core::{FlowVariant, Mapper};
use cmam::energy::{cgra_energy, EnergyParams};
use cmam::isa::assemble;
use cmam::sim::{simulate, SimOptions};

fn main() {
    let spec = cmam::kernels::fft::spec();
    println!("kernel: {}\n{}", spec.name, spec.cdfg);

    for (variant, config) in [
        (FlowVariant::Basic, CgraConfig::hom64()),
        (FlowVariant::Cab, CgraConfig::het1()),
        (FlowVariant::Cab, CgraConfig::het2()),
    ] {
        let mapper = Mapper::new(variant.options());
        let result = match mapper.map(&spec.cdfg, &config) {
            Ok(r) => r,
            Err(e) => {
                println!("{variant} on {}: no mapping ({e})", config.name());
                continue;
            }
        };
        let (binary, _report) = match assemble(&spec.cdfg, &result.mapping, &config) {
            Ok(x) => x,
            Err(e) => {
                println!("{variant} on {}: does not fit ({e})", config.name());
                continue;
            }
        };
        let mut mem = spec.mem.clone();
        let stats = simulate(&binary, &config, &mut mem, SimOptions::default()).expect("simulate");
        spec.check(&mem).expect("correct result");
        let energy = cgra_energy(&EnergyParams::default(), &config, &stats, 0.2);

        println!("== {variant} on {} ==", config.name());
        println!(
            "  latency {} cycles, energy {:.4} µJ, {} context words (max/tile {})",
            stats.cycles,
            energy.total(),
            binary.total_context_words(),
            binary.max_context_words()
        );
        // Context occupancy sparkline per tile.
        let spark: String = (0..16)
            .map(|i| {
                let used = binary.context_words(TileId(i));
                let cap = config.tile(TileId(i)).cm_words;
                let frac = used as f64 / cap as f64;
                match (frac * 5.0) as usize {
                    0 => '.',
                    1 => ':',
                    2 => '-',
                    3 => '=',
                    4 => '#',
                    _ => '@',
                }
            })
            .collect();
        println!("  occupancy T1..T16: [{spark}]  (.=<20% @=full)");
    }
}
