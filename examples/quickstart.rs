//! Quickstart: author a small kernel, map it onto a CGRA with
//! heterogeneous context memories, run it cycle-accurately, and check the
//! result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cmam::arch::CgraConfig;
use cmam::cdfg::{CdfgBuilder, Opcode};
use cmam::core::{Mapper, MapperOptions};
use cmam::isa::assemble;
use cmam::sim::{simulate, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author a kernel: dot product of two 8-element vectors.
    //    x at address 0, y at 8, result at 16.
    let mut b = CdfgBuilder::new("dot");
    let entry = b.block("entry");
    let body = b.block("body");
    let exit = b.block("exit");
    let i = b.symbol("i");
    let acc = b.symbol("acc");

    b.select(entry);
    b.mov_const_to_symbol(0, i);
    b.mov_const_to_symbol(0, acc);
    b.jump(body);

    b.select(body);
    let iv = b.use_symbol(i);
    let av = b.use_symbol(acc);
    let x = b.load_name(iv, "x");
    let y0 = b.constant(8);
    let yaddr = b.op(Opcode::Add, &[iv, y0]);
    let y = b.load_name(yaddr, "y");
    let prod = b.op(Opcode::Mul, &[x, y]);
    let acc2 = b.op(Opcode::Add, &[av, prod]);
    b.write_symbol(acc2, acc);
    let one = b.constant(1);
    let i2 = b.op(Opcode::Add, &[iv, one]);
    b.write_symbol(i2, i);
    let n = b.constant(8);
    let cond = b.op(Opcode::Lt, &[i2, n]);
    b.branch(cond, body, exit);

    b.select(exit);
    let av2 = b.use_symbol(acc);
    let out = b.constant(16);
    b.store(out, av2, "out");
    b.ret();
    let cdfg = b.finish()?;

    // 2. Map it with the context-memory aware flow onto HET2 (Table I's
    //    cheapest configuration: 512 context words total).
    let config = CgraConfig::het2();
    let mapper = Mapper::new(MapperOptions::context_aware());
    let result = mapper.map(&cdfg, &config)?;

    // 3. Assemble: register allocation, pnop compression, fit check.
    let (binary, report) = assemble(&cdfg, &result.mapping, &config)?;
    println!("{binary}");
    println!(
        "context words: {} total, {} ops, {} moves, {} pnops",
        binary.total_context_words(),
        report.total_ops(),
        report.total_moves(),
        report.total_pnops()
    );

    // 4. Simulate over a data memory and check the result.
    let mut mem = vec![0i32; 32];
    for k in 0..8 {
        mem[k] = k as i32 + 1; // x = 1..8
        mem[8 + k] = 2; // y = 2,2,...
    }
    let stats = simulate(&binary, &config, &mut mem, SimOptions::default())?;
    println!(
        "ran in {} cycles ({} stalls), result mem[16] = {}",
        stats.cycles, stats.stall_cycles, mem[16]
    );
    assert_eq!(mem[16], (1..=8).map(|v| 2 * v).sum::<i32>());
    println!("dot product OK");
    Ok(())
}
