//! Property test: pnop compression round-trips exactly — the paper's
//! "consecutive nops are gathered in one programmable nop" never changes
//! the executed schedule.

use cmam_cdfg::Opcode;
use cmam_isa::instr::{compress, expand};
use cmam_isa::{Instr, Operand};
use proptest::prelude::*;

fn slot() -> impl Strategy<Value = Option<Instr>> {
    prop_oneof![
        3 => Just(None),
        1 => (0u8..8, 0u8..8).prop_map(|(d, r)| Some(Instr::Exec {
            opcode: Opcode::Add,
            dst: Some(d),
            srcs: vec![Operand::Reg(r)],
        })),
        1 => (0u8..8).prop_map(|r| Some(Instr::Exec {
            opcode: Opcode::Mov,
            dst: Some(0),
            srcs: vec![Operand::Reg(r)],
        })),
    ]
}

proptest! {
    #[test]
    fn compress_expand_roundtrip(schedule in prop::collection::vec(slot(), 0..64)) {
        let words = compress(&schedule);
        prop_assert_eq!(expand(&words), schedule.clone());
        // No two consecutive pnops (maximal runs).
        for w in words.windows(2) {
            prop_assert!(!(w[0].is_pnop() && w[1].is_pnop()));
        }
        // Word count never exceeds the schedule length, and durations sum
        // back to it.
        prop_assert!(words.len() <= schedule.len());
        let total: u32 = words.iter().map(Instr::duration).sum();
        prop_assert_eq!(total as usize, schedule.len());
    }

    #[test]
    fn compression_saves_exactly_the_gathered_nops(schedule in prop::collection::vec(slot(), 1..64)) {
        let words = compress(&schedule);
        let execs = schedule.iter().filter(|s| s.is_some()).count();
        let pnops = words.iter().filter(|w| w.is_pnop()).count();
        prop_assert_eq!(words.len(), execs + pnops);
    }
}
