//! Human-readable assembly listings of assembled binaries — the artifact
//! a compiler engineer reads when debugging a mapping. One section per
//! basic block, one column per tile, one row per cycle, pnops rendered as
//! the idle ranges they cover.

use crate::instr::{expand, Instr};
use crate::program::CgraBinary;
use cmam_arch::TileId;
use std::fmt::Write;

/// Renders the per-cycle schedule of one block: rows are cycles, columns
/// are tiles (wide — intended for logs and golden-file tests).
pub fn block_listing(binary: &CgraBinary, block: usize) -> String {
    let ntiles = binary.num_tiles();
    let length = binary.block_lengths[block];
    let expanded: Vec<Vec<Option<Instr>>> = (0..ntiles)
        .map(|t| expand(&binary.tiles[t].blocks[block]))
        .collect();
    // Column width: longest rendered instruction, at least 8.
    let mut width = 8usize;
    let rendered: Vec<Vec<String>> = (0..ntiles)
        .map(|t| {
            (0..length)
                .map(|c| {
                    let s = match &expanded[t][c] {
                        Some(i) => i.to_string(),
                        None => ".".to_owned(),
                    };
                    width = width.max(s.len());
                    s
                })
                .collect()
        })
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "block {block} ({length} cycles):");
    let _ = write!(out, "{:>5} ", "cyc");
    for t in 0..ntiles {
        let _ = write!(out, "{:<w$} ", TileId(t).to_string(), w = width);
    }
    out.push('\n');
    for c in 0..length {
        let _ = write!(out, "{c:>5} ");
        for r in rendered.iter() {
            let _ = write!(out, "{:<w$} ", r[c], w = width);
        }
        out.push('\n');
    }
    out
}

/// Renders the stored context words of every tile (what actually occupies
/// the context memories, pnops compressed), plus the CRF contents.
pub fn context_listing(binary: &CgraBinary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; kernel {}", binary.name);
    for (t, tp) in binary.tiles.iter().enumerate() {
        let tile = TileId(t);
        let (ops, moves, pnops) = tp.word_kinds();
        let _ = writeln!(
            out,
            "{tile}: {} words ({ops} exec, {moves} mov-words, {pnops} pnop)",
            tp.words()
        );
        if !binary.crf[t].is_empty() {
            let consts: Vec<String> = binary.crf[t].iter().map(i32::to_string).collect();
            let _ = writeln!(out, "  crf: [{}]", consts.join(", "));
        }
        for (b, words) in tp.blocks.iter().enumerate() {
            if words.is_empty() {
                continue;
            }
            let _ = writeln!(out, "  block {b}:");
            for w in words {
                let _ = writeln!(out, "    {w}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;
    use crate::mapping::{BlockMapping, KernelMapping, OperandSource, PlacedOp};
    use cmam_arch::CgraConfig;
    use cmam_cdfg::CdfgBuilder;

    fn tiny() -> (cmam_cdfg::Cdfg, CgraBinary) {
        let mut b = CdfgBuilder::new("tiny");
        let _ = b.block("b0");
        let a0 = b.constant(0);
        let v = b.load_name(a0, "m");
        let a1 = b.constant(1);
        b.store(a1, v, "m");
        b.ret();
        let cdfg = b.finish().unwrap();
        let vres = cdfg.op(cmam_cdfg::OpId(0)).result.unwrap();
        let mapping = KernelMapping {
            blocks: vec![BlockMapping {
                length: 2,
                ops: vec![
                    PlacedOp {
                        op: cmam_cdfg::OpId(0),
                        tile: cmam_arch::TileId(0),
                        cycle: 0,
                        operands: vec![OperandSource::Const(0)],
                        direct_symbol_write: false,
                    },
                    PlacedOp {
                        op: cmam_cdfg::OpId(1),
                        tile: cmam_arch::TileId(0),
                        cycle: 1,
                        operands: vec![
                            OperandSource::Const(1),
                            OperandSource::Rf {
                                tile: cmam_arch::TileId(0),
                                value: vres,
                            },
                        ],
                        direct_symbol_write: false,
                    },
                ],
                moves: vec![],
            }],
            symbol_homes: Default::default(),
        };
        let config = CgraConfig::hom64();
        let (bin, _) = assemble(&cdfg, &mapping, &config).unwrap();
        (cdfg, bin)
    }

    #[test]
    fn block_listing_shows_cycles_and_instructions() {
        let (_, bin) = tiny();
        let l = block_listing(&bin, 0);
        assert!(l.contains("block 0 (2 cycles)"));
        assert!(l.contains("load"));
        assert!(l.contains("store"));
        assert!(l.contains("T16"), "all tiles listed");
        // Two cycle rows.
        assert!(l.contains("\n    0 "));
        assert!(l.contains("\n    1 "));
    }

    #[test]
    fn context_listing_shows_words_and_crf() {
        let (_, bin) = tiny();
        let l = context_listing(&bin);
        assert!(l.contains("; kernel tiny"));
        assert!(l.contains("T1: 2 words"));
        assert!(l.contains("crf: [0, 1]"));
        assert!(l.contains("pnop 2"), "idle tiles compress to one pnop");
    }
}
