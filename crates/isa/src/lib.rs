//! # cmam-isa — CGRA instruction set, mapping model and assembler
//!
//! The interface between the mapper (`cmam-core`), the cycle-level
//! simulator (`cmam-sim`) and the experiment harness:
//!
//! * [`instr`] — the per-tile instruction encoding. A context memory holds
//!   three kinds of words, exactly the taxonomy of the paper: *operations*
//!   (including control), *moves*, and *programmable nops* (`pnop`), each
//!   compressing a run of consecutive idle cycles into one word;
//! * [`mapping`] — the placement/routing result produced by the mapper:
//!   operation instances on `(tile, cycle)` slots, move chains, symbol
//!   home tiles;
//! * [`program`] — assembled per-tile contexts ([`TileProgram`],
//!   [`CgraBinary`]) with per-tile word counts;
//! * [`mod@assemble`] — lowers a [`KernelMapping`] to a [`CgraBinary`]:
//!   register allocation, CRF allocation, pnop compression and the
//!   Section III-C accounting check
//!   `n(Mo) + n(pnop) ≤ n(I)` for every tile.

pub mod assemble;
pub mod instr;
pub mod listing;
pub mod mapping;
pub mod program;

pub use assemble::{assemble, AsmReport, AssembleError};
pub use instr::{Instr, Operand};
pub use mapping::{BlockMapping, KernelMapping, OperandSource, PlacedMove, PlacedOp};
pub use program::{CgraBinary, TileProgram};
