//! The mapper's output: placements, routes and symbol homes.
//!
//! A [`KernelMapping`] is pure *placement* data — which operation instance
//! executes on which `(tile, cycle)` slot, where each operand is read from,
//! which `move` instructions realise the routing, and where each symbol
//! variable lives. Lowering to concrete registers, CRF slots and context
//! words is the assembler's job ([`crate::assemble()`]).

use cmam_arch::TileId;
use cmam_cdfg::{BlockId, OpId, SymbolId, ValueId};
use std::collections::BTreeMap;

/// Where a placed operation reads one operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandSource {
    /// An immediate constant, materialised from the executing tile's CRF.
    Const(i32),
    /// A value copy residing in `tile`'s register file (the executing tile
    /// itself or one of its direct torus neighbours).
    Rf {
        /// Tile whose RF holds the copy.
        tile: TileId,
        /// The value read.
        value: ValueId,
    },
}

/// One executed instance of a CDFG operation.
///
/// Re-computation (the graph transformation of Section III-B) duplicates an
/// operation, so the same [`OpId`] may appear in several instances within a
/// block; each instance produces a copy of the same result value on its own
/// tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedOp {
    /// The CDFG operation.
    pub op: OpId,
    /// Executing tile.
    pub tile: TileId,
    /// Cycle within the block schedule.
    pub cycle: usize,
    /// Operand sources, positional (parallel to the op's `args`).
    pub operands: Vec<OperandSource>,
    /// When `true`, the result is written directly into the executing
    /// tile's *persistent* register of the symbol this op defines
    /// (commit-move elision; requires `tile` to be the symbol's home).
    pub direct_symbol_write: bool,
}

/// One routing `move` instruction: the executing tile copies `value` from
/// `src_tile`'s register file (own or direct neighbour) into its own RF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedMove {
    /// Value being copied.
    pub value: ValueId,
    /// Tile whose RF is read (must be `tile` itself or a neighbour).
    pub src_tile: TileId,
    /// Executing tile (destination RF).
    pub tile: TileId,
    /// Cycle within the block schedule.
    pub cycle: usize,
    /// When `Some(s)`, this move commits `value` into the persistent
    /// register of symbol `s` (so `tile` must be `s`'s home tile).
    pub commit_symbol: Option<SymbolId>,
}

/// Mapping of one basic block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockMapping {
    /// Schedule length in cycles (all tiles run this many cycles).
    pub length: usize,
    /// Placed operation instances.
    pub ops: Vec<PlacedOp>,
    /// Placed routing/commit moves.
    pub moves: Vec<PlacedMove>,
}

impl BlockMapping {
    /// Occupied `(tile, cycle)` slots (ops and moves).
    pub fn occupied_slots(&self) -> Vec<(TileId, usize)> {
        let mut v: Vec<(TileId, usize)> = self
            .ops
            .iter()
            .map(|o| (o.tile, o.cycle))
            .chain(self.moves.iter().map(|m| (m.tile, m.cycle)))
            .collect();
        v.sort();
        v
    }

    /// Number of instructions (ops + moves) mapped onto `tile`.
    pub fn instr_count(&self, tile: TileId) -> usize {
        self.ops.iter().filter(|o| o.tile == tile).count()
            + self.moves.iter().filter(|m| m.tile == tile).count()
    }

    /// Exact number of `pnop` words tile `tile` needs for this block: the
    /// number of maximal idle runs in its `length`-cycle schedule.
    pub fn pnop_count(&self, tile: TileId) -> usize {
        let mut occupied = vec![false; self.length];
        for (t, c) in self
            .ops
            .iter()
            .map(|o| (o.tile, o.cycle))
            .chain(self.moves.iter().map(|m| (m.tile, m.cycle)))
        {
            if t == tile {
                occupied[c] = true;
            }
        }
        let mut runs = 0;
        let mut in_run = false;
        for &occ in &occupied {
            if !occ && !in_run {
                runs += 1;
                in_run = true;
            } else if occ {
                in_run = false;
            }
        }
        runs
    }

    /// Exact context words tile `tile` needs for this block:
    /// `instr_count + pnop_count` (Section III-C accounting).
    pub fn context_words(&self, tile: TileId) -> usize {
        self.instr_count(tile) + self.pnop_count(tile)
    }
}

/// Mapping of a whole kernel: one [`BlockMapping`] per basic block plus the
/// symbol-variable home assignment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelMapping {
    /// Per-block mappings, indexed by `BlockId`.
    pub blocks: Vec<BlockMapping>,
    /// Home tile of every symbol variable (its persistent RF slot).
    /// A `BTreeMap` so iteration order is sorted by symbol id *by
    /// construction* — everything downstream of the mapper (assembler
    /// register assignment, listings, CSV reports) observes a
    /// deterministic order without having to re-sort.
    pub symbol_homes: BTreeMap<SymbolId, TileId>,
}

impl KernelMapping {
    /// The mapping of one block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block(&self, block: BlockId) -> &BlockMapping {
        &self.blocks[block.0 as usize]
    }

    /// Total context words tile `tile` needs across all blocks.
    pub fn context_words(&self, tile: TileId) -> usize {
        self.blocks.iter().map(|b| b.context_words(tile)).sum()
    }

    /// Total mapped instructions (ops + moves) on `tile` across blocks.
    pub fn instr_count(&self, tile: TileId) -> usize {
        self.blocks.iter().map(|b| b.instr_count(tile)).sum()
    }

    /// Total moves across all tiles and blocks (the Fig 5 "moves" series).
    pub fn total_moves(&self) -> usize {
        self.blocks.iter().map(|b| b.moves.len()).sum()
    }

    /// Total pnop words across all tiles and blocks (the Fig 5 "pnops"
    /// series) for a CGRA with `num_tiles` tiles.
    pub fn total_pnops(&self, num_tiles: usize) -> usize {
        (0..num_tiles)
            .map(TileId)
            .map(|t| self.blocks.iter().map(|b| b.pnop_count(t)).sum::<usize>())
            .sum()
    }

    /// Sum of schedule lengths (static latency of one pass through every
    /// block).
    pub fn total_length(&self) -> usize {
        self.blocks.iter().map(|b| b.length).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placed(tile: usize, cycle: usize) -> PlacedOp {
        PlacedOp {
            op: OpId(0),
            tile: TileId(tile),
            cycle,
            operands: vec![],
            direct_symbol_write: false,
        }
    }

    #[test]
    fn pnop_count_counts_idle_runs() {
        let bm = BlockMapping {
            length: 8,
            ops: vec![placed(0, 2), placed(0, 5)],
            moves: vec![],
        };
        // tile 0: idle 0-1, busy 2, idle 3-4, busy 5, idle 6-7 -> 3 runs.
        assert_eq!(bm.pnop_count(TileId(0)), 3);
        assert_eq!(bm.instr_count(TileId(0)), 2);
        assert_eq!(bm.context_words(TileId(0)), 5);
        // An untouched tile is one big idle run.
        assert_eq!(bm.pnop_count(TileId(1)), 1);
        assert_eq!(bm.context_words(TileId(1)), 1);
    }

    #[test]
    fn fully_busy_tile_needs_no_pnops() {
        let bm = BlockMapping {
            length: 3,
            ops: vec![placed(2, 0), placed(2, 1), placed(2, 2)],
            moves: vec![],
        };
        assert_eq!(bm.pnop_count(TileId(2)), 0);
        assert_eq!(bm.context_words(TileId(2)), 3);
    }

    #[test]
    fn kernel_totals_aggregate_blocks() {
        let b0 = BlockMapping {
            length: 2,
            ops: vec![placed(0, 0)],
            moves: vec![PlacedMove {
                value: ValueId(0),
                src_tile: TileId(0),
                tile: TileId(1),
                cycle: 1,
                commit_symbol: None,
            }],
        };
        let b1 = BlockMapping {
            length: 1,
            ops: vec![placed(1, 0)],
            moves: vec![],
        };
        let km = KernelMapping {
            blocks: vec![b0, b1],
            symbol_homes: BTreeMap::new(),
        };
        assert_eq!(km.total_moves(), 1);
        assert_eq!(km.total_length(), 3);
        assert_eq!(km.instr_count(TileId(1)), 2);
        // tile0: block0 words = 1 op + pnop(cycle1) = 2; block1 = pnop = 1.
        assert_eq!(km.context_words(TileId(0)), 3);
    }
}
