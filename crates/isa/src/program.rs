//! Assembled per-tile contexts.

use crate::instr::Instr;
use cmam_arch::TileId;
use cmam_cdfg::BlockId;
use std::fmt;

/// Mirror of the CDFG terminators carried in the binary so the simulator
/// can sequence blocks without the source CDFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinTerminator {
    /// Unconditional jump to a block.
    Jump(u32),
    /// Branch on the latched `br` flag.
    Branch {
        /// Next block when the flag is set.
        taken: u32,
        /// Next block when the flag is clear.
        fallthrough: u32,
    },
    /// Kernel end.
    Return,
}

/// The context-memory contents of one tile: one word list per basic block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileProgram {
    /// Per-block instruction words, indexed by `BlockId`.
    pub blocks: Vec<Vec<Instr>>,
}

impl TileProgram {
    /// Context words used by one block.
    pub fn block_words(&self, block: BlockId) -> usize {
        self.blocks[block.0 as usize].len()
    }

    /// Total context words used by the tile.
    pub fn words(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Counts `(operations, moves, pnops)` over all blocks.
    pub fn word_kinds(&self) -> (usize, usize, usize) {
        let mut ops = 0;
        let mut moves = 0;
        let mut pnops = 0;
        for b in &self.blocks {
            for w in b {
                if w.is_pnop() {
                    pnops += 1;
                } else if w.is_move() {
                    moves += 1;
                } else {
                    ops += 1;
                }
            }
        }
        (ops, moves, pnops)
    }
}

/// A fully assembled kernel: per-tile contexts, per-tile constant register
/// files, block schedule lengths and the control-flow skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgraBinary {
    /// Kernel name (from the CDFG).
    pub name: String,
    /// Per-tile programs, indexed by `TileId`.
    pub tiles: Vec<TileProgram>,
    /// Per-tile CRF contents (constants referenced by `Operand::Crf`).
    pub crf: Vec<Vec<i32>>,
    /// Schedule length of each block in cycles.
    pub block_lengths: Vec<usize>,
    /// Terminator of each block.
    pub terminators: Vec<BinTerminator>,
    /// Entry block index.
    pub entry: u32,
}

impl CgraBinary {
    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Context words used on `tile`.
    pub fn context_words(&self, tile: TileId) -> usize {
        self.tiles[tile.0].words()
    }

    /// The largest per-tile context usage (what a homogeneous CGRA would
    /// need everywhere).
    pub fn max_context_words(&self) -> usize {
        self.tiles.iter().map(TileProgram::words).max().unwrap_or(0)
    }

    /// Total context words over all tiles.
    pub fn total_context_words(&self) -> usize {
        self.tiles.iter().map(TileProgram::words).sum()
    }
}

impl fmt::Display for CgraBinary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "binary {}: {} tiles, {} blocks, {} total context words (max/tile {})",
            self.name,
            self.num_tiles(),
            self.block_lengths.len(),
            self.total_context_words(),
            self.max_context_words()
        )?;
        for (i, t) in self.tiles.iter().enumerate() {
            let (o, m, p) = t.word_kinds();
            writeln!(
                f,
                "  {}: {} words ({o} ops, {m} moves, {p} pnops)",
                TileId(i),
                t.words()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmam_cdfg::Opcode;

    #[test]
    fn word_kind_counts() {
        let tp = TileProgram {
            blocks: vec![
                vec![
                    Instr::Exec {
                        opcode: Opcode::Add,
                        dst: Some(0),
                        srcs: vec![],
                    },
                    Instr::Pnop { cycles: 3 },
                ],
                vec![Instr::Exec {
                    opcode: Opcode::Mov,
                    dst: Some(1),
                    srcs: vec![],
                }],
            ],
        };
        assert_eq!(tp.words(), 3);
        assert_eq!(tp.block_words(BlockId(0)), 2);
        assert_eq!(tp.word_kinds(), (1, 1, 1));
    }
}
