//! Per-tile instruction encoding.

use cmam_arch::Direction;
use cmam_cdfg::Opcode;
use std::fmt;

/// Where an instruction reads one operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Slot of the tile's constant register file.
    Crf(u8),
    /// Register of the tile's own register file.
    Reg(u8),
    /// Register of a direct torus neighbour's register file.
    Neighbor(Direction, u8),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Crf(i) => write!(f, "c{i}"),
            Operand::Reg(i) => write!(f, "r{i}"),
            Operand::Neighbor(d, i) => write!(f, "{d}.r{i}"),
        }
    }
}

/// One context-memory word.
///
/// `Exec` covers the paper's "operation" and "move" word kinds (a move is
/// an `Exec` with [`Opcode::Mov`] reading a neighbour or local register);
/// `Pnop` is the programmable nop compressing `cycles` consecutive idle
/// cycles into a single stored word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Execute `opcode` over `srcs`, writing the result (if any) to local
    /// register `dst`.
    Exec {
        /// The operation.
        opcode: Opcode,
        /// Destination register in the local RF; `None` for `store`/`br`.
        dst: Option<u8>,
        /// Operand sources, positional.
        srcs: Vec<Operand>,
    },
    /// Programmable nop: the tile idles (clock-gated) for `cycles` cycles
    /// while this single word stays latched in the decoder.
    Pnop {
        /// Number of idle cycles covered, at least 1.
        cycles: u32,
    },
}

impl Instr {
    /// Cycles of execution this word covers (1 for `Exec`, `cycles` for
    /// `Pnop`).
    pub fn duration(&self) -> u32 {
        match self {
            Instr::Exec { .. } => 1,
            Instr::Pnop { cycles } => *cycles,
        }
    }

    /// Whether the word is a move (the paper counts these separately from
    /// operations).
    pub fn is_move(&self) -> bool {
        matches!(
            self,
            Instr::Exec {
                opcode: Opcode::Mov,
                ..
            }
        )
    }

    /// Whether the word is an operation (anything executable that is not a
    /// move).
    pub fn is_operation(&self) -> bool {
        matches!(self, Instr::Exec { .. }) && !self.is_move()
    }

    /// Whether the word is a programmable nop.
    pub fn is_pnop(&self) -> bool {
        matches!(self, Instr::Pnop { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Exec { opcode, dst, srcs } => {
                write!(f, "{opcode}")?;
                if let Some(d) = dst {
                    write!(f, " r{d} <-")?;
                }
                for (i, s) in srcs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, " {s}")?;
                }
                Ok(())
            }
            Instr::Pnop { cycles } => write!(f, "pnop {cycles}"),
        }
    }
}

/// Compresses a cycle-indexed schedule into a context-memory word list:
/// every `Some(instr)` cycle emits the instruction, every maximal run of
/// `None` cycles emits one `Pnop`.
///
/// The inverse is [`expand`]; `expand(compress(s)) == s` for every schedule
/// (property-tested).
pub fn compress(schedule: &[Option<Instr>]) -> Vec<Instr> {
    let mut out = Vec::new();
    let mut idle = 0u32;
    for slot in schedule {
        match slot {
            Some(instr) => {
                if idle > 0 {
                    out.push(Instr::Pnop { cycles: idle });
                    idle = 0;
                }
                out.push(instr.clone());
            }
            None => idle += 1,
        }
    }
    if idle > 0 {
        out.push(Instr::Pnop { cycles: idle });
    }
    out
}

/// Expands a context-memory word list back into a cycle-indexed schedule
/// (inverse of [`compress`]).
pub fn expand(words: &[Instr]) -> Vec<Option<Instr>> {
    let mut out = Vec::new();
    for w in words {
        match w {
            Instr::Pnop { cycles } => out.extend(std::iter::repeat_n(None, *cycles as usize)),
            e => out.push(Some(e.clone())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nopless(op: Opcode) -> Instr {
        Instr::Exec {
            opcode: op,
            dst: Some(0),
            srcs: vec![Operand::Reg(1), Operand::Reg(2)],
        }
    }

    #[test]
    fn durations() {
        assert_eq!(nopless(Opcode::Add).duration(), 1);
        assert_eq!(Instr::Pnop { cycles: 7 }.duration(), 7);
    }

    #[test]
    fn classification() {
        let mv = Instr::Exec {
            opcode: Opcode::Mov,
            dst: Some(0),
            srcs: vec![Operand::Neighbor(Direction::North, 3)],
        };
        assert!(mv.is_move());
        assert!(!mv.is_operation());
        assert!(nopless(Opcode::Add).is_operation());
        assert!(Instr::Pnop { cycles: 1 }.is_pnop());
    }

    #[test]
    fn compress_gathers_nop_runs() {
        let a = nopless(Opcode::Add);
        let s = vec![
            None,
            None,
            Some(a.clone()),
            None,
            None,
            None,
            Some(a.clone()),
            None,
        ];
        let words = compress(&s);
        assert_eq!(
            words,
            vec![
                Instr::Pnop { cycles: 2 },
                a.clone(),
                Instr::Pnop { cycles: 3 },
                a.clone(),
                Instr::Pnop { cycles: 1 },
            ]
        );
        assert_eq!(expand(&words), s);
    }

    #[test]
    fn compress_empty_and_all_idle() {
        assert_eq!(compress(&[]), vec![]);
        assert_eq!(compress(&[None, None]), vec![Instr::Pnop { cycles: 2 }]);
    }

    #[test]
    fn display_forms() {
        let i = Instr::Exec {
            opcode: Opcode::Add,
            dst: Some(2),
            srcs: vec![Operand::Reg(0), Operand::Neighbor(Direction::East, 1)],
        };
        assert_eq!(i.to_string(), "add r2 <- r0, E.r1");
        assert_eq!(Instr::Pnop { cycles: 4 }.to_string(), "pnop 4");
        assert_eq!(Operand::Crf(3).to_string(), "c3");
    }
}
