//! Lowering a [`KernelMapping`] to a [`CgraBinary`].
//!
//! Besides code generation (register allocation, CRF allocation, pnop
//! compression), the assembler is the repository's *definitive validity
//! check* for mappings. It re-derives every architectural constraint
//! independently of the mapper and fails loudly when one is violated:
//!
//! * memory operations only on LSU tiles;
//! * one instruction per tile per cycle;
//! * operands read from the executing tile or a direct torus neighbour,
//!   and only after the value copy is ready;
//! * symbol overwrite hazards (a symbol's home register is overwritten
//!   only after every read of the old value from that register);
//! * RF / CRF capacity;
//! * the Section III-C inequality per tile:
//!   `n(Mo) + n(pnop) ≤ n(I)` (context words fit the context memory).

use crate::instr::{compress, Instr, Operand};
use crate::mapping::{KernelMapping, OperandSource};
use crate::program::{BinTerminator, CgraBinary, TileProgram};
use cmam_arch::{CgraConfig, Direction, TileId};
use cmam_cdfg::{Cdfg, SymbolId, Terminator, ValueId, ValueKind};
use std::error::Error;
use std::fmt;

/// A constraint violation found while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A memory operation was placed on a tile without a load/store unit.
    LsuViolation {
        /// Offending tile.
        tile: TileId,
    },
    /// Two instructions share one `(tile, cycle)` slot.
    SlotConflict {
        /// Offending tile.
        tile: TileId,
        /// Offending cycle.
        cycle: usize,
    },
    /// An instruction's cycle lies outside its block's schedule length.
    CycleOutOfRange {
        /// Offending tile.
        tile: TileId,
        /// Offending cycle.
        cycle: usize,
    },
    /// An operand names a source tile that is neither the executing tile
    /// nor a direct neighbour.
    NonAdjacentRead {
        /// Executing tile.
        tile: TileId,
        /// Claimed source tile.
        src: TileId,
    },
    /// An operand reads a value copy before it is written.
    ValueNotReady {
        /// The value.
        value: ValueId,
        /// Tile whose RF was read.
        tile: TileId,
        /// Read cycle.
        cycle: usize,
    },
    /// An operand reads a value that has no copy at the named tile.
    MissingCopy {
        /// The value.
        value: ValueId,
        /// Tile whose RF was (wrongly) read.
        tile: TileId,
    },
    /// A symbol home register is overwritten while a later instruction
    /// still reads the old value from it.
    SymbolOverwriteHazard {
        /// The symbol.
        symbol: SymbolId,
        /// Cycle of the offending old-value read.
        read_cycle: usize,
        /// Cycle of the overwrite.
        write_cycle: usize,
    },
    /// A symbol has no home tile in the mapping.
    MissingHome {
        /// The symbol.
        symbol: SymbolId,
    },
    /// A direct symbol write / commit move targets a tile that is not the
    /// symbol's home.
    WrongHome {
        /// The symbol.
        symbol: SymbolId,
        /// The tile written instead of the home.
        tile: TileId,
    },
    /// Register demand exceeds the tile's RF.
    RfOverflow {
        /// Offending tile.
        tile: TileId,
        /// Registers needed.
        need: usize,
        /// Registers available.
        capacity: usize,
    },
    /// Distinct constants exceed the tile's CRF.
    CrfOverflow {
        /// Offending tile.
        tile: TileId,
        /// Slots needed.
        need: usize,
        /// Slots available.
        capacity: usize,
    },
    /// Context words exceed the tile's context memory — the inequality of
    /// Section III-C is violated.
    ContextOverflow {
        /// Offending tile.
        tile: TileId,
        /// Words needed.
        need: usize,
        /// Words available.
        capacity: usize,
    },
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleError::LsuViolation { tile } => {
                write!(f, "memory operation on non-LSU tile {tile}")
            }
            AssembleError::SlotConflict { tile, cycle } => {
                write!(f, "two instructions on {tile} at cycle {cycle}")
            }
            AssembleError::CycleOutOfRange { tile, cycle } => {
                write!(f, "instruction on {tile} at cycle {cycle} outside block schedule")
            }
            AssembleError::NonAdjacentRead { tile, src } => {
                write!(f, "{tile} cannot read RF of non-neighbour {src}")
            }
            AssembleError::ValueNotReady { value, tile, cycle } => {
                write!(f, "{value} read from {tile} at cycle {cycle} before it is written")
            }
            AssembleError::MissingCopy { value, tile } => {
                write!(f, "{value} has no copy in the RF of {tile}")
            }
            AssembleError::SymbolOverwriteHazard {
                symbol,
                read_cycle,
                write_cycle,
            } => write!(
                f,
                "home register of {symbol} overwritten at cycle {write_cycle} but old value read at cycle {read_cycle}"
            ),
            AssembleError::MissingHome { symbol } => {
                write!(f, "symbol {symbol} has no home tile")
            }
            AssembleError::WrongHome { symbol, tile } => {
                write!(f, "symbol {symbol} committed on non-home tile {tile}")
            }
            AssembleError::RfOverflow {
                tile,
                need,
                capacity,
            } => write!(f, "{tile} needs {need} registers, has {capacity}"),
            AssembleError::CrfOverflow {
                tile,
                need,
                capacity,
            } => write!(f, "{tile} needs {need} CRF slots, has {capacity}"),
            AssembleError::ContextOverflow {
                tile,
                need,
                capacity,
            } => write!(f, "{tile} needs {need} context words, has {capacity}"),
        }
    }
}

impl Error for AssembleError {}

/// Per-tile word accounting, the measured counterpart of the paper's
/// `n(Vo)`, `n(To)`, `n(pnop)`, `n(I)` bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsmReport {
    /// Per tile: (operation words, move words, pnop words).
    pub per_tile: Vec<(usize, usize, usize)>,
}

impl AsmReport {
    /// Context words used on one tile.
    pub fn words(&self, tile: TileId) -> usize {
        let (o, m, p) = self.per_tile[tile.0];
        o + m + p
    }

    /// Total operation words.
    pub fn total_ops(&self) -> usize {
        self.per_tile.iter().map(|t| t.0).sum()
    }

    /// Total move words (the paper's transformed operations `n(To)` are
    /// realised as moves and re-computed ops).
    pub fn total_moves(&self) -> usize {
        self.per_tile.iter().map(|t| t.1).sum()
    }

    /// Total pnop words.
    pub fn total_pnops(&self) -> usize {
        self.per_tile.iter().map(|t| t.2).sum()
    }

    /// Per-tile context occupancy as a fraction of capacity (Fig 2 data).
    pub fn occupancy(&self, config: &CgraConfig) -> Vec<f64> {
        self.per_tile
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let cap = config.tile(TileId(i)).cm_words;
                self.words(TileId(i)) as f64 / cap as f64
            })
            .collect()
    }
}

/// Epoch-stamped entry of the dense `(tile, value)` copy tables: a block
/// entry is live only while its `stamp` equals the current block's epoch,
/// so "clearing" all tables between blocks is a counter increment.
#[derive(Debug, Clone, Copy, Default)]
struct CopySlot {
    stamp: u32,
    reg: u8,
    ready: usize,
}

/// Epoch-stamped entry of the dense `(tile, value)` live-interval table.
#[derive(Debug, Clone, Copy, Default)]
struct IntervalSlot {
    stamp: u32,
    start: usize,
    end: usize,
}

/// Assembles `mapping` of `cdfg` for `config`.
///
/// # Errors
///
/// Returns the first [`AssembleError`] found; see the module docs for the
/// checked constraints.
pub fn assemble(
    cdfg: &Cdfg,
    mapping: &KernelMapping,
    config: &CgraConfig,
) -> Result<(CgraBinary, AsmReport), AssembleError> {
    let _span = cmam_obs::span!("assemble", blocks = mapping.blocks.len() as u64);
    let geom = config.geometry();
    let ntiles = geom.num_tiles();

    // --- Persistent registers: symbols grouped by home tile. ---
    // `symbol_homes` is a BTreeMap, so iteration is already sorted by
    // symbol id — register numbers are deterministic by construction.
    // Homes live in a dense `SymbolId`-indexed table, so `home_of` is a
    // single array load.
    let nsymbols = cdfg.num_symbols();
    let mut persistent: Vec<Option<(TileId, u8)>> = vec![None; nsymbols];
    let mut persistent_count = vec![0usize; ntiles];
    for (&s, &home) in &mapping.symbol_homes {
        let reg = persistent_count[home.0];
        persistent[s.0 as usize] = Some((home, reg as u8));
        persistent_count[home.0] += 1;
    }
    for (i, &cnt) in persistent_count.iter().enumerate() {
        let cap = config.tile(TileId(i)).rf_words;
        if cnt > cap {
            return Err(AssembleError::RfOverflow {
                tile: TileId(i),
                need: cnt,
                capacity: cap,
            });
        }
    }
    let home_of = |s: SymbolId| -> Result<(TileId, u8), AssembleError> {
        persistent
            .get(s.0 as usize)
            .copied()
            .flatten()
            .ok_or(AssembleError::MissingHome { symbol: s })
    };

    // --- CRF allocation (kernel-wide per tile). ---
    let mut crf: Vec<Vec<i32>> = vec![Vec::new(); ntiles];
    for bm in &mapping.blocks {
        for po in &bm.ops {
            for src in &po.operands {
                if let OperandSource::Const(c) = src {
                    if !crf[po.tile.0].contains(c) {
                        crf[po.tile.0].push(*c);
                    }
                }
            }
        }
    }
    for (i, consts) in crf.iter().enumerate() {
        let cap = config.tile(TileId(i)).crf_words;
        if consts.len() > cap {
            return Err(AssembleError::CrfOverflow {
                tile: TileId(i),
                need: consts.len(),
                capacity: cap,
            });
        }
    }

    let dir_to = |t: TileId, src: TileId| -> Result<Option<Direction>, AssembleError> {
        if t == src {
            return Ok(None);
        }
        for d in Direction::ALL {
            if geom.neighbor(t, d) == src {
                return Ok(Some(d));
            }
        }
        Err(AssembleError::NonAdjacentRead { tile: t, src })
    };

    let mut tiles = vec![TileProgram { blocks: Vec::new() }; ntiles];

    // --- Dense per-block scratch, allocated once and epoch-stamped. ---
    // Every block-local hot table is an index-keyed array mirroring
    // `cmam_core::partial`'s flat layout: `(tile, value)` keys flatten to
    // `tile * nvalues + value`, `(tile, cycle)` keys to
    // `cycle * ntiles + tile`, symbols index directly. Entries are live
    // only under the current block's epoch stamp, so moving to the next
    // block "clears" all tables by bumping a counter.
    let nvalues = cdfg.num_values();
    let max_len = mapping.blocks.iter().map(|b| b.length).max().unwrap_or(0);
    // Slot occupancy (the old `(tile, cycle) -> Intent` conflict map).
    let mut slot_used = vec![0u32; ntiles * max_len];
    // Overwrite cycle of each symbol's home register in this block.
    let mut overwrite: Vec<(u32, usize)> = vec![(0, 0); nsymbols];
    // Values landing in persistent registers (direct writes / commits).
    let mut persistent_values: Vec<CopySlot> = vec![CopySlot::default(); ntiles * nvalues];
    // (tile, value) -> live interval, plus the keys touched this block in
    // insertion order (ops before moves — a deterministic work list the
    // register allocator sorts per tile).
    let mut intervals: Vec<IntervalSlot> = vec![IntervalSlot::default(); ntiles * nvalues];
    let mut touched: Vec<usize> = Vec::new();
    // Block-local copies produced by the register allocator.
    let mut copies: Vec<CopySlot> = vec![CopySlot::default(); ntiles * nvalues];
    let mut per_tile_ivals: Vec<Vec<(usize, usize, ValueId)>> = vec![Vec::new(); ntiles];
    // The cycle-indexed schedule, one contiguous row of `bm.length`
    // slots per tile.
    let mut sched: Vec<Option<Instr>> = Vec::new();

    for (bidx, bm) in mapping.blocks.iter().enumerate() {
        let epoch = bidx as u32 + 1;
        let tv = |tile: TileId, value: ValueId| tile.0 * nvalues + value.0 as usize;

        // --- Detect slot conflicts and architectural violations. ---
        for po in &bm.ops {
            if po.cycle >= bm.length {
                return Err(AssembleError::CycleOutOfRange {
                    tile: po.tile,
                    cycle: po.cycle,
                });
            }
            let opcode = cdfg.op(po.op).opcode;
            if opcode.is_memory() && !config.tile(po.tile).has_lsu {
                return Err(AssembleError::LsuViolation { tile: po.tile });
            }
            let slot = &mut slot_used[po.cycle * ntiles + po.tile.0];
            if *slot == epoch {
                return Err(AssembleError::SlotConflict {
                    tile: po.tile,
                    cycle: po.cycle,
                });
            }
            *slot = epoch;
        }
        for mv in &bm.moves {
            if mv.cycle >= bm.length {
                return Err(AssembleError::CycleOutOfRange {
                    tile: mv.tile,
                    cycle: mv.cycle,
                });
            }
            let slot = &mut slot_used[mv.cycle * ntiles + mv.tile.0];
            if *slot == epoch {
                return Err(AssembleError::SlotConflict {
                    tile: mv.tile,
                    cycle: mv.cycle,
                });
            }
            *slot = epoch;
        }

        // --- Collect block-local copies with live intervals. ---
        // Copy key: (tile, value). Persistent writes (direct symbol writes
        // and commit moves) target the persistent register instead.
        touched.clear();
        let mut start_interval = |k: usize, cycle: usize, touched: &mut Vec<usize>| {
            let e = &mut intervals[k];
            if e.stamp != epoch {
                *e = IntervalSlot {
                    stamp: epoch,
                    start: cycle + 1,
                    end: cycle + 1,
                };
                touched.push(k);
            } else {
                e.start = e.start.min(cycle + 1); // re-computed duplicates merge
            }
        };
        for po in &bm.ops {
            let op = cdfg.op(po.op);
            let Some(result) = op.result else { continue };
            if po.direct_symbol_write {
                let s = op.writes_symbol.ok_or(AssembleError::WrongHome {
                    symbol: SymbolId(u32::MAX),
                    tile: po.tile,
                })?;
                let (home, reg) = home_of(s)?;
                if home != po.tile {
                    return Err(AssembleError::WrongHome {
                        symbol: s,
                        tile: po.tile,
                    });
                }
                overwrite[s.0 as usize] = (epoch, po.cycle);
                persistent_values[tv(home, result)] = CopySlot {
                    stamp: epoch,
                    reg,
                    ready: po.cycle + 1,
                };
            } else {
                start_interval(tv(po.tile, result), po.cycle, &mut touched);
            }
        }
        for mv in &bm.moves {
            if let Some(s) = mv.commit_symbol {
                let (home, reg) = home_of(s)?;
                if home != mv.tile {
                    return Err(AssembleError::WrongHome {
                        symbol: s,
                        tile: mv.tile,
                    });
                }
                overwrite[s.0 as usize] = (epoch, mv.cycle);
                persistent_values[tv(home, mv.value)] = CopySlot {
                    stamp: epoch,
                    reg,
                    ready: mv.cycle + 1,
                };
            } else {
                start_interval(tv(mv.tile, mv.value), mv.cycle, &mut touched);
            }
        }

        // Reads extend the interval of the copy they resolve to.
        {
            let mut extend = |tile: TileId, value: ValueId, cycle: usize| {
                let e = &mut intervals[tv(tile, value)];
                if e.stamp == epoch {
                    e.end = e.end.max(cycle);
                }
            };
            for po in &bm.ops {
                for osrc in &po.operands {
                    if let OperandSource::Rf { tile: src, value } = *osrc {
                        extend(src, value, po.cycle);
                    }
                }
            }
            for mv in &bm.moves {
                extend(mv.src_tile, mv.value, mv.cycle);
            }
        }

        // --- Linear-scan register allocation per tile. ---
        // Live intervals of an interval graph colour optimally with
        // max-overlap registers, so this succeeds whenever the mapper's
        // occupancy checks passed.
        for list in per_tile_ivals.iter_mut() {
            list.clear();
        }
        for &k in &touched {
            let e = intervals[k];
            per_tile_ivals[k / nvalues].push((e.start, e.end, ValueId((k % nvalues) as u32)));
        }
        for (i, list) in per_tile_ivals.iter_mut().enumerate() {
            let tile = TileId(i);
            let cap = config.tile(tile).rf_words;
            let first_local = persistent_count[i];
            list.sort();
            let mut free: Vec<u8> = (first_local..cap).rev().map(|r| r as u8).collect();
            let mut active: Vec<(usize, u8)> = Vec::new(); // (end, reg)
            for &(start, end, value) in list.iter() {
                // Release registers whose interval ended before `start`.
                active.retain(|&(e, reg)| {
                    if e < start {
                        free.push(reg);
                        false
                    } else {
                        true
                    }
                });
                free.sort_by(|a, b| b.cmp(a)); // lowest register first (pop from end)
                let Some(reg) = free.pop() else {
                    return Err(AssembleError::RfOverflow {
                        tile,
                        need: active.len() + first_local + 1,
                        capacity: cap,
                    });
                };
                active.push((end, reg));
                copies[tv(tile, value)] = CopySlot {
                    stamp: epoch,
                    reg,
                    ready: start,
                };
            }
        }

        // --- Resolve a read of `value` from `src`'s RF at `cycle`. ---
        let copies = &copies;
        let persistent_values = &persistent_values;
        let overwrite = &overwrite;
        let resolve = |value: ValueId, src: TileId, cycle: usize| -> Result<u8, AssembleError> {
            let c = copies[tv(src, value)];
            if c.stamp == epoch {
                if cycle < c.ready {
                    return Err(AssembleError::ValueNotReady {
                        value,
                        tile: src,
                        cycle,
                    });
                }
                return Ok(c.reg);
            }
            // Old symbol value: read the home register, checking the
            // overwrite hazard.
            if let ValueKind::SymbolUse(s) = cdfg.value(value).kind {
                let (home, reg) = home_of(s)?;
                if home == src {
                    let (stamp, w) = overwrite[s.0 as usize];
                    if stamp == epoch && cycle > w {
                        return Err(AssembleError::SymbolOverwriteHazard {
                            symbol: s,
                            read_cycle: cycle,
                            write_cycle: w,
                        });
                    }
                    return Ok(reg);
                }
            }
            // New symbol value written directly / committed to home.
            let p = persistent_values[tv(src, value)];
            if p.stamp == epoch {
                if cycle < p.ready {
                    return Err(AssembleError::ValueNotReady {
                        value,
                        tile: src,
                        cycle,
                    });
                }
                return Ok(p.reg);
            }
            Err(AssembleError::MissingCopy { value, tile: src })
        };

        // --- Emit the cycle-indexed schedule per tile, then compress. ---
        sched.clear();
        sched.resize(ntiles * bm.length, None);
        for po in &bm.ops {
            let op = cdfg.op(po.op);
            let mut srcs = Vec::with_capacity(po.operands.len());
            for osrc in &po.operands {
                let operand = match *osrc {
                    OperandSource::Const(c) => {
                        let idx = crf[po.tile.0]
                            .iter()
                            .position(|&x| x == c)
                            .expect("constant was collected above");
                        Operand::Crf(idx as u8)
                    }
                    OperandSource::Rf { tile: src, value } => {
                        let reg = resolve(value, src, po.cycle)?;
                        match dir_to(po.tile, src)? {
                            None => Operand::Reg(reg),
                            Some(d) => Operand::Neighbor(d, reg),
                        }
                    }
                };
                srcs.push(operand);
            }
            let dst = match op.result {
                None => None,
                Some(r) => {
                    // The first pass registered every result in exactly
                    // one of the two tables under this block's epoch; a
                    // stale stamp here means the collection pass and the
                    // emit pass disagree (the dense-table analogue of
                    // the old HashMap-indexing panic).
                    let slot = if po.direct_symbol_write {
                        persistent_values[tv(po.tile, r)]
                    } else {
                        copies[tv(po.tile, r)]
                    };
                    debug_assert_eq!(slot.stamp, epoch, "result was registered above");
                    Some(slot.reg)
                }
            };
            sched[po.tile.0 * bm.length + po.cycle] = Some(Instr::Exec {
                opcode: op.opcode,
                dst,
                srcs,
            });
        }
        for mv in &bm.moves {
            let reg = resolve(mv.value, mv.src_tile, mv.cycle)?;
            let src = match dir_to(mv.tile, mv.src_tile)? {
                None => Operand::Reg(reg),
                Some(d) => Operand::Neighbor(d, reg),
            };
            let slot = if mv.commit_symbol.is_some() {
                persistent_values[tv(mv.tile, mv.value)]
            } else {
                copies[tv(mv.tile, mv.value)]
            };
            debug_assert_eq!(slot.stamp, epoch, "move target was registered above");
            let dst = slot.reg;
            sched[mv.tile.0 * bm.length + mv.cycle] = Some(Instr::Exec {
                opcode: cmam_cdfg::Opcode::Mov,
                dst: Some(dst),
                srcs: vec![src],
            });
        }

        for (i, tp) in tiles.iter_mut().enumerate() {
            tp.blocks
                .push(compress(&sched[i * bm.length..(i + 1) * bm.length]));
        }
    }

    // --- Accounting and the Section III-C fit check. ---
    // Operation words are the mapped CDFG operation instances (including
    // source-level `mov`s); move words are the mapper-inserted routing and
    // commit moves; the rest of each tile's words are pnops.
    let mut per_tile = vec![(0usize, 0usize, 0usize); ntiles];
    for bm in &mapping.blocks {
        for po in &bm.ops {
            per_tile[po.tile.0].0 += 1;
        }
        for mv in &bm.moves {
            per_tile[mv.tile.0].1 += 1;
        }
    }
    for (i, tp) in tiles.iter().enumerate() {
        let words = tp.words();
        let (ops, moves, _) = per_tile[i];
        debug_assert!(words >= ops + moves, "tile {i}: word accounting broke");
        per_tile[i].2 = words - ops - moves;
        let cap = config.tile(TileId(i)).cm_words;
        if words > cap {
            return Err(AssembleError::ContextOverflow {
                tile: TileId(i),
                need: words,
                capacity: cap,
            });
        }
    }

    let terminators = cdfg
        .block_ids()
        .map(
            |b| match cdfg.block(b).terminator.as_ref().expect("validated") {
                Terminator::Jump(t) => BinTerminator::Jump(t.0),
                Terminator::Branch {
                    taken, fallthrough, ..
                } => BinTerminator::Branch {
                    taken: taken.0,
                    fallthrough: fallthrough.0,
                },
                Terminator::Return => BinTerminator::Return,
            },
        )
        .collect();

    let binary = CgraBinary {
        name: cdfg.name().to_owned(),
        tiles,
        crf,
        block_lengths: mapping.blocks.iter().map(|b| b.length).collect(),
        terminators,
        entry: cdfg.entry().0,
    };
    Ok((binary, AsmReport { per_tile }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{BlockMapping, PlacedMove, PlacedOp};
    use cmam_cdfg::CdfgBuilder;

    /// One block: r = load(0); store(1, r). Two LSU ops.
    fn tiny_cdfg() -> (Cdfg, ValueId) {
        let mut b = CdfgBuilder::new("tiny");
        let _ = b.block("b0");
        let a0 = b.constant(0);
        let a1 = b.constant(1);
        let v = b.load_name(a0, "m");
        b.store(a1, v, "m");
        b.ret();
        (b.finish().unwrap(), v)
    }

    fn tiny_mapping(v: ValueId, load_tile: usize, store_tile: usize) -> KernelMapping {
        KernelMapping {
            blocks: vec![BlockMapping {
                length: 2,
                ops: vec![
                    PlacedOp {
                        op: cmam_cdfg::OpId(0),
                        tile: TileId(load_tile),
                        cycle: 0,
                        operands: vec![OperandSource::Const(0)],
                        direct_symbol_write: false,
                    },
                    PlacedOp {
                        op: cmam_cdfg::OpId(1),
                        tile: TileId(store_tile),
                        cycle: 1,
                        operands: vec![
                            OperandSource::Const(1),
                            OperandSource::Rf {
                                tile: TileId(load_tile),
                                value: v,
                            },
                        ],
                        direct_symbol_write: false,
                    },
                ],
                moves: vec![],
            }],
            symbol_homes: std::collections::BTreeMap::new(),
        }
    }

    #[test]
    fn assembles_load_store_pair() {
        let (cdfg, v) = tiny_cdfg();
        let cfg = CgraConfig::hom64();
        // Tile 0 and its neighbour tile 1, both LSU tiles.
        let (bin, report) = assemble(&cdfg, &tiny_mapping(v, 0, 1), &cfg).unwrap();
        assert_eq!(bin.context_words(TileId(0)), 2); // load + pnop(1)
        assert_eq!(bin.context_words(TileId(1)), 2); // pnop(1) + store
        assert_eq!(report.total_ops(), 2);
        assert_eq!(report.total_moves(), 0);
        // 14 untouched tiles contribute 1 pnop each; tiles 0 and 1 one each.
        assert_eq!(report.total_pnops(), 16);
        assert_eq!(bin.crf[0], vec![0]);
        assert_eq!(bin.crf[1], vec![1]);
    }

    #[test]
    fn rejects_memory_op_on_compute_tile() {
        let (cdfg, v) = tiny_cdfg();
        let cfg = CgraConfig::hom64();
        // Tile 12 has no LSU (tiles 9..16 are compute-only).
        let err = assemble(&cdfg, &tiny_mapping(v, 0, 12), &cfg).unwrap_err();
        assert!(matches!(err, AssembleError::LsuViolation { .. }));
    }

    #[test]
    fn rejects_non_adjacent_read() {
        let (cdfg, v) = tiny_cdfg();
        let cfg = CgraConfig::hom64();
        // Tile 0 and tile 5 are distance 2 apart on the 4x4 torus.
        let err = assemble(&cdfg, &tiny_mapping(v, 0, 5), &cfg).unwrap_err();
        assert!(matches!(err, AssembleError::NonAdjacentRead { .. }));
    }

    #[test]
    fn rejects_value_read_too_early() {
        let (cdfg, v) = tiny_cdfg();
        let cfg = CgraConfig::hom64();
        let mut m = tiny_mapping(v, 0, 1);
        // Store at cycle 0 would read the load's result in the same cycle.
        m.blocks[0].ops[1].cycle = 0;
        let err = assemble(&cdfg, &m, &cfg).unwrap_err();
        assert!(matches!(err, AssembleError::ValueNotReady { .. }));
    }

    #[test]
    fn rejects_slot_conflict() {
        let (cdfg, v) = tiny_cdfg();
        let cfg = CgraConfig::hom64();
        let mut m = tiny_mapping(v, 0, 0);
        m.blocks[0].ops[1].cycle = 0; // same tile, same cycle as the load
        let err = assemble(&cdfg, &m, &cfg).unwrap_err();
        assert!(matches!(err, AssembleError::SlotConflict { .. }));
    }

    #[test]
    fn rejects_context_overflow_on_tiny_cm() {
        let (cdfg, v) = tiny_cdfg();
        let cfg = CgraConfig::builder(4, 4)
            .name("TINY")
            .uniform_cm(1)
            .build()
            .unwrap();
        let err = assemble(&cdfg, &tiny_mapping(v, 0, 1), &cfg).unwrap_err();
        assert!(matches!(err, AssembleError::ContextOverflow { .. }));
    }

    #[test]
    fn moves_assemble_and_count() {
        // load on tile 0; move result to tile 1; store from tile 1's copy
        // on tile 2 reading neighbour RF.
        let (cdfg, v) = tiny_cdfg();
        let cfg = CgraConfig::hom64();
        let mapping = KernelMapping {
            blocks: vec![BlockMapping {
                length: 3,
                ops: vec![
                    PlacedOp {
                        op: cmam_cdfg::OpId(0),
                        tile: TileId(0),
                        cycle: 0,
                        operands: vec![OperandSource::Const(0)],
                        direct_symbol_write: false,
                    },
                    PlacedOp {
                        op: cmam_cdfg::OpId(1),
                        tile: TileId(2),
                        cycle: 2,
                        operands: vec![
                            OperandSource::Const(1),
                            OperandSource::Rf {
                                tile: TileId(1),
                                value: v,
                            },
                        ],
                        direct_symbol_write: false,
                    },
                ],
                moves: vec![PlacedMove {
                    value: v,
                    src_tile: TileId(0),
                    tile: TileId(1),
                    cycle: 1,
                    commit_symbol: None,
                }],
            }],
            symbol_homes: std::collections::BTreeMap::new(),
        };
        let (bin, report) = assemble(&cdfg, &mapping, &cfg).unwrap();
        assert_eq!(report.total_moves(), 1);
        assert_eq!(report.total_ops(), 2);
        // The move on tile 1 reads west neighbour (tile 0) register 0.
        let words = &bin.tiles[1].blocks[0];
        assert!(words.iter().any(|w| w.is_move()));
    }
}
