//! Matrix multiplication `C = A x B` (`N x N`, inner product unrolled).
//!
//! Memory layout: `A` row-major at 0, `B` row-major at [`B0`], `C` at
//! [`C0`]. The paper's Fig 2 uses exactly this kernel to show the uneven
//! context distribution of the basic mapping.

use crate::data::lcg_fill;
use crate::spec::KernelSpec;
use cmam_cdfg::{Cdfg, CdfgBuilder, Opcode};

/// Matrix dimension.
pub const N: usize = 8;
/// Base address of `B`.
pub const B0: usize = 64;
/// Base address of `C`.
pub const C0: usize = 128;
/// Memory size in words.
pub const MEM: usize = 192;

/// Builds the MatM CDFG: outer loop over rows `i`, inner loop over columns
/// `j`, the `k` product fully unrolled.
pub fn cdfg() -> Cdfg {
    let mut b = CdfgBuilder::new("matm");
    let entry = b.block("entry");
    let outer = b.block("outer");
    let body = b.block("body");
    let latch = b.block("latch");
    let exit = b.block("exit");
    let i = b.symbol("i");
    let j = b.symbol("j");
    let rowbase = b.symbol("rowbase");

    b.select(entry);
    b.mov_const_to_symbol(0, i);
    b.mov_const_to_symbol(0, rowbase);
    b.jump(outer);

    b.select(outer);
    let zero = b.constant(0);
    let jz = b.op(Opcode::Mov, &[zero]);
    b.write_symbol(jz, j);
    b.jump(body);

    b.select(body);
    let jv = b.use_symbol(j);
    let rb = b.use_symbol(rowbase);
    let mut prods = Vec::with_capacity(N);
    for k in 0..N {
        let ka = b.constant(k as i32);
        let aaddr = b.op(Opcode::Add, &[rb, ka]);
        let a = b.load_name(aaddr, "a");
        let kb = b.constant((B0 + k * N) as i32);
        let baddr = b.op(Opcode::Add, &[jv, kb]);
        let bb = b.load_name(baddr, "b");
        prods.push(b.op(Opcode::Mul, &[a, bb]));
    }
    let mut level = prods;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(b.op(Opcode::Add, &[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let acc = level[0];
    let cb = b.constant(C0 as i32);
    let t = b.op(Opcode::Add, &[rb, jv]);
    let caddr = b.op(Opcode::Add, &[t, cb]);
    b.store(caddr, acc, "c");
    let one = b.constant(1);
    let j2 = b.op(Opcode::Add, &[jv, one]);
    b.write_symbol(j2, j);
    let nn = b.constant(N as i32);
    let cond = b.op(Opcode::Lt, &[j2, nn]);
    b.branch(cond, body, latch);

    b.select(latch);
    let iv = b.use_symbol(i);
    let rb2 = b.use_symbol(rowbase);
    let one = b.constant(1);
    let i2 = b.op(Opcode::Add, &[iv, one]);
    b.write_symbol(i2, i);
    let nconst = b.constant(N as i32);
    let rb3 = b.op(Opcode::Add, &[rb2, nconst]);
    b.write_symbol(rb3, rowbase);
    let cond = b.op(Opcode::Lt, &[i2, nconst]);
    b.branch(cond, outer, exit);

    b.select(exit);
    b.ret();
    b.finish().expect("MatM cdfg is valid")
}

/// Plain-Rust reference.
pub fn reference(mem: &[i32]) -> Vec<i32> {
    let mut out = vec![0i32; N * N];
    for i in 0..N {
        for j in 0..N {
            let mut acc = 0i32;
            for k in 0..N {
                acc = acc.wrapping_add(mem[i * N + k].wrapping_mul(mem[B0 + k * N + j]));
            }
            out[i * N + j] = acc;
        }
    }
    out
}

/// Paper-sized instance with deterministic inputs.
pub fn spec() -> KernelSpec {
    let mut mem = vec![0i32; MEM];
    let a = lcg_fill(21, N * N, 8);
    mem[..N * N].copy_from_slice(&a);
    let bmat = lcg_fill(23, N * N, 8);
    mem[B0..B0 + N * N].copy_from_slice(&bmat);
    let expected = reference(&mem);
    KernelSpec {
        name: "MatM".to_owned(),
        cdfg: cdfg(),
        mem,
        out: C0..C0 + N * N,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_reference() {
        let s = spec();
        let mut mem = s.mem.clone();
        cmam_cdfg::interp::run(&s.cdfg, &mut mem, 10_000_000).unwrap();
        assert_eq!(&mem[s.out.clone()], s.expected.as_slice());
    }

    #[test]
    fn has_nested_loop_structure() {
        let c = cdfg();
        assert_eq!(c.num_blocks(), 5);
        assert_eq!(c.num_symbols(), 3);
    }
}
