//! Non-separable 5x5 filter over an 8x8 image with **memory-resident**
//! weights — the largest kernel body of the suite (50 loads, 25
//! multiplies), matching its role in the paper as the most expensive
//! workload of Table II and the strongest stress on the load/store tiles.

use crate::data::lcg_fill;
use crate::spec::KernelSpec;
use cmam_cdfg::{Cdfg, CdfgBuilder, Opcode};

/// Input image width/height.
pub const W: usize = 8;
/// Output width/height (valid 5x5).
pub const OW: usize = W - 4;
/// Output base address.
pub const OUT0: usize = 64;
/// Weight table base address (25 words, row-major 5x5).
pub const W0: usize = 96;
/// Memory size in words.
pub const MEM: usize = 128;

/// The 5x5 weights, stored to memory by [`spec`].
pub const WEIGHTS: [i32; 25] = [
    1, 4, 6, 4, 1, //
    4, 16, 24, 16, 4, //
    6, 24, 36, 24, 6, //
    4, 16, 24, 16, 4, //
    1, 4, 6, 4, 1,
];

/// Builds the non-separable filter CDFG.
pub fn cdfg() -> Cdfg {
    let mut b = CdfgBuilder::new("nonsepfilter");
    let entry = b.block("entry");
    let outer = b.block("outer");
    let body = b.block("body");
    let latch = b.block("latch");
    let exit = b.block("exit");
    let r = b.symbol("r");
    let c = b.symbol("c");
    let rowbase = b.symbol("rowbase");
    let obase = b.symbol("obase");

    b.select(entry);
    b.mov_const_to_symbol(0, r);
    b.mov_const_to_symbol(0, rowbase);
    b.mov_const_to_symbol(0, obase);
    b.jump(outer);

    b.select(outer);
    let zero = b.constant(0);
    let cz = b.op(Opcode::Mov, &[zero]);
    b.write_symbol(cz, c);
    b.jump(body);

    b.select(body);
    let cv = b.use_symbol(c);
    let rb = b.use_symbol(rowbase);
    let ob = b.use_symbol(obase);
    let base = b.op(Opcode::Add, &[rb, cv]);
    let mut acc: Option<cmam_cdfg::ValueId> = None;
    for dr in 0..5usize {
        for dc in 0..5usize {
            let off = b.constant((dr * W + dc) as i32);
            let addr = b.op(Opcode::Add, &[base, off]);
            let x = b.load_name(addr, "img");
            let waddr = b.constant((W0 + dr * 5 + dc) as i32);
            let w = b.load_name(waddr, "wtab");
            let p = b.op(Opcode::Mul, &[x, w]);
            acc = Some(match acc {
                None => p,
                Some(a) => b.op(Opcode::Add, &[a, p]),
            });
        }
    }
    let acc = acc.expect("25 products");
    let t = b.op(Opcode::Add, &[ob, cv]);
    let out0 = b.constant(OUT0 as i32);
    let oaddr = b.op(Opcode::Add, &[t, out0]);
    b.store(oaddr, acc, "out");
    let one = b.constant(1);
    let c2 = b.op(Opcode::Add, &[cv, one]);
    b.write_symbol(c2, c);
    let ow = b.constant(OW as i32);
    let cond = b.op(Opcode::Lt, &[c2, ow]);
    b.branch(cond, body, latch);

    b.select(latch);
    let rv = b.use_symbol(r);
    let rb2 = b.use_symbol(rowbase);
    let ob2 = b.use_symbol(obase);
    let one = b.constant(1);
    let r2 = b.op(Opcode::Add, &[rv, one]);
    b.write_symbol(r2, r);
    let wconst = b.constant(W as i32);
    let rb3 = b.op(Opcode::Add, &[rb2, wconst]);
    b.write_symbol(rb3, rowbase);
    let owconst = b.constant(OW as i32);
    let ob3 = b.op(Opcode::Add, &[ob2, owconst]);
    b.write_symbol(ob3, obase);
    let cond = b.op(Opcode::Lt, &[r2, owconst]);
    b.branch(cond, outer, exit);

    b.select(exit);
    b.ret();
    b.finish().expect("nonsep cdfg is valid")
}

/// Plain-Rust reference.
pub fn reference(mem: &[i32]) -> Vec<i32> {
    let mut out = vec![0i32; OW * OW];
    for r in 0..OW {
        for c in 0..OW {
            let mut acc = 0i32;
            for dr in 0..5 {
                for dc in 0..5 {
                    acc = acc.wrapping_add(
                        mem[(r + dr) * W + c + dc].wrapping_mul(mem[W0 + dr * 5 + dc]),
                    );
                }
            }
            out[r * OW + c] = acc;
        }
    }
    out
}

/// Paper-sized instance with deterministic inputs.
pub fn spec() -> KernelSpec {
    let mut mem = vec![0i32; MEM];
    let img = lcg_fill(51, W * W, 6);
    mem[..W * W].copy_from_slice(&img);
    mem[W0..W0 + 25].copy_from_slice(&WEIGHTS);
    let expected = reference(&mem);
    KernelSpec {
        name: "NonSepFilter".to_owned(),
        cdfg: cdfg(),
        mem,
        out: OUT0..OUT0 + OW * OW,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_reference() {
        let s = spec();
        let mut mem = s.mem.clone();
        cmam_cdfg::interp::run(&s.cdfg, &mut mem, 10_000_000).unwrap();
        assert_eq!(&mem[s.out.clone()], s.expected.as_slice());
    }

    #[test]
    fn body_is_the_biggest_of_all_kernels() {
        let c = cdfg();
        let body = c.block_ids().nth(2).unwrap();
        let dfg = c.dfg(body);
        assert!(dfg.num_ops() > 100);
        let loads = dfg.ops().filter(|o| o.opcode == Opcode::Load).count();
        assert_eq!(loads, 50, "image + weight loads");
    }
}
