//! Deterministic input data generation shared by all kernels.

/// Fills `len` words with small deterministic pseudo-random values in
/// `[-range, range]` using a fixed LCG, so every run and every test sees
/// identical inputs without depending on an RNG crate here.
pub fn lcg_fill(seed: u64, len: usize, range: i32) -> Vec<i32> {
    assert!(range > 0, "range must be positive");
    let mut s = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = ((s >> 33) % (2 * range as u64 + 1)) as i32 - range;
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let a = lcg_fill(42, 100, 8);
        let b = lcg_fill(42, 100, 8);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (-8..=8).contains(&v)));
        // Not all identical.
        assert!(a.iter().any(|&v| v != a[0]));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(lcg_fill(1, 32, 8), lcg_fill(2, 32, 8));
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_panics() {
        lcg_fill(1, 4, 0);
    }
}
