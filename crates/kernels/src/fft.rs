//! Radix-2 DIT FFT, `N = 16`, Q8 fixed point.
//!
//! The input is stored bit-reversed (done by the host when building the
//! memory image), data interleaved `re, im`, twiddle table `w^k`
//! interleaved at [`TW0`]. The CDFG is a triple loop nest — stage, group,
//! butterfly — with six symbol variables; it is the paper's Fig 5 example
//! of a kernel whose symbol-variable routing dominates, which is exactly
//! where the weighted traversal pays off.

use crate::spec::KernelSpec;
use cmam_cdfg::{Cdfg, CdfgBuilder, Opcode};

/// Transform size.
pub const N: usize = 16;
/// Fixed-point fraction bits.
pub const Q: u32 = 8;
/// Twiddle table base (interleaved re/im, `N/2` entries).
pub const TW0: usize = 64;
/// Memory size in words.
pub const MEM: usize = 96;

/// Builds the FFT CDFG.
pub fn cdfg() -> Cdfg {
    let mut b = CdfgBuilder::new("fft");
    let entry = b.block("entry");
    let stage = b.block("stage");
    let group = b.block("group");
    let body = b.block("butterfly");
    let glatch = b.block("group_latch");
    let slatch = b.block("stage_latch");
    let exit = b.block("exit");

    let s = b.symbol("s"); // stage index
    let half = b.symbol("half"); // butterflies per group
    let step = b.symbol("step"); // 2 * half
    let tstride = b.symbol("tstride"); // twiddle stride = (N/2) / half
    let g = b.symbol("g"); // group base (element index)
    let j = b.symbol("j"); // butterfly index within group

    b.select(entry);
    b.mov_const_to_symbol(0, s);
    b.mov_const_to_symbol(1, half);
    b.mov_const_to_symbol(2, step);
    b.mov_const_to_symbol((N / 2) as i32, tstride);
    b.jump(stage);

    b.select(stage);
    let zero = b.constant(0);
    let gz = b.op(Opcode::Mov, &[zero]);
    b.write_symbol(gz, g);
    b.jump(group);

    b.select(group);
    let zero = b.constant(0);
    let jz = b.op(Opcode::Mov, &[zero]);
    b.write_symbol(jz, j);
    b.jump(body);

    b.select(body);
    let jv = b.use_symbol(j);
    let gv = b.use_symbol(g);
    let halfv = b.use_symbol(half);
    let stepv = b.use_symbol(step);
    let tsv = b.use_symbol(tstride);
    let one = b.constant(1);
    // Addresses: a = 2*(g+j), b = a + 2*half (= a + step), tw = TW0 + 2*k.
    let idx = b.op(Opcode::Add, &[gv, jv]);
    let are = b.op(Opcode::Shl, &[idx, one]);
    let aim = b.op(Opcode::Add, &[are, one]);
    let bre = b.op(Opcode::Add, &[are, stepv]);
    let bim = b.op(Opcode::Add, &[bre, one]);
    let k = b.op(Opcode::Mul, &[jv, tsv]);
    let k2 = b.op(Opcode::Shl, &[k, one]);
    let tw0 = b.constant(TW0 as i32);
    let twre_a = b.op(Opcode::Add, &[k2, tw0]);
    let twim_a = b.op(Opcode::Add, &[twre_a, one]);
    // Loads.
    let ar = b.load_name(are, "data");
    let ai = b.load_name(aim, "data");
    let br = b.load_name(bre, "data");
    let bi = b.load_name(bim, "data");
    let wr = b.load_name(twre_a, "tw");
    let wi = b.load_name(twim_a, "tw");
    // Complex multiply t = w * b (Q8).
    let q = b.constant(Q as i32);
    let m1 = b.op(Opcode::Mul, &[br, wr]);
    let m2 = b.op(Opcode::Mul, &[bi, wi]);
    let m3 = b.op(Opcode::Mul, &[br, wi]);
    let m4 = b.op(Opcode::Mul, &[bi, wr]);
    let trq = b.op(Opcode::Sub, &[m1, m2]);
    let tiq = b.op(Opcode::Add, &[m3, m4]);
    let tr = b.op(Opcode::Shr, &[trq, q]);
    let ti = b.op(Opcode::Shr, &[tiq, q]);
    // Butterfly.
    let ar2 = b.op(Opcode::Add, &[ar, tr]);
    let ai2 = b.op(Opcode::Add, &[ai, ti]);
    let br2 = b.op(Opcode::Sub, &[ar, tr]);
    let bi2 = b.op(Opcode::Sub, &[ai, ti]);
    b.store(are, ar2, "data");
    b.store(aim, ai2, "data");
    b.store(bre, br2, "data");
    b.store(bim, bi2, "data");
    // j++
    let j2 = b.op(Opcode::Add, &[jv, one]);
    b.write_symbol(j2, j);
    let cond = b.op(Opcode::Lt, &[j2, halfv]);
    b.branch(cond, body, glatch);

    b.select(glatch);
    let gv = b.use_symbol(g);
    let stepv = b.use_symbol(step);
    let g2 = b.op(Opcode::Add, &[gv, stepv]);
    b.write_symbol(g2, g);
    let n = b.constant(N as i32);
    let cond = b.op(Opcode::Lt, &[g2, n]);
    b.branch(cond, group, slatch);

    b.select(slatch);
    let sv = b.use_symbol(s);
    let halfv = b.use_symbol(half);
    let stepv = b.use_symbol(step);
    let tsv = b.use_symbol(tstride);
    let one = b.constant(1);
    let s2 = b.op(Opcode::Add, &[sv, one]);
    b.write_symbol(s2, s);
    let half2 = b.op(Opcode::Shl, &[halfv, one]);
    b.write_symbol(half2, half);
    let step2 = b.op(Opcode::Shl, &[stepv, one]);
    b.write_symbol(step2, step);
    let ts2 = b.op(Opcode::Shr, &[tsv, one]);
    b.write_symbol(ts2, tstride);
    let stages = b.constant(N.trailing_zeros() as i32);
    let cond = b.op(Opcode::Lt, &[s2, stages]);
    b.branch(cond, stage, exit);

    b.select(exit);
    b.ret();
    b.finish().expect("fft cdfg is valid")
}

fn bit_reverse(x: usize, bits: u32) -> usize {
    let mut r = 0usize;
    for i in 0..bits {
        if x & (1 << i) != 0 {
            r |= 1 << (bits - 1 - i);
        }
    }
    r
}

/// Twiddle table `w^k = e^{-2πik/N}` in Q8, interleaved `re, im`.
pub fn twiddles() -> Vec<i32> {
    let mut t = Vec::with_capacity(N);
    for k in 0..N / 2 {
        let ang = -2.0 * std::f64::consts::PI * (k as f64) / (N as f64);
        t.push((ang.cos() * f64::from(1u32 << Q)).round() as i32);
        t.push((ang.sin() * f64::from(1u32 << Q)).round() as i32);
    }
    t
}

/// Plain-Rust reference: the exact same Q8 butterfly arithmetic over the
/// same bit-reversed layout (not a float FFT — bit-exact).
pub fn reference(mem: &[i32]) -> Vec<i32> {
    let mut d: Vec<i32> = mem[..2 * N].to_vec();
    let bits = N.trailing_zeros();
    let mut half = 1usize;
    let mut tstride = N / 2;
    for _ in 0..bits {
        let step = 2 * half;
        let mut g = 0usize;
        while g < N {
            for j in 0..half {
                let a = 2 * (g + j);
                let bidx = a + step;
                let k = j * tstride;
                let wr = mem[TW0 + 2 * k];
                let wi = mem[TW0 + 2 * k + 1];
                let (ar, ai) = (d[a], d[a + 1]);
                let (br, bi) = (d[bidx], d[bidx + 1]);
                let tr = (br.wrapping_mul(wr).wrapping_sub(bi.wrapping_mul(wi))) >> Q;
                let ti = (br.wrapping_mul(wi).wrapping_add(bi.wrapping_mul(wr))) >> Q;
                d[a] = ar.wrapping_add(tr);
                d[a + 1] = ai.wrapping_add(ti);
                d[bidx] = ar.wrapping_sub(tr);
                d[bidx + 1] = ai.wrapping_sub(ti);
            }
            g += step;
        }
        half *= 2;
        tstride /= 2;
    }
    d
}

/// Paper-sized instance: a two-tone test signal, bit-reversed input.
pub fn spec() -> KernelSpec {
    let mut mem = vec![0i32; MEM];
    let bits = N.trailing_zeros();
    for i in 0..N {
        let x = (2.0 * std::f64::consts::PI * (i as f64) / (N as f64)).sin() * 40.0
            + (4.0 * std::f64::consts::PI * (i as f64) / (N as f64)).cos() * 25.0;
        let rev = bit_reverse(i, bits);
        mem[2 * rev] = x.round() as i32;
        mem[2 * rev + 1] = 0;
    }
    mem[TW0..TW0 + N].copy_from_slice(&twiddles());
    let expected = reference(&mem);
    KernelSpec {
        name: "FFT".to_owned(),
        cdfg: cdfg(),
        mem,
        out: 0..2 * N,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_reference() {
        let s = spec();
        let mut mem = s.mem.clone();
        cmam_cdfg::interp::run(&s.cdfg, &mut mem, 10_000_000).unwrap();
        assert_eq!(&mem[s.out.clone()], s.expected.as_slice());
    }

    #[test]
    fn fft_recovers_tone_bins() {
        // The magnitude spectrum should peak at bins 1 and 2 (the two
        // injected tones), sanity-checking the reference itself.
        let s = spec();
        let d = reference(&s.mem);
        let mag = |k: usize| {
            let re = f64::from(d[2 * k]);
            let im = f64::from(d[2 * k + 1]);
            (re * re + im * im).sqrt()
        };
        let peak1 = mag(1);
        let peak2 = mag(2);
        let noise = mag(5).max(mag(6)).max(mag(7));
        assert!(peak1 > 4.0 * noise, "bin1 {peak1} noise {noise}");
        assert!(peak2 > 4.0 * noise, "bin2 {peak2} noise {noise}");
    }

    #[test]
    fn six_symbol_variables() {
        assert_eq!(cdfg().num_symbols(), 6);
    }

    #[test]
    fn bit_reverse_is_involutive() {
        for i in 0..N {
            assert_eq!(bit_reverse(bit_reverse(i, 4), 4), i);
        }
    }
}
