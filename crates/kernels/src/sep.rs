//! Separable 9-tap filter: a horizontal pass into a temporary buffer,
//! then a vertical pass — two sequential loop nests in one CDFG.

use crate::data::lcg_fill;
use crate::spec::KernelSpec;
use cmam_cdfg::{Cdfg, CdfgBuilder, Opcode, ValueId};

/// Input image width/height.
pub const W: usize = 12;
/// Filtered width (valid 9-tap).
pub const OW: usize = W - 8;
/// Temporary buffer base (row-major `W x OW`, stride `W`).
pub const TMP0: usize = 160;
/// Output base (`OW x OW`).
pub const OUT0: usize = 320;
/// Memory size in words.
pub const MEM: usize = 352;
/// The 9 filter taps (applied in both directions).
pub const TAPS: [i32; 9] = [1, 8, 28, 56, 70, 56, 28, 8, 1];

fn reduce_tree(b: &mut CdfgBuilder, prods: Vec<ValueId>) -> ValueId {
    let mut level = prods;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(b.op(Opcode::Add, &[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// Builds the separable-filter CDFG: pass 1 (horizontal, `W` rows x `OW`
/// cols) then pass 2 (vertical, `OW x OW`).
pub fn cdfg() -> Cdfg {
    let mut b = CdfgBuilder::new("sepfilter");
    let entry = b.block("entry");
    let p1_outer = b.block("p1_outer");
    let p1_body = b.block("p1_body");
    let p1_latch = b.block("p1_latch");
    let p2_outer = b.block("p2_outer");
    let p2_body = b.block("p2_body");
    let p2_latch = b.block("p2_latch");
    let exit = b.block("exit");
    let r = b.symbol("r");
    let c = b.symbol("c");
    let rowbase = b.symbol("rowbase");

    b.select(entry);
    b.mov_const_to_symbol(0, r);
    b.mov_const_to_symbol(0, rowbase);
    b.jump(p1_outer);

    // --- Pass 1: horizontal. tmp[r*W + c] = Σ taps[k] * img[r*W + c + k]
    b.select(p1_outer);
    let zero = b.constant(0);
    let cz = b.op(Opcode::Mov, &[zero]);
    b.write_symbol(cz, c);
    b.jump(p1_body);

    b.select(p1_body);
    let cv = b.use_symbol(c);
    let rb = b.use_symbol(rowbase);
    let base = b.op(Opcode::Add, &[rb, cv]);
    let mut prods = Vec::with_capacity(TAPS.len());
    for (k, &t) in TAPS.iter().enumerate() {
        let off = b.constant(k as i32);
        let addr = b.op(Opcode::Add, &[base, off]);
        let x = b.load_name(addr, "img");
        let w = b.constant(t);
        prods.push(b.op(Opcode::Mul, &[x, w]));
    }
    let acc = reduce_tree(&mut b, prods);
    let t0 = b.constant(TMP0 as i32);
    let taddr = b.op(Opcode::Add, &[base, t0]);
    b.store(taddr, acc, "tmp");
    let one = b.constant(1);
    let c2 = b.op(Opcode::Add, &[cv, one]);
    b.write_symbol(c2, c);
    let ow = b.constant(OW as i32);
    let cond = b.op(Opcode::Lt, &[c2, ow]);
    b.branch(cond, p1_body, p1_latch);

    b.select(p1_latch);
    let rv = b.use_symbol(r);
    let rb2 = b.use_symbol(rowbase);
    let one = b.constant(1);
    let r2 = b.op(Opcode::Add, &[rv, one]);
    b.write_symbol(r2, r);
    let wconst = b.constant(W as i32);
    let rb3 = b.op(Opcode::Add, &[rb2, wconst]);
    b.write_symbol(rb3, rowbase);
    let wmax = b.constant(W as i32);
    let cond = b.op(Opcode::Lt, &[r2, wmax]);
    // Falls through to pass 2 with r/rowbase reset there.
    b.branch(cond, p1_outer, p2_outer);

    // --- Pass 2: vertical. out[r*OW + c] = Σ taps[k] * tmp[(r+k)*W + c]
    // On entry from p1_latch, r == W; reset both induction symbols.
    b.select(p2_outer);
    let rv = b.use_symbol(r);
    let wconst = b.constant(W as i32);
    let at_start = b.op(Opcode::Ge, &[rv, wconst]);
    // r = select(at_start, 0, r); rowbase likewise. Using select keeps the
    // block structure simple (no extra reset block).
    let zero = b.constant(0);
    let r_new = b.op(Opcode::Select, &[at_start, zero, rv]);
    b.write_symbol(r_new, r);
    let rb = b.use_symbol(rowbase);
    let rb_new = b.op(Opcode::Select, &[at_start, zero, rb]);
    b.write_symbol(rb_new, rowbase);
    let cz = b.op(Opcode::Mov, &[zero]);
    b.write_symbol(cz, c);
    b.jump(p2_body);

    b.select(p2_body);
    let cv = b.use_symbol(c);
    let rb = b.use_symbol(rowbase);
    let base = b.op(Opcode::Add, &[rb, cv]);
    let mut prods = Vec::with_capacity(TAPS.len());
    for (k, &t) in TAPS.iter().enumerate() {
        let off = b.constant((TMP0 + k * W) as i32);
        let addr = b.op(Opcode::Add, &[base, off]);
        let x = b.load_name(addr, "tmp");
        let w = b.constant(t);
        prods.push(b.op(Opcode::Mul, &[x, w]));
    }
    let acc = reduce_tree(&mut b, prods);
    let rv2 = b.use_symbol(r);
    let owc = b.constant(OW as i32);
    let ro = b.op(Opcode::Mul, &[rv2, owc]);
    let t1 = b.op(Opcode::Add, &[ro, cv]);
    let o0 = b.constant(OUT0 as i32);
    let oaddr = b.op(Opcode::Add, &[t1, o0]);
    b.store(oaddr, acc, "out");
    let one = b.constant(1);
    let c2 = b.op(Opcode::Add, &[cv, one]);
    b.write_symbol(c2, c);
    let cond = b.op(Opcode::Lt, &[c2, owc]);
    b.branch(cond, p2_body, p2_latch);

    b.select(p2_latch);
    let rv = b.use_symbol(r);
    let rb2 = b.use_symbol(rowbase);
    let one = b.constant(1);
    let r2 = b.op(Opcode::Add, &[rv, one]);
    b.write_symbol(r2, r);
    let wconst = b.constant(W as i32);
    let rb3 = b.op(Opcode::Add, &[rb2, wconst]);
    b.write_symbol(rb3, rowbase);
    let ow = b.constant(OW as i32);
    let cond = b.op(Opcode::Lt, &[r2, ow]);
    b.branch(cond, p2_outer, exit);

    b.select(exit);
    b.ret();
    b.finish().expect("sepfilter cdfg is valid")
}

/// Plain-Rust reference.
pub fn reference(mem: &[i32]) -> Vec<i32> {
    let mut tmp = vec![0i32; W * W];
    for r in 0..W {
        for c in 0..OW {
            let mut acc = 0i32;
            for (k, &t) in TAPS.iter().enumerate() {
                acc = acc.wrapping_add(t.wrapping_mul(mem[r * W + c + k]));
            }
            tmp[r * W + c] = acc;
        }
    }
    let mut out = vec![0i32; OW * OW];
    for r in 0..OW {
        for c in 0..OW {
            let mut acc = 0i32;
            for (k, &t) in TAPS.iter().enumerate() {
                acc = acc.wrapping_add(t.wrapping_mul(tmp[(r + k) * W + c]));
            }
            out[r * OW + c] = acc;
        }
    }
    out
}

/// Paper-sized instance with deterministic inputs.
pub fn spec() -> KernelSpec {
    let mut mem = vec![0i32; MEM];
    let img = lcg_fill(41, W * W, 6);
    mem[..W * W].copy_from_slice(&img);
    let expected = reference(&mem);
    KernelSpec {
        name: "SepFilter".to_owned(),
        cdfg: cdfg(),
        mem,
        out: OUT0..OUT0 + OW * OW,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_reference() {
        let s = spec();
        let mut mem = s.mem.clone();
        cmam_cdfg::interp::run(&s.cdfg, &mut mem, 10_000_000).unwrap();
        assert_eq!(&mem[s.out.clone()], s.expected.as_slice());
    }

    #[test]
    fn two_pass_structure() {
        let c = cdfg();
        assert_eq!(c.num_blocks(), 8);
    }
}
