//! Bridge from the seeded CDFG generator to runnable [`KernelSpec`]s.
//!
//! [`generated_spec`] turns a `(GenParams, seed)` pair into the same
//! descriptor the seven hand-written kernels use, with the *reference
//! interpreter* as the reference implementation: the expected output is
//! the interpreter's final memory image over the generator-produced input,
//! and the output range is the whole image (every word the pipeline may
//! touch is checked, not just a designated result slot).
//!
//! Seed policy (shared with `gen_suite` and the proptest strategies): a
//! suite is identified by one root seed; per-kernel seeds are derived with
//! [`kernel_seeds`]'s splitmix64 stream so adding or removing a kernel
//! never shifts its neighbours' inputs.

use crate::spec::KernelSpec;
use cmam_cdfg::generate::{generate, GenParams};

/// Interpreter step budget for computing a generated kernel's expected
/// output. Generated kernels are bounded (counted loops, trip ≤ 32), so
/// this is orders of magnitude above any reachable dynamic op count.
pub const GEN_INTERP_BUDGET: u64 = 10_000_000;

/// Builds a runnable spec for the kernel generated from `(params, seed)`.
///
/// # Panics
///
/// Panics if the reference interpreter fails on the generated kernel —
/// that would be a generator bug (generated kernels terminate and stay in
/// bounds by construction), and every caller wants it loud.
pub fn generated_spec(params: &GenParams, seed: u64) -> KernelSpec {
    let g = generate(params, seed);
    let mut expected = g.mem.clone();
    cmam_cdfg::interp::run(&g.cdfg, &mut expected, GEN_INTERP_BUDGET)
        .unwrap_or_else(|e| panic!("generated kernel {} does not interpret: {e}", g.name));
    let out = 0..g.mem.len();
    KernelSpec {
        name: g.name,
        cdfg: g.cdfg,
        mem: g.mem,
        out,
        expected,
    }
}

/// The per-kernel seed stream for a suite rooted at `root`: `n` seeds from
/// a splitmix64 walk (never the root itself, so reusing the root for a
/// kernel does not alias suite and kernel streams).
pub fn kernel_seeds(root: u64, n: usize) -> Vec<u64> {
    let mut s = root;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_check_against_themselves() {
        for name in GenParams::PROFILES {
            let p = GenParams::profile(name).unwrap();
            let spec = generated_spec(&p, 99);
            spec.cdfg
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            // The expected image is by definition what the interpreter
            // produces over `mem`.
            let mut mem = spec.mem.clone();
            cmam_cdfg::interp::run(&spec.cdfg, &mut mem, GEN_INTERP_BUDGET).unwrap();
            spec.check(&mem)
                .unwrap_or_else(|(i, g, w)| panic!("{name}: mem[{i}] = {g}, want {w}"));
        }
    }

    #[test]
    fn spec_names_embed_profile_and_seed() {
        let p = GenParams::profile("deep").unwrap();
        let spec = generated_spec(&p, 0xABCD);
        assert_eq!(spec.name, "gen-deep-000000000000abcd");
    }

    #[test]
    fn kernel_seeds_are_stable_and_distinct() {
        let a = kernel_seeds(1, 16);
        let b = kernel_seeds(1, 16);
        assert_eq!(a, b);
        let mut c = a.clone();
        c.sort_unstable();
        c.dedup();
        assert_eq!(c.len(), 16, "collision in the first 16 seeds");
        assert_ne!(kernel_seeds(2, 16), a);
    }
}
