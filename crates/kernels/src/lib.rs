//! # cmam-kernels — the paper's seven evaluation kernels
//!
//! Each kernel of Section IV (FIR, matrix multiplication, 2D convolution,
//! separable filter, non-separable filter, FFT, DC filter) is provided as:
//!
//! * a CDFG built with `cmam_cdfg::CdfgBuilder`, structured exactly like
//!   the C kernels the paper compiles: counted loops with symbol-variable
//!   induction, load/compute/store bodies, LSU pressure on the memory
//!   operations;
//! * a deterministic input-memory image;
//! * a plain-Rust *reference implementation* computing the expected output
//!   (each module's tests check `interp(cdfg) == reference`; the
//!   integration tests then check `simulate(map(cdfg)) == interp(cdfg)`).
//!
//! [`all`] returns the paper-sized instances used by every experiment
//! binary in `cmam-bench`.

pub mod conv;
pub mod data;
pub mod dc;
pub mod fft;
pub mod fir;
pub mod generated;
pub mod matm;
pub mod nonsep;
pub mod sep;
pub mod spec;

pub use generated::{generated_spec, kernel_seeds};
pub use spec::{all, lane_images, KernelSpec};
