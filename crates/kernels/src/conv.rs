//! 2D convolution, 3x3 kernel with constant weights over an 8x8 image.
//!
//! The weights are immediates (CRF-resident), unlike FIR's memory-resident
//! coefficients — so this kernel stresses the constant register files
//! while FIR stresses the load/store units.

use crate::data::lcg_fill;
use crate::spec::KernelSpec;
use cmam_cdfg::{Cdfg, CdfgBuilder, Opcode};

/// Input image width/height.
pub const W: usize = 8;
/// Output width/height (valid convolution).
pub const OW: usize = W - 2;
/// Output base address.
pub const OUT0: usize = 64;
/// Memory size in words.
pub const MEM: usize = 100;
/// Output pixels computed per loop iteration (`OW` must divide evenly).
pub const UNROLL: usize = 2;
/// The 3x3 weights.
pub const WEIGHTS: [i32; 9] = [1, 2, 1, 2, 4, 2, 1, 2, 1];

/// Builds the convolution CDFG: outer loop over rows, inner over columns.
pub fn cdfg() -> Cdfg {
    let mut b = CdfgBuilder::new("conv");
    let entry = b.block("entry");
    let outer = b.block("outer");
    let body = b.block("body");
    let latch = b.block("latch");
    let exit = b.block("exit");
    let r = b.symbol("r");
    let c = b.symbol("c");
    let rowbase = b.symbol("rowbase"); // r * W
    let obase = b.symbol("obase"); // r * OW

    b.select(entry);
    b.mov_const_to_symbol(0, r);
    b.mov_const_to_symbol(0, rowbase);
    b.mov_const_to_symbol(0, obase);
    b.jump(outer);

    b.select(outer);
    let zero = b.constant(0);
    let cz = b.op(Opcode::Mov, &[zero]);
    b.write_symbol(cz, c);
    b.jump(body);

    b.select(body);
    // The body computes UNROLL output pixels per iteration, sharing the
    // overlapping image loads between neighbouring windows (a 3x4 patch
    // feeds two 3x3 windows).
    let cv = b.use_symbol(c);
    let rb = b.use_symbol(rowbase);
    let ob = b.use_symbol(obase);
    let base = b.op(Opcode::Add, &[rb, cv]);
    // Shared patch loads: rows 0..3, cols 0..(2 + UNROLL).
    let mut patch = Vec::with_capacity(3 * (2 + UNROLL));
    for dr in 0..3usize {
        for dc in 0..(2 + UNROLL) {
            let off = b.constant((dr * W + dc) as i32);
            let addr = b.op(Opcode::Add, &[base, off]);
            patch.push(b.load_name(addr, "img"));
        }
    }
    let obase_addr = b.op(Opcode::Add, &[ob, cv]);
    for u in 0..UNROLL {
        let mut acc: Option<cmam_cdfg::ValueId> = None;
        for dr in 0..3usize {
            for dc in 0..3usize {
                let x = patch[dr * (2 + UNROLL) + dc + u];
                let w = b.constant(WEIGHTS[dr * 3 + dc]);
                let p = b.op(Opcode::Mul, &[x, w]);
                acc = Some(match acc {
                    None => p,
                    Some(a) => b.op(Opcode::Add, &[a, p]),
                });
            }
        }
        let acc = acc.expect("nine products");
        let out0 = b.constant((OUT0 + u) as i32);
        let oaddr = b.op(Opcode::Add, &[obase_addr, out0]);
        b.store(oaddr, acc, "out");
    }
    let unroll = b.constant(UNROLL as i32);
    let c2 = b.op(Opcode::Add, &[cv, unroll]);
    b.write_symbol(c2, c);
    let ow = b.constant(OW as i32);
    let cond = b.op(Opcode::Lt, &[c2, ow]);
    b.branch(cond, body, latch);

    b.select(latch);
    let rv = b.use_symbol(r);
    let rb2 = b.use_symbol(rowbase);
    let ob2 = b.use_symbol(obase);
    let one = b.constant(1);
    let r2 = b.op(Opcode::Add, &[rv, one]);
    b.write_symbol(r2, r);
    let wconst = b.constant(W as i32);
    let rb3 = b.op(Opcode::Add, &[rb2, wconst]);
    b.write_symbol(rb3, rowbase);
    let owconst = b.constant(OW as i32);
    let ob3 = b.op(Opcode::Add, &[ob2, owconst]);
    b.write_symbol(ob3, obase);
    let cond = b.op(Opcode::Lt, &[r2, owconst]);
    b.branch(cond, outer, exit);

    b.select(exit);
    b.ret();
    b.finish().expect("conv cdfg is valid")
}

/// Plain-Rust reference.
pub fn reference(mem: &[i32]) -> Vec<i32> {
    let mut out = vec![0i32; OW * OW];
    for r in 0..OW {
        for c in 0..OW {
            let mut acc = 0i32;
            for dr in 0..3 {
                for dc in 0..3 {
                    acc = acc.wrapping_add(
                        mem[(r + dr) * W + c + dc].wrapping_mul(WEIGHTS[dr * 3 + dc]),
                    );
                }
            }
            out[r * OW + c] = acc;
        }
    }
    out
}

/// Paper-sized instance with deterministic inputs.
pub fn spec() -> KernelSpec {
    let mut mem = vec![0i32; MEM];
    let img = lcg_fill(31, W * W, 8);
    mem[..W * W].copy_from_slice(&img);
    let expected = reference(&mem);
    KernelSpec {
        name: "Convolution".to_owned(),
        cdfg: cdfg(),
        mem,
        out: OUT0..OUT0 + OW * OW,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_reference() {
        let s = spec();
        let mut mem = s.mem.clone();
        cmam_cdfg::interp::run(&s.cdfg, &mut mem, 10_000_000).unwrap();
        assert_eq!(&mem[s.out.clone()], s.expected.as_slice());
    }

    #[test]
    fn weights_are_crf_constants_not_loads() {
        let c = cdfg();
        let body = c.block_ids().nth(2).unwrap();
        let dfg = c.dfg(body);
        let loads = dfg.ops().filter(|o| o.opcode == Opcode::Load).count();
        // Only the shared 3x4 image patch is loaded; weights come from the
        // constant register files.
        assert_eq!(loads, 3 * (2 + UNROLL));
        let muls = dfg.ops().filter(|o| o.opcode == Opcode::Mul).count();
        assert_eq!(muls, 9 * UNROLL);
    }
}
