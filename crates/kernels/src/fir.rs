//! FIR filter: `y[n] = Σ_{k<T} c[k] * x[n+k]`, taps fully unrolled.
//!
//! Memory layout (words): `x` at 0 (`LEN + TAPS - 1` samples), coefficients
//! `c` at 64, outputs `y` at 128.

use crate::data::lcg_fill;
use crate::spec::KernelSpec;
use cmam_cdfg::{Cdfg, CdfgBuilder, Opcode};

/// Output length.
pub const LEN: usize = 32;
/// Filter taps.
pub const TAPS: usize = 16;
/// Coefficient base address.
pub const C0: usize = 64;
/// Output base address.
pub const Y0: usize = 128;
/// Memory size in words.
pub const MEM: usize = 192;

/// Builds the FIR CDFG (loop over `n`, taps unrolled).
pub fn cdfg() -> Cdfg {
    let mut b = CdfgBuilder::new("fir");
    let entry = b.block("entry");
    let body = b.block("body");
    let exit = b.block("exit");
    let n = b.symbol("n");

    b.select(entry);
    b.mov_const_to_symbol(0, n);
    b.jump(body);

    b.select(body);
    let nv = b.use_symbol(n);
    // Partial products.
    let mut prods = Vec::with_capacity(TAPS);
    for k in 0..TAPS {
        let off = b.constant(k as i32);
        let xaddr = b.op(Opcode::Add, &[nv, off]);
        let x = b.load_name(xaddr, "x");
        let caddr = b.constant((C0 + k) as i32);
        let c = b.load_name(caddr, "c");
        prods.push(b.op(Opcode::Mul, &[x, c]));
    }
    // Balanced reduction tree.
    let mut level = prods;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(b.op(Opcode::Add, &[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let acc = level[0];
    let ybase = b.constant(Y0 as i32);
    let yaddr = b.op(Opcode::Add, &[nv, ybase]);
    b.store(yaddr, acc, "y");
    let one = b.constant(1);
    let n2 = b.op(Opcode::Add, &[nv, one]);
    b.write_symbol(n2, n);
    let len = b.constant(LEN as i32);
    let cond = b.op(Opcode::Lt, &[n2, len]);
    b.branch(cond, body, exit);

    b.select(exit);
    b.ret();
    b.finish().expect("FIR cdfg is valid")
}

/// Plain-Rust reference.
pub fn reference(mem: &[i32]) -> Vec<i32> {
    (0..LEN)
        .map(|n| {
            (0..TAPS)
                .map(|k| mem[C0 + k].wrapping_mul(mem[n + k]))
                .fold(0i32, |a, v| a.wrapping_add(v))
        })
        .collect()
}

/// Paper-sized instance with deterministic inputs.
pub fn spec() -> KernelSpec {
    let mut mem = vec![0i32; MEM];
    let x = lcg_fill(11, LEN + TAPS - 1, 8);
    mem[..x.len()].copy_from_slice(&x);
    let c = lcg_fill(13, TAPS, 4);
    mem[C0..C0 + TAPS].copy_from_slice(&c);
    let expected = reference(&mem);
    KernelSpec {
        name: "FIR".to_owned(),
        cdfg: cdfg(),
        mem,
        out: Y0..Y0 + LEN,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_reference() {
        let s = spec();
        let mut mem = s.mem.clone();
        cmam_cdfg::interp::run(&s.cdfg, &mut mem, 1_000_000).unwrap();
        assert_eq!(&mem[s.out.clone()], s.expected.as_slice());
    }

    #[test]
    fn body_has_the_expected_load_pressure() {
        let c = cdfg();
        let body = c.block_ids().nth(1).unwrap();
        let dfg = c.dfg(body);
        let loads = dfg.ops().filter(|o| o.opcode == Opcode::Load).count();
        assert_eq!(loads, 2 * TAPS);
        let stores = dfg.ops().filter(|o| o.opcode == Opcode::Store).count();
        assert_eq!(stores, 1);
    }
}
