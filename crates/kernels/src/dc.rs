//! DC-blocking IIR filter: `y[n] = x[n] - x[n-1] + (a * y[n-1]) >> Q`
//! with `a = 0.95` in Q8 — the smallest kernel of Table II, with tight
//! loop-carried dependencies through two state symbols.

use crate::data::lcg_fill;
use crate::spec::KernelSpec;
use cmam_cdfg::{Cdfg, CdfgBuilder, Opcode};

/// Number of samples.
pub const LEN: usize = 24;
/// Output base address.
pub const Y0: usize = 32;
/// Memory size in words.
pub const MEM: usize = 64;
/// Feedback coefficient in Q8 (0.95 * 256).
pub const A_Q8: i32 = 243;
/// Fixed-point fraction bits.
pub const Q: u32 = 8;

/// Builds the DC filter CDFG.
pub fn cdfg() -> Cdfg {
    let mut b = CdfgBuilder::new("dcfilter");
    let entry = b.block("entry");
    let body = b.block("body");
    let exit = b.block("exit");
    let n = b.symbol("n");
    let xprev = b.symbol("xprev");
    let yprev = b.symbol("yprev");

    b.select(entry);
    b.mov_const_to_symbol(0, n);
    b.mov_const_to_symbol(0, xprev);
    b.mov_const_to_symbol(0, yprev);
    b.jump(body);

    b.select(body);
    let nv = b.use_symbol(n);
    let xp = b.use_symbol(xprev);
    let yp = b.use_symbol(yprev);
    let x = b.load_name(nv, "x");
    let a = b.constant(A_Q8);
    let fb_q = b.op(Opcode::Mul, &[yp, a]);
    let q = b.constant(Q as i32);
    let fb = b.op(Opcode::Shr, &[fb_q, q]);
    let hp = b.op(Opcode::Sub, &[x, xp]);
    let y = b.op(Opcode::Add, &[hp, fb]);
    let y0 = b.constant(Y0 as i32);
    let yaddr = b.op(Opcode::Add, &[nv, y0]);
    b.store(yaddr, y, "y");
    b.write_symbol(y, yprev);
    // xprev = x (the load result feeds the symbol through a move so the
    // write is a plain ALU op like a compiler would emit).
    let xcopy = b.op(Opcode::Mov, &[x]);
    b.write_symbol(xcopy, xprev);
    let one = b.constant(1);
    let n2 = b.op(Opcode::Add, &[nv, one]);
    b.write_symbol(n2, n);
    let len = b.constant(LEN as i32);
    let cond = b.op(Opcode::Lt, &[n2, len]);
    b.branch(cond, body, exit);

    b.select(exit);
    b.ret();
    b.finish().expect("dc cdfg is valid")
}

/// Plain-Rust reference.
pub fn reference(mem: &[i32]) -> Vec<i32> {
    let mut out = Vec::with_capacity(LEN);
    let mut xprev = 0i32;
    let mut yprev = 0i32;
    for n in 0..LEN {
        let x = mem[n];
        let y = x
            .wrapping_sub(xprev)
            .wrapping_add(yprev.wrapping_mul(A_Q8) >> Q);
        out.push(y);
        xprev = x;
        yprev = y;
    }
    out
}

/// Paper-sized instance with deterministic inputs.
pub fn spec() -> KernelSpec {
    let mut mem = vec![0i32; MEM];
    // A signal with a DC offset the filter should remove.
    let x = lcg_fill(61, LEN, 6);
    for (i, v) in x.iter().enumerate() {
        mem[i] = v + 20;
    }
    let expected = reference(&mem);
    KernelSpec {
        name: "DC Filter".to_owned(),
        cdfg: cdfg(),
        mem,
        out: Y0..Y0 + LEN,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_matches_reference() {
        let s = spec();
        let mut mem = s.mem.clone();
        cmam_cdfg::interp::run(&s.cdfg, &mut mem, 1_000_000).unwrap();
        assert_eq!(&mem[s.out.clone()], s.expected.as_slice());
    }

    #[test]
    fn removes_dc_offset() {
        let s = spec();
        // With a = 0.95 the step response decays as 0.95^n, so over 24
        // samples the transient is not fully gone; still, the output mean
        // must be well below the +20 input offset, and the tail must sit
        // below the head.
        let mean: f64 =
            s.expected.iter().map(|&v| f64::from(v)).sum::<f64>() / s.expected.len() as f64;
        assert!(mean.abs() < 12.0, "mean {mean}");
        let head = f64::from(s.expected[0]);
        let tail: f64 = s.expected[LEN - 4..]
            .iter()
            .map(|&v| f64::from(v))
            .sum::<f64>()
            / 4.0;
        assert!(tail < head, "tail {tail} head {head}");
    }

    #[test]
    fn three_symbols_tight_loop() {
        let c = cdfg();
        assert_eq!(c.num_symbols(), 3);
        assert_eq!(c.num_blocks(), 3);
    }
}
