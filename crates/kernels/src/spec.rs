//! The kernel descriptor consumed by experiments and tests.

use cmam_cdfg::Cdfg;
use std::ops::Range;

/// A ready-to-run kernel instance: CDFG, initial memory, and the expected
/// output (computed by the kernel's plain-Rust reference implementation).
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Kernel name: a paper-table name ("FIR", "MatM", …) for the seven
    /// hand-written kernels, or `gen-<profile>-<seed>` for generated ones.
    pub name: String,
    /// The kernel CDFG.
    pub cdfg: Cdfg,
    /// Initial data-memory image.
    pub mem: Vec<i32>,
    /// Where the outputs land in memory.
    pub out: Range<usize>,
    /// Expected contents of `out` after execution.
    pub expected: Vec<i32>,
}

impl KernelSpec {
    /// Checks a post-run memory image against the expected outputs,
    /// returning the first mismatch as `(index, got, want)`.
    pub fn check(&self, mem: &[i32]) -> Result<(), (usize, i32, i32)> {
        for (k, (&got, &want)) in mem[self.out.clone()]
            .iter()
            .zip(self.expected.iter())
            .enumerate()
        {
            if got != want {
                return Err((self.out.start + k, got, want));
            }
        }
        Ok(())
    }
}

/// Value range of swept input images: small enough that long multiply
/// chains stay interesting, matching the generated kernels' own fill.
const INPUT_RANGE: i32 = 64;

/// `n` deterministic input memory images for `spec`, one per lane,
/// derived from `(seed, lane)` via [`cmam_cdfg::input_image`]. Input
/// sweeps, the batch bench and the batch property tests all regenerate
/// identical images from the same two integers. Each image has the
/// spec's own memory size, so every in-bounds kernel stays in bounds on
/// every lane.
pub fn lane_images(spec: &KernelSpec, seed: u64, n: usize) -> Vec<Vec<i32>> {
    (0..n)
        .map(|lane| cmam_cdfg::input_image(seed, lane as u64, spec.mem.len(), INPUT_RANGE))
        .collect()
}

/// The paper-sized instances of all seven kernels, in Table II order.
pub fn all() -> Vec<KernelSpec> {
    vec![
        crate::fir::spec(),
        crate::matm::spec(),
        crate::conv::spec(),
        crate::sep::spec(),
        crate::nonsep::spec(),
        crate::fft::spec(),
        crate::dc::spec(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_kernels_build_and_validate() {
        let kernels = all();
        assert_eq!(kernels.len(), 7);
        let names: Vec<_> = kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "FIR",
                "MatM",
                "Convolution",
                "SepFilter",
                "NonSepFilter",
                "FFT",
                "DC Filter"
            ]
        );
        for k in &kernels {
            k.cdfg
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(!k.expected.is_empty(), "{} has no expected data", k.name);
            assert!(k.out.end <= k.mem.len(), "{} output range oob", k.name);
        }
    }

    #[test]
    fn every_kernel_interprets_to_its_reference() {
        for k in all() {
            let mut mem = k.mem.clone();
            cmam_cdfg::interp::run(&k.cdfg, &mut mem, 10_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            k.check(&mem).unwrap_or_else(|(i, got, want)| {
                panic!("{}: mem[{i}] = {got}, want {want}", k.name)
            });
        }
    }
}
