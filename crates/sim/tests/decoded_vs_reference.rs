//! Property test: on random straight-line kernels, the decoded fast-path
//! simulator must agree **bit-for-bit** with the naive reference
//! interpretation of the same binary — every `SimStats` counter and the
//! final memory image, across bank counts (including the normalized
//! `mem_banks == 0`).
//!
//! The golden suite pins the seven paper kernels; this covers arbitrary
//! dataflow shapes, so a decode bug that only shows on an operand or
//! pnop pattern the kernels never produce still gets caught.

use cmam_arch::CgraConfig;
use cmam_cdfg::{Cdfg, CdfgBuilder, Opcode, ValueId};
use cmam_core::{FlowVariant, Mapper};
use cmam_isa::assemble;
use cmam_sim::{simulate_reference, DecodedProgram, SimOptions};
use proptest::prelude::*;

/// One randomly generated operation: opcode selector plus operand picks.
#[derive(Debug, Clone)]
struct GenOp {
    kind: u8,
    a: usize,
    b: usize,
    c: usize,
    imm: i32,
}

fn gen_ops(max: usize) -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        (0u8..8, 0usize..64, 0usize..64, 0usize..64, -20i32..20)
            .prop_map(|(kind, a, b, c, imm)| GenOp { kind, a, b, c, imm }),
        1..max,
    )
}

/// Builds a single-block CDFG from the generated recipe (same generator
/// family as the workspace-level `proptest_mapping` suite): values are
/// drawn from earlier results or fresh constants, a few loads read the
/// low 16 memory words, and the last value is stored to word 40.
fn build(ops: &[GenOp]) -> Cdfg {
    let mut b = CdfgBuilder::new("prop");
    let bb = b.block("b0");
    b.select(bb);
    let mut values: Vec<ValueId> = Vec::new();
    let pick = |values: &[ValueId], b: &mut CdfgBuilder, idx: usize, imm: i32| -> ValueId {
        if values.is_empty() || idx % 3 == 0 {
            b.constant(imm)
        } else {
            values[idx % values.len()]
        }
    };
    for g in ops {
        let v = match g.kind {
            0 => {
                let addr = b.constant((g.a % 16) as i32);
                b.load_name(addr, "m")
            }
            1 => {
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, g.imm.wrapping_add(1));
                b.op(Opcode::Add, &[x, y])
            }
            2 => {
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, 3);
                b.op(Opcode::Mul, &[x, y])
            }
            3 => {
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, g.imm);
                b.op(Opcode::Sub, &[x, y])
            }
            4 => {
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, g.imm);
                b.op(Opcode::Xor, &[x, y])
            }
            5 => {
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, g.imm);
                b.op(Opcode::Min, &[x, y])
            }
            6 => {
                let cnd = pick(&values, &mut b, g.c, 1);
                let x = pick(&values, &mut b, g.a, g.imm);
                let y = pick(&values, &mut b, g.b, g.imm);
                b.op(Opcode::Select, &[cnd, x, y])
            }
            _ => {
                let x = pick(&values, &mut b, g.a, g.imm);
                b.op(Opcode::Mov, &[x])
            }
        };
        values.push(v);
    }
    let last = *values.last().expect("at least one op");
    let out = b.constant(40);
    b.store(out, last, "out");
    b.ret();
    b.finish().expect("generated cdfg is valid")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case maps, assembles and simulates twice
        .. ProptestConfig::default()
    })]

    #[test]
    fn decoded_matches_reference_on_random_kernels(ops in gen_ops(28)) {
        let cdfg = build(&ops);
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(FlowVariant::Basic.options());
        let result = mapper.map(&cdfg, &config).expect("basic flow maps straight-line code");
        let (binary, _) = assemble(&cdfg, &result.mapping, &config).expect("assembles");
        let decoded = DecodedProgram::decode(&binary, &config).expect("valid binary decodes");

        // Bank counts bracketing the interesting cases: the normalized
        // zero, a single bank (max conflicts), the default, and more
        // banks than concurrent accesses (no conflicts).
        for banks in [0usize, 1, 8, 64] {
            let options = SimOptions {
                mem_banks: banks,
                max_cycles: 1_000_000,
            };
            let mut mem_ref = vec![7i32; 64];
            let stats_ref = simulate_reference(&binary, &config, &mut mem_ref, options)
                .expect("reference simulates");
            let mut mem_fast = vec![7i32; 64];
            let stats_fast = decoded.simulate(&mut mem_fast, options).expect("decoded simulates");
            prop_assert_eq!(&stats_fast, &stats_ref, "stats diverge at {} banks", banks);
            prop_assert_eq!(mem_fast, mem_ref, "memory diverges at {} banks", banks);
        }
    }
}
