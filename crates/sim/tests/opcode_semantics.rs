//! Per-opcode semantics through the *whole* pipeline: every ALU opcode is
//! exercised in a kernel that is mapped, assembled and simulated, and the
//! simulated result must match both the interpreter and a hand-computed
//! value. This pins the ALU semantics of the simulator to the golden
//! model opcode by opcode.

use cmam_arch::CgraConfig;
use cmam_cdfg::{CdfgBuilder, Opcode};
use cmam_core::{Mapper, MapperOptions};
use cmam_isa::assemble;
use cmam_sim::{simulate, SimOptions};

/// Runs `op(a, b)` (loading `a`, `b` from memory) and returns mem[8].
fn run_binary_op(op: Opcode, a: i32, b: i32) -> i32 {
    let mut builder = CdfgBuilder::new("op");
    let _ = builder.block("b0");
    let a0 = builder.constant(0);
    let a1 = builder.constant(1);
    let x = builder.load_name(a0, "in");
    let y = builder.load_name(a1, "in");
    let r = builder.op(op, &[x, y]);
    let out = builder.constant(8);
    builder.store(out, r, "out");
    builder.ret();
    let cdfg = builder.finish().unwrap();

    let config = CgraConfig::hom64();
    let mapper = Mapper::new(MapperOptions::basic());
    let result = mapper.map(&cdfg, &config).unwrap();
    let (bin, _) = assemble(&cdfg, &result.mapping, &config).unwrap();
    let mut mem = vec![0i32; 16];
    mem[0] = a;
    mem[1] = b;
    simulate(&bin, &config, &mut mem, SimOptions::default()).unwrap();
    mem[8]
}

#[test]
fn add_sub_mul_through_pipeline() {
    assert_eq!(run_binary_op(Opcode::Add, 13, 29), 42);
    assert_eq!(run_binary_op(Opcode::Sub, 13, 29), -16);
    assert_eq!(run_binary_op(Opcode::Mul, -6, 7), -42);
    assert_eq!(run_binary_op(Opcode::Add, i32::MAX, 1), i32::MIN);
}

#[test]
fn logic_ops_through_pipeline() {
    assert_eq!(run_binary_op(Opcode::And, 0b1100, 0b1010), 0b1000);
    assert_eq!(run_binary_op(Opcode::Or, 0b1100, 0b1010), 0b1110);
    assert_eq!(run_binary_op(Opcode::Xor, 0b1100, 0b1010), 0b0110);
}

#[test]
fn shifts_through_pipeline() {
    assert_eq!(run_binary_op(Opcode::Shl, 3, 4), 48);
    assert_eq!(run_binary_op(Opcode::Shr, -64, 3), -8); // arithmetic
    assert_eq!(run_binary_op(Opcode::Shl, 1, 33), 2); // masked count
}

#[test]
fn compares_through_pipeline() {
    assert_eq!(run_binary_op(Opcode::Lt, -1, 0), 1);
    assert_eq!(run_binary_op(Opcode::Lt, 0, -1), 0);
    assert_eq!(run_binary_op(Opcode::Ge, 5, 5), 1);
    assert_eq!(run_binary_op(Opcode::Eq, 7, 7), 1);
    assert_eq!(run_binary_op(Opcode::Ne, 7, 7), 0);
    assert_eq!(run_binary_op(Opcode::Le, 3, 9), 1);
    assert_eq!(run_binary_op(Opcode::Gt, 3, 9), 0);
}

#[test]
fn min_max_through_pipeline() {
    assert_eq!(run_binary_op(Opcode::Min, -5, 2), -5);
    assert_eq!(run_binary_op(Opcode::Max, -5, 2), 2);
}

#[test]
fn select_through_pipeline() {
    let mut builder = CdfgBuilder::new("sel");
    let _ = builder.block("b0");
    let a0 = builder.constant(0);
    let c = builder.load_name(a0, "in");
    let t = builder.constant(111);
    let f = builder.constant(222);
    let r = builder.op(Opcode::Select, &[c, t, f]);
    let out = builder.constant(8);
    builder.store(out, r, "out");
    builder.ret();
    let cdfg = builder.finish().unwrap();
    let config = CgraConfig::hom64();
    let mapper = Mapper::new(MapperOptions::basic());
    let result = mapper.map(&cdfg, &config).unwrap();
    let (bin, _) = assemble(&cdfg, &result.mapping, &config).unwrap();
    for (cond, want) in [(1, 111), (0, 222), (-3, 111)] {
        let mut mem = vec![0i32; 16];
        mem[0] = cond;
        simulate(&bin, &config, &mut mem, SimOptions::default()).unwrap();
        assert_eq!(mem[8], want, "cond={cond}");
    }
}

#[test]
fn abs_through_pipeline() {
    let mut builder = CdfgBuilder::new("abs");
    let _ = builder.block("b0");
    let a0 = builder.constant(0);
    let x = builder.load_name(a0, "in");
    let r = builder.op(Opcode::Abs, &[x]);
    let out = builder.constant(8);
    builder.store(out, r, "out");
    builder.ret();
    let cdfg = builder.finish().unwrap();
    let config = CgraConfig::hom64();
    let result = Mapper::new(MapperOptions::basic())
        .map(&cdfg, &config)
        .unwrap();
    let (bin, _) = assemble(&cdfg, &result.mapping, &config).unwrap();
    let mut mem = vec![0i32; 16];
    mem[0] = -99;
    simulate(&bin, &config, &mut mem, SimOptions::default()).unwrap();
    assert_eq!(mem[8], 99);
}

#[test]
fn branch_not_taken_path_executes() {
    // if mem[0] > 0 { mem[8] = 1 } else { mem[8] = 2 }
    let mut b = CdfgBuilder::new("branchy");
    let entry = b.block("entry");
    let then_b = b.block("then");
    let else_b = b.block("else");
    let exit = b.block("exit");
    b.select(entry);
    let a0 = b.constant(0);
    let x = b.load_name(a0, "in");
    let z = b.constant(0);
    let c = b.op(Opcode::Gt, &[x, z]);
    b.branch(c, then_b, else_b);
    b.select(then_b);
    let one = b.constant(1);
    let v = b.op(Opcode::Mov, &[one]);
    let out = b.constant(8);
    b.store(out, v, "out");
    b.jump(exit);
    b.select(else_b);
    let two = b.constant(2);
    let v = b.op(Opcode::Mov, &[two]);
    let out = b.constant(8);
    b.store(out, v, "out");
    b.jump(exit);
    b.select(exit);
    b.ret();
    let cdfg = b.finish().unwrap();
    let config = CgraConfig::hom64();
    let result = Mapper::new(MapperOptions::basic())
        .map(&cdfg, &config)
        .unwrap();
    let (bin, _) = assemble(&cdfg, &result.mapping, &config).unwrap();
    for (input, want) in [(5, 1), (-5, 2), (0, 2)] {
        let mut mem = vec![0i32; 16];
        mem[0] = input;
        simulate(&bin, &config, &mut mem, SimOptions::default()).unwrap();
        assert_eq!(mem[8], want, "input={input}");
    }
}
