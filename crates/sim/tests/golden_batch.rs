//! Golden digest of the **batched** simulator over the same 175-job
//! suite (7 kernels × 5 golden configurations × 5 flow variants) that
//! `golden_equivalence` pins for the solo path: every mappable job is
//! run over four seeded input lanes through
//! [`DecodedProgram::simulate_batch`], each lane is checked bit-for-bit
//! against a solo [`DecodedProgram::simulate`] call, and one combined
//! per-job digest (lane stats + lane memories) is pinned in
//! `tests/golden/simulator_batch.golden`.
//!
//! Regenerate (only when an *intentional* semantic change lands) with:
//!
//! ```text
//! CMAM_REGEN_GOLDEN=1 cargo test -p cmam_sim --test golden_batch
//! ```

use cmam_core::{FlowVariant, Mapper};
use cmam_sim::{DecodedProgram, LaneState, SimOptions};
use common::{configs, mem_digest, stats_digest, Fnv};
use std::fmt::Write as _;
use std::path::PathBuf;

mod common;

/// Lanes per job: small (the suite maps 175 jobs), but enough to cover
/// distinct per-lane images.
const LANES: usize = 4;
const SEED: u64 = 0xBA7C_90_1D;

/// One observed line:
///
/// `<kernel> <variant> <config> ok <combined digest>`
/// `<kernel> <variant> <config> maperr|asmerr <escaped message>`
///
/// A lane that fails to simulate contributes its error string to the
/// digest — mid-batch errors are part of the pinned behaviour.
fn observe(kernel: &str, variant: FlowVariant, config: &cmam_arch::CgraConfig) -> String {
    let spec = cmam_kernels::all()
        .into_iter()
        .find(|s| s.name == kernel)
        .expect("known kernel");
    let head = format!("{kernel} {variant} {}", config.name());
    let esc = |e: String| e.replace(' ', "_");
    let mapper = Mapper::new(variant.options());
    let result = match mapper.map(&spec.cdfg, config) {
        Ok(r) => r,
        Err(e) => return format!("{head} maperr {}", esc(e.to_string())),
    };
    let (binary, _) = match cmam_isa::assemble(&spec.cdfg, &result.mapping, config) {
        Ok(b) => b,
        Err(e) => return format!("{head} asmerr {}", esc(e.to_string())),
    };
    let decoded = DecodedProgram::decode(&binary, config).expect("valid binary decodes");
    let images = cmam_kernels::lane_images(&spec, SEED, LANES);
    let mut lanes: Vec<LaneState> = images.iter().map(|m| LaneState::new(m.clone())).collect();
    let batch = decoded.simulate_batch(&mut lanes, SimOptions::default());
    let mut h = Fnv::new();
    for (l, image) in images.iter().enumerate() {
        // The digest pins the batched path; the solo cross-check makes
        // the pinned value provably the solo simulator's too.
        let mut solo_mem = image.clone();
        let solo = decoded.simulate(&mut solo_mem, SimOptions::default());
        assert_eq!(batch[l], solo, "{head}: lane {l} result diverges from solo");
        assert_eq!(
            lanes[l].mem, solo_mem,
            "{head}: lane {l} memory diverges from solo"
        );
        match &batch[l] {
            Ok(stats) => {
                h.u64(stats_digest(stats));
                h.u64(mem_digest(&lanes[l].mem));
            }
            Err(e) => h.str(&e.to_string()),
        }
    }
    format!("{head} ok {:016x}", h.0)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("simulator_batch.golden")
}

fn run_suite() -> String {
    let kernels: Vec<String> = cmam_kernels::all().iter().map(|s| s.name.clone()).collect();
    let mut out = String::new();
    for kernel in &kernels {
        for config in &configs() {
            for variant in FlowVariant::ALL {
                let _ = writeln!(out, "{}", observe(kernel, variant, config));
            }
        }
    }
    out
}

#[test]
fn batched_simulator_matches_golden() {
    let path = golden_path();
    let observed = run_suite();
    if std::env::var_os("CMAM_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &observed).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             CMAM_REGEN_GOLDEN=1 cargo test -p cmam_sim --test golden_batch",
            path.display()
        )
    });
    let golden_lines: Vec<&str> = golden.lines().collect();
    let observed_lines: Vec<&str> = observed.lines().collect();
    assert_eq!(
        golden_lines.len(),
        observed_lines.len(),
        "suite shape changed: {} golden lines vs {} observed",
        golden_lines.len(),
        observed_lines.len()
    );
    let mut diffs = Vec::new();
    for (g, o) in golden_lines.iter().zip(&observed_lines) {
        if g != o {
            diffs.push(format!("  golden:   {g}\n  observed: {o}"));
        }
    }
    assert!(
        diffs.is_empty(),
        "{} of {} jobs diverged from the golden batched simulator:\n{}",
        diffs.len(),
        golden_lines.len(),
        diffs.join("\n")
    );
}
