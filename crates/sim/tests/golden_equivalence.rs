//! Golden-equivalence suite for the assemble→simulate back half of the
//! pipeline: the simulator and the assembler must keep producing
//! **exactly** the `SimStats`, final memory image and `AsmReport` they
//! produced before the decoded-program / dense-table optimizations, for
//! every kernel × golden configuration × flow variant.
//!
//! The golden file (`tests/golden/simulator.golden`) was generated
//! against the pre-optimization code (the per-call `expand_with_fetch`
//! re-expansion, the per-cycle `Vec` allocations, the `HashMap`-keyed
//! assembler tables) and is the contract the flat `DecodedProgram`
//! simulator and the index-keyed assembler must preserve bit-for-bit.
//!
//! Regenerate (only when an *intentional* semantic change lands) with:
//!
//! ```text
//! CMAM_REGEN_GOLDEN=1 cargo test -p cmam_sim --test golden_equivalence
//! ```

use cmam_arch::CgraConfig;
use cmam_core::{FlowVariant, Mapper};
use cmam_sim::{simulate, SimOptions};
use common::{configs, mem_digest, report_digest, stats_digest};
use std::fmt::Write as _;
use std::path::PathBuf;

mod common;

/// One observed line of the suite:
///
/// `<kernel> <variant> <config> ok <cycles> <stats> <mem> <report>`
/// `<kernel> <variant> <config> maperr|asmerr|simerr <escaped message>`
fn observe(kernel: &str, variant: FlowVariant, config: &CgraConfig) -> String {
    let spec = cmam_kernels::all()
        .into_iter()
        .find(|s| s.name == kernel)
        .expect("known kernel");
    let head = format!("{kernel} {variant} {}", config.name());
    let esc = |e: String| e.replace(' ', "_");
    let mapper = Mapper::new(variant.options());
    let result = match mapper.map(&spec.cdfg, config) {
        Ok(r) => r,
        Err(e) => return format!("{head} maperr {}", esc(e.to_string())),
    };
    let (binary, report) = match cmam_isa::assemble(&spec.cdfg, &result.mapping, config) {
        Ok(b) => b,
        Err(e) => return format!("{head} asmerr {}", esc(e.to_string())),
    };
    let mut mem = spec.mem.clone();
    match simulate(&binary, config, &mut mem, SimOptions::default()) {
        Ok(stats) => {
            spec.check(&mem)
                .unwrap_or_else(|(i, got, want)| panic!("{head}: mem[{i}]={got}, want {want}"));
            format!(
                "{head} ok {} {:016x} {:016x} {:016x}",
                stats.cycles,
                stats_digest(&stats),
                mem_digest(&mem),
                report_digest(&report)
            )
        }
        Err(e) => format!("{head} simerr {}", esc(e.to_string())),
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("simulator.golden")
}

fn run_suite() -> String {
    let kernels: Vec<String> = cmam_kernels::all().iter().map(|s| s.name.clone()).collect();
    let mut out = String::new();
    for kernel in &kernels {
        for config in &configs() {
            for variant in FlowVariant::ALL {
                let _ = writeln!(out, "{}", observe(kernel, variant, config));
            }
        }
    }
    out
}

#[test]
fn simulator_and_assembler_match_golden() {
    let path = golden_path();
    let observed = run_suite();
    if std::env::var_os("CMAM_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &observed).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             CMAM_REGEN_GOLDEN=1 cargo test -p cmam_sim --test golden_equivalence",
            path.display()
        )
    });
    let golden_lines: Vec<&str> = golden.lines().collect();
    let observed_lines: Vec<&str> = observed.lines().collect();
    assert_eq!(
        golden_lines.len(),
        observed_lines.len(),
        "suite shape changed: {} golden lines vs {} observed",
        golden_lines.len(),
        observed_lines.len()
    );
    let mut diffs = Vec::new();
    for (g, o) in golden_lines.iter().zip(&observed_lines) {
        if g != o {
            diffs.push(format!("  golden:   {g}\n  observed: {o}"));
        }
    }
    assert!(
        diffs.is_empty(),
        "{} of {} jobs diverged from the golden simulator/assembler:\n{}",
        diffs.len(),
        golden_lines.len(),
        diffs.join("\n")
    );
}
