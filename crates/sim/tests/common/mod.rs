//! Digest helpers and the golden configuration set shared by the
//! simulator golden suites (`golden_equivalence`, `golden_batch`).

use cmam_arch::CgraConfig;
use cmam_isa::AsmReport;
use cmam_sim::SimStats;

/// FNV-1a, the same construction the engine uses for content hashes
/// (reimplemented here because `cmam_sim` must not depend on
/// `cmam_engine`).
pub struct Fnv(pub u64);

#[allow(dead_code)] // not every golden suite hashes every shape
impl Fnv {
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    pub fn i32(&mut self, v: i32) {
        self.u64(v as u32 as u64);
    }
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        for b in s.bytes() {
            self.u64(b as u64);
        }
    }
}

/// Canonical content hash of a whole `SimStats`: every global counter,
/// the per-block execution counts (non-zero entries, sorted by block
/// index — representation-independent) and all eleven per-tile counters.
pub fn stats_digest(s: &SimStats) -> u64 {
    let mut h = Fnv::new();
    h.u64(s.cycles);
    h.u64(s.stall_cycles);
    let mut blocks: Vec<(u32, u64)> = s
        .block_execs
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(b, &n)| (b as u32, n))
        .collect();
    blocks.sort_unstable();
    h.usize(blocks.len());
    for (b, n) in blocks {
        h.u64(b as u64);
        h.u64(n);
    }
    h.usize(s.tiles.len());
    for t in &s.tiles {
        for v in [
            t.active_cycles,
            t.idle_cycles,
            t.cm_fetches,
            t.alu_ops,
            t.moves,
            t.loads,
            t.stores,
            t.rf_reads,
            t.neighbor_reads,
            t.crf_reads,
            t.rf_writes,
        ] {
            h.u64(v);
        }
    }
    h.0
}

/// Content hash of the final data-memory image, word for word.
pub fn mem_digest(mem: &[i32]) -> u64 {
    let mut h = Fnv::new();
    h.usize(mem.len());
    for &w in mem {
        h.i32(w);
    }
    h.0
}

/// Content hash of the assembler's word accounting.
#[allow(dead_code)]
pub fn report_digest(r: &AsmReport) -> u64 {
    let mut h = Fnv::new();
    h.usize(r.per_tile.len());
    for &(o, m, p) in &r.per_tile {
        h.usize(o);
        h.usize(m);
        h.usize(p);
    }
    h.0
}

/// The same configuration set the mapper golden suite pins: the smoke
/// configurations plus the two uniformly tight targets whose constrained
/// searches exercise the assemble-failure path (memory-unaware flows on
/// small context memories).
pub fn configs() -> Vec<CgraConfig> {
    vec![
        CgraConfig::hom64(),
        CgraConfig::het1(),
        CgraConfig::het2(),
        CgraConfig::builder(4, 4)
            .uniform_cm(16)
            .name("TIGHT16")
            .build()
            .expect("valid config"),
        CgraConfig::builder(4, 4)
            .uniform_cm(24)
            .name("TIGHT24")
            .build()
            .expect("valid config"),
    ]
}
