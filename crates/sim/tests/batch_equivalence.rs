//! Batch-vs-solo equivalence: [`DecodedProgram::simulate_batch`] must
//! produce, for every lane, **exactly** the `SimStats`, final memory
//! image and error a solo [`DecodedProgram::simulate`] call produces on
//! the same input — across lane counts, bank counts (including the
//! normalized `mem_banks == 0`), divergent control flow, and lanes that
//! fail mid-batch (out-of-bounds, exhausted budgets) while their
//! neighbours keep running.

use cmam_arch::CgraConfig;
use cmam_cdfg::{Cdfg, CdfgBuilder, GenParams, Opcode};
use cmam_core::{FlowVariant, Mapper};
use cmam_sim::{DecodedProgram, LaneState, SimOptions};
use proptest::prelude::*;

/// Maps, assembles and decodes a CDFG with the basic flow on HOM64.
fn decode_basic(cdfg: &Cdfg) -> Option<(DecodedProgram, CgraConfig)> {
    let config = CgraConfig::hom64();
    let mapper = Mapper::new(FlowVariant::Basic.options());
    let result = mapper.map(cdfg, &config).ok()?;
    let (binary, _) = cmam_isa::assemble(cdfg, &result.mapping, &config).ok()?;
    let decoded = DecodedProgram::decode(&binary, &config).expect("valid binary decodes");
    Some((decoded, config))
}

/// Runs the batch over `images` and checks every lane — result (success
/// or the exact error) and final memory — against a solo run on a clone
/// of the same image.
fn assert_batch_matches_solo(decoded: &DecodedProgram, images: &[Vec<i32>], options: SimOptions) {
    let mut lanes: Vec<LaneState> = images.iter().map(|m| LaneState::new(m.clone())).collect();
    let batch = decoded.simulate_batch(&mut lanes, options);
    assert_eq!(batch.len(), images.len());
    for (l, image) in images.iter().enumerate() {
        let mut solo_mem = image.clone();
        let solo = decoded.simulate(&mut solo_mem, options);
        assert_eq!(batch[l], solo, "lane {l}: result diverges from solo");
        assert_eq!(
            lanes[l].mem, solo_mem,
            "lane {l}: memory diverges from solo"
        );
    }
}

/// A kernel whose running time is data-dependent: counts `mem[0]` down
/// to zero one loop iteration at a time, then stores the loop count to
/// `mem[1]`. Lanes with different `mem[0]` values take different trip
/// counts (divergence) and can straddle a `max_cycles` budget (mixed
/// `Ok` / `Err(MaxCycles)` retirement inside one batch).
fn countdown_kernel() -> Cdfg {
    let mut b = CdfgBuilder::new("countdown");
    let entry = b.block("entry");
    let body = b.block("body");
    let exit = b.block("exit");
    let n = b.symbol("n");
    let steps = b.symbol("steps");
    b.select(entry);
    let a0 = b.constant(0);
    let v = b.load_name(a0, "in");
    b.write_symbol(v, n);
    b.mov_const_to_symbol(0, steps);
    b.jump(body);
    b.select(body);
    let cur = b.use_symbol(n);
    let one = b.constant(1);
    let next = b.op(Opcode::Sub, &[cur, one]);
    b.write_symbol(next, n);
    let s = b.use_symbol(steps);
    let s2 = b.op(Opcode::Add, &[s, one]);
    b.write_symbol(s2, steps);
    let zero = b.constant(0);
    let more = b.op(Opcode::Gt, &[next, zero]);
    b.branch(more, body, exit);
    b.select(exit);
    let out = b.use_symbol(steps);
    let a1 = b.constant(1);
    b.store(a1, out, "out");
    b.ret();
    b.finish().expect("countdown cdfg is valid")
}

/// A kernel with a data-dependent address: loads `mem[mem[0]]` and
/// stores it to `mem[1]`. Lanes whose `mem[0]` points outside their
/// image fail with the solo simulator's exact `OutOfBounds` error.
fn indirect_kernel() -> Cdfg {
    let mut b = CdfgBuilder::new("indirect");
    let bb = b.block("b0");
    b.select(bb);
    let a0 = b.constant(0);
    let addr = b.load_name(a0, "m");
    let v = b.load_name(addr, "m");
    let a1 = b.constant(1);
    b.store(a1, v, "m");
    b.ret();
    b.finish().expect("indirect cdfg is valid")
}

#[test]
fn empty_batch_returns_no_results() {
    let (decoded, _) = decode_basic(&countdown_kernel()).expect("countdown maps");
    let mut lanes: Vec<LaneState> = Vec::new();
    assert!(decoded
        .simulate_batch(&mut lanes, SimOptions::default())
        .is_empty());
}

#[test]
fn paper_kernels_match_solo_on_seeded_images() {
    for spec in cmam_kernels::all() {
        let Some((decoded, _)) = decode_basic(&spec.cdfg) else {
            panic!("{} maps with the basic flow on HOM64", spec.name);
        };
        let images = cmam_kernels::lane_images(&spec, 0xBA7C_0001, 8);
        assert_batch_matches_solo(&decoded, &images, SimOptions::default());
    }
}

#[test]
fn divergent_lanes_and_mid_batch_budget_errors_match_solo() {
    let (decoded, _) = decode_basic(&countdown_kernel()).expect("countdown maps");
    // Trip counts from 1 to 4000; with a budget of 2000 cycles the long
    // lanes exhaust it mid-batch while the short ones retire `Ok`.
    let images: Vec<Vec<i32>> = [1, 3, 4000, 7, 2500, 40, 1, 900]
        .iter()
        .map(|&n| vec![n, -1, 0, 0])
        .collect();
    let options = SimOptions {
        max_cycles: 2000,
        ..SimOptions::default()
    };
    let mut lanes: Vec<LaneState> = images.iter().map(|m| LaneState::new(m.clone())).collect();
    let batch = decoded.simulate_batch(&mut lanes, options);
    assert!(batch.iter().any(|r| r.is_ok()), "some lanes finish");
    assert!(
        batch.iter().any(|r| r.is_err()),
        "some lanes exhaust the budget"
    );
    assert_batch_matches_solo(&decoded, &images, options);
}

#[test]
fn mid_batch_out_of_bounds_lanes_leave_others_unaffected() {
    let (decoded, _) = decode_basic(&indirect_kernel()).expect("indirect maps");
    // Lanes 1 and 4 point outside their own image (including a negative
    // address); the rest must finish exactly as solo runs.
    let images: Vec<Vec<i32>> = [2i32, 99, 3, 0, -5, 1]
        .iter()
        .map(|&a| vec![a, 0, 77, 88])
        .collect();
    let mut lanes: Vec<LaneState> = images.iter().map(|m| LaneState::new(m.clone())).collect();
    let batch = decoded.simulate_batch(&mut lanes, SimOptions::default());
    assert!(batch[1].is_err() && batch[4].is_err(), "bad lanes fail");
    assert_eq!(batch.iter().filter(|r| r.is_ok()).count(), 4);
    assert_batch_matches_solo(&decoded, &images, SimOptions::default());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case maps once and simulates every lane twice
        .. ProptestConfig::default()
    })]

    #[test]
    fn generated_kernels_match_solo_across_lanes_and_banks(
        profile_idx in 0usize..GenParams::PROFILES.len(),
        seed in 0u64..1_000_000,
        nlanes in 1usize..=128,
        bank_idx in 0usize..4,
    ) {
        let params = GenParams::profile(GenParams::PROFILES[profile_idx])
            .expect("known profile");
        let kernel = cmam_cdfg::generate(&params, seed);
        // A rejected mapping is the mapper property suite's concern,
        // not this one's.
        let Some((decoded, _)) = decode_basic(&kernel.cdfg) else {
            return;
        };
        let images: Vec<Vec<i32>> = (0..nlanes)
            .map(|l| cmam_cdfg::input_image(seed, l as u64, kernel.mem.len(), 64))
            .collect();
        let banks = [0usize, 1, 8, 64][bank_idx];
        let options = SimOptions { mem_banks: banks, max_cycles: 1_000_000 };
        assert_batch_matches_solo(&decoded, &images, options);
    }
}
