//! Edge-shape kernels × bank-count edge cases: the structural corners the
//! seven paper kernels never produce (single-block, load/store-only,
//! maximum fan-out, zero-symbol), each run across the interesting
//! `mem_banks` settings — the normalized `0`, a single bank (maximum
//! conflicts) and the default `8` — demanding, per combination:
//!
//! * decoded fast path == reference simulator (`SimStats` + memory);
//! * simulated memory == the CDFG interpreter's image (the generated
//!   spec's `expected`).
//!
//! This extends the random straight-line property suite
//! (`decoded_vs_reference`) to control flow, symbol pressure and
//! memory-dominated blocks at the edges of the generator's knob space.

use cmam_arch::CgraConfig;
use cmam_cdfg::generate::GenParams;
use cmam_core::{FlowVariant, Mapper};
use cmam_isa::assemble;
use cmam_kernels::generated_spec;
use cmam_sim::{simulate_reference, DecodedProgram, SimOptions};

const EDGE_PROFILES: [&str; 4] = [
    "single_block",
    "load_store_only",
    "max_fanout",
    "zero_symbol",
];

#[test]
fn edge_shapes_agree_across_simulators_and_bank_counts() {
    for profile in EDGE_PROFILES {
        let params = GenParams::profile(profile).expect("known profile");
        for seed in 0..6u64 {
            let spec = generated_spec(&params, seed);
            let config = CgraConfig::hom64();
            let result = Mapper::new(FlowVariant::Basic.options())
                .map(&spec.cdfg, &config)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let (binary, _) = assemble(&spec.cdfg, &result.mapping, &config)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let decoded = DecodedProgram::decode(&binary, &config)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));

            for banks in [0usize, 1, 8] {
                let options = SimOptions {
                    mem_banks: banks,
                    max_cycles: 10_000_000,
                };
                let mut mem_ref = spec.mem.clone();
                let stats_ref = simulate_reference(&binary, &config, &mut mem_ref, options)
                    .unwrap_or_else(|e| panic!("{} banks={banks}: {e}", spec.name));
                let mut mem_fast = spec.mem.clone();
                let stats_fast = decoded
                    .simulate(&mut mem_fast, options)
                    .unwrap_or_else(|e| panic!("{} banks={banks}: {e}", spec.name));

                assert_eq!(
                    stats_fast, stats_ref,
                    "{} banks={banks}: SimStats diverge",
                    spec.name
                );
                assert_eq!(
                    mem_fast, mem_ref,
                    "{} banks={banks}: memory diverges",
                    spec.name
                );
                spec.check(&mem_ref).unwrap_or_else(|(i, got, want)| {
                    panic!(
                        "{} banks={banks}: mem[{i}] = {got}, want {want} (interp)",
                        spec.name
                    )
                });
            }
        }
    }
}

#[test]
fn zero_banks_normalizes_to_one_bank_on_generated_kernels() {
    // `mem_banks = 0` must behave exactly like `1` (the documented
    // normalization), not like "no banking" — pinned on a memory-heavy
    // generated kernel where conflicts actually occur.
    let params = GenParams::profile("load_store_only").expect("known profile");
    let spec = generated_spec(&params, 11);
    let config = CgraConfig::hom64();
    let result = Mapper::new(FlowVariant::Basic.options())
        .map(&spec.cdfg, &config)
        .expect("maps");
    let (binary, _) = assemble(&spec.cdfg, &result.mapping, &config).expect("assembles");
    let decoded = DecodedProgram::decode(&binary, &config).expect("decodes");

    let run = |banks: usize| {
        let mut mem = spec.mem.clone();
        let stats = decoded
            .simulate(
                &mut mem,
                SimOptions {
                    mem_banks: banks,
                    max_cycles: 10_000_000,
                },
            )
            .expect("simulates");
        (stats, mem)
    };
    assert_eq!(run(0), run(1));
}
