//! Batched simulation: one decoded program, many input memories.
//!
//! [`DecodedProgram::simulate_batch`] runs N independent input images
//! ("lanes") through one [`DecodedProgram`] so the per-cycle micro-op
//! walk — block dispatch, op-range lookup, idle-window skipping, slot
//! decode — executes **once per cohort** instead of once per lane, and
//! the data-dependent work (operand gathers, ALU evaluation, TCDM
//! traffic, RF commits) becomes tight inner loops over the lanes of the
//! cohort.
//!
//! Lanes never interact: each has its own memory image, register file,
//! branch flag and cycle/stall counters, laid out structure-of-arrays
//! (word-major `rf[word * nlanes + lane]` so a cohort's reads of one RF
//! word walk contiguous memory, dense per-lane counter vectors).
//! Control flow may diverge — branch flags are data-dependent — so lanes
//! execute in **cohorts keyed by basic block**: every lane waiting to
//! enter block `b` is merged into one cohort, the cohort runs the
//! block's shared cycle schedule in lock-step (bank stalls only bend a
//! lane's *counters*, never its schedule position), and the terminator
//! splits it. Split halves park on their successor blocks' waiting
//! lists, where they re-merge with any lanes already headed there — a
//! loop whose trip count varies by lane sheds its finished lanes each
//! iteration while the rest keep executing as one cohort.
//!
//! Lanes retire independently: `Return` retires a lane with `Ok(stats)`,
//! an out-of-bounds access or an exhausted cycle budget retires it with
//! the same `Err` — at the same point, with the same partially-updated
//! memory — as a solo run, and the remaining lanes continue unaffected.
//! Every lane's [`SimStats`] and final memory image is bit-identical to
//! [`DecodedProgram::simulate`] on the same input (golden- and
//! property-tested).

use crate::decode::{Arg, DecodedProgram, Slot, SlotKind, NO_DST};
use crate::machine::{SimError, SimOptions};
use crate::stats::{SimStats, TileStats};
use cmam_cdfg::Opcode;
use cmam_isa::program::BinTerminator;

/// Per-lane state of a batched run: the input memory image on the way
/// in, the final (possibly partially-updated on error) image on the way
/// out — exactly the `&mut [i32]` contract of a solo
/// [`DecodedProgram::simulate`] call, one per lane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaneState {
    /// The lane's TCDM image. Lanes may have different sizes; every
    /// access is bounds-checked against its own lane's image.
    pub mem: Vec<i32>,
}

impl LaneState {
    /// Wraps an input memory image as one lane.
    pub fn new(mem: Vec<i32>) -> Self {
        LaneState { mem }
    }
}

/// Why a lane left its cohort mid-block. Kept separate from the result
/// slot so the hot loop writes a byte, not an enum with payloads.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Exit {
    Running,
    Retired,
}

/// Batch-local accumulator for the `sim.batch.*` metrics; flushed to the
/// registry once per [`DecodedProgram::simulate_batch`] call so the hot
/// loop touches no atomics.
#[derive(Default)]
struct BatchMetrics {
    cohorts: u64,
    cohort_lanes: u64,
    divergences: u64,
    retired_ok: u64,
    retired_err: u64,
    agg_cycles: u64,
}

impl DecodedProgram {
    /// Simulates every lane of `lanes` through this program, as if by
    /// one [`DecodedProgram::simulate`] call per lane — same
    /// [`SimStats`], same final memory, same errors, bit for bit — but
    /// sharing the per-cycle schedule walk across all lanes currently in
    /// the same basic block.
    ///
    /// Returns one result per lane, in lane order. A failing lane
    /// (out-of-bounds access, exhausted budget) retires alone; the other
    /// lanes are unaffected.
    pub fn simulate_batch(
        &self,
        lanes: &mut [LaneState],
        options: SimOptions,
    ) -> Vec<Result<SimStats, SimError>> {
        let _span = cmam_obs::span!("simulate_batch", lanes = lanes.len() as u64);
        let options = options.normalized();
        let nlanes = lanes.len();
        let nblocks = self.block_lengths.len();
        if nlanes == 0 {
            return Vec::new();
        }

        // Structure-of-arrays lane state: word-major `[word][lane]`
        // register files (a row loop over the cohort reads one RF word
        // across all lanes — contiguous, not one cache line per lane),
        // dense per-lane counters and flags.
        let mut rf = vec![0i32; nlanes * self.rf_words];
        let mut cycles = vec![0u64; nlanes];
        let mut stalls = vec![0u64; nlanes];
        let mut block_execs = vec![0u64; nlanes * nblocks];
        let mut br = vec![false; nlanes];
        let mut results: Vec<Option<Result<SimStats, SimError>>> = vec![None; nlanes];

        // Cohort scheduler: every lane waiting to enter block `b` sits in
        // `waiting[b]`; `ready` holds the blocks with non-empty waiting
        // lists (dedup'd by `queued`). Lanes are independent, so the pop
        // order cannot affect any lane's outcome — only how well cohorts
        // merge.
        let mut waiting: Vec<Vec<u32>> = vec![Vec::new(); nblocks];
        let mut ready: Vec<u32> = Vec::new();
        let mut queued = vec![false; nblocks];
        waiting[self.entry] = (0..nlanes as u32).collect();
        ready.push(self.entry as u32);
        queued[self.entry] = true;

        // Cohort-run scratch, allocated once per call at the worst-case
        // extent (a cycle row holds at most one op per tile, so at most
        // `ntiles` queued writes / memory ops). `write_vals` and
        // `mem_addr`/`mem_val` are `[slot][lane-in-cohort]` matrices of
        // the current cycle; their row layout is static per cycle row,
        // and rows are never zeroed — every committed position is
        // written first (phase 1 rows fully, load rows per surviving
        // lane, with retired lanes masked out of the commit).
        let mut cohort: Vec<u32> = Vec::with_capacity(nlanes);
        let mut exit: Vec<Exit> = Vec::with_capacity(nlanes);
        let mut write_dst: Vec<u32> = Vec::new();
        let mut write_vals: Vec<i32> = vec![0; self.ntiles * nlanes];
        // Per memory op of the cycle: the queued-write index a load
        // commits through (`NO_DST` for stores).
        let mut mem_wi: Vec<u32> = Vec::new();
        let mut mem_addr: Vec<i32> = vec![0; self.ntiles * nlanes];
        let mut mem_val: Vec<i32> = vec![0; self.ntiles * nlanes];
        // Bank indices of the current lane's accesses this cycle
        // (written left to right, never cleared). A cycle's stall is
        // `Σ_banks (load - 1)` = the number of accesses whose bank was
        // already hit earlier in the cycle, so a left-scan for a
        // duplicate replaces the per-lane bank histogram.
        let mut lane_banks: Vec<usize> = vec![0; self.ntiles];
        let nbanks = options.mem_banks;
        let bank_mask = if nbanks.is_power_of_two() {
            Some(nbanks - 1)
        } else {
            None
        };
        // Per-lane value rows of the cycle being evaluated (single-op
        // memory addresses and store values) — computed by the tight
        // row loops, then scattered.
        let mut tmp: Vec<i32> = vec![0; nlanes];
        let mut tmp2: Vec<i32> = vec![0; nlanes];
        // Per-lane memory images as a flat slice table, so the TCDM
        // loops index `(ptr, len)` pairs directly instead of chasing a
        // `Vec` header through `lanes[l].mem` on every access.
        let mut mems: Vec<&mut [i32]> = lanes.iter_mut().map(|l| l.mem.as_mut_slice()).collect();
        // An address below this is in-bounds for *every* lane — the
        // threshold of the op-major in-bounds prescan (lanes normally
        // share one image size, so it is rarely conservative).
        let min_mem_len = mems.iter().map(|m| m.len()).min().unwrap_or(0);

        let ops = &self.ops[..];
        let op_ends = &self.op_ends[..];
        let idle_skip = &self.idle_skip[..];
        let max_cycles = options.max_cycles;
        let mut m = BatchMetrics::default();

        // Worst-case cycle charge of one run of each block: every
        // schedule cycle charges 1 (idle runs included), and a cycle
        // with `k` memory accesses can stall at most `k - 1` more. When
        // the deepest lane of a cohort still has that much budget
        // headroom, no lane can trip `MaxCycles` inside the block and
        // every per-cycle budget check is hoisted out of the run.
        let mut max_charge = vec![0u64; nblocks];
        for (b, charge) in max_charge.iter_mut().enumerate() {
            let length = self.block_lengths[b];
            let cbase = self.block_cycle_base[b];
            let mut s = if cbase == 0 {
                0
            } else {
                op_ends[cbase - 1] as usize
            };
            *charge = length as u64;
            for c in 0..length {
                let e = op_ends[cbase + c] as usize;
                let nmem = ops[s..e]
                    .iter()
                    .filter(|sl| matches!(sl.kind, SlotKind::Load | SlotKind::Store))
                    .count() as u64;
                *charge += nmem.saturating_sub(1);
                s = e;
            }
        }

        while let Some(block) = ready.pop() {
            let block = block as usize;
            queued[block] = false;
            cohort.clear();
            cohort.append(&mut waiting[block]);
            m.cohorts += 1;
            m.cohort_lanes += cohort.len() as u64;

            // Entering the block: count the execution, reset the branch
            // flag — per lane, exactly as the solo loop does.
            for &l in &cohort {
                block_execs[l as usize * nblocks + block] += 1;
                br[l as usize] = false;
            }
            exit.clear();
            exit.resize(cohort.len(), Exit::Running);

            let length = self.block_lengths[block];
            let cbase = self.block_cycle_base[block];
            let mut start = if cbase == 0 {
                0
            } else {
                op_ends[cbase - 1] as usize
            };
            // When even the deepest lane cannot exhaust its budget in
            // this run, the per-cycle charges collapse to one uniform
            // `+= length` after the loop (stalls still accrue per lane).
            let entry_max = cohort
                .iter()
                .map(|&l| cycles[l as usize])
                .max()
                .unwrap_or(0);
            let fast_budget = entry_max.saturating_add(max_charge[block]) <= max_cycles;
            let mut cycle = 0usize;
            let mut need_compact = false;
            while cycle < length {
                if need_compact {
                    compact(&mut cohort, &mut exit);
                    need_compact = false;
                    if cohort.is_empty() {
                        break;
                    }
                }
                let g = cbase + cycle;
                let end = op_ends[g] as usize;
                if start == end {
                    // Fully idle window: one schedule step covers the
                    // whole pnop run for every lane.
                    let run = idle_skip[g] as u64;
                    if !fast_budget {
                        for (pos, &l) in cohort.iter().enumerate() {
                            let l = l as usize;
                            cycles[l] += run;
                            if cycles[l] > max_cycles {
                                results[l] = Some(Err(SimError::MaxCycles(max_cycles)));
                                exit[pos] = Exit::Retired;
                                need_compact = true;
                            }
                        }
                    }
                    cycle += run as usize;
                    continue;
                }
                if !fast_budget {
                    // Active cycle: charge it and apply the budget before
                    // any effect, as the solo loop does. Violators leave
                    // *now* (compacted in place, not at the loop top —
                    // the cycle must not be re-charged to the survivors).
                    for (pos, &l) in cohort.iter().enumerate() {
                        let l = l as usize;
                        cycles[l] += 1;
                        if cycles[l] > max_cycles {
                            results[l] = Some(Err(SimError::MaxCycles(max_cycles)));
                            exit[pos] = Exit::Retired;
                            need_compact = true;
                        }
                    }
                    if need_compact {
                        compact(&mut cohort, &mut exit);
                        need_compact = false;
                        if cohort.is_empty() {
                            break;
                        }
                    }
                }
                let ncoh = cohort.len();
                let row = &ops[start..end];
                if row.len() == 1 {
                    // Single-op cycle: no same-cycle reader, no bank
                    // conflict — ALU/Mov results commit straight into
                    // the RF rows, memory ops stage addresses/values in
                    // the per-lane scratch rows.
                    let slot = &row[0];
                    match slot.kind {
                        SlotKind::Load => {
                            let addrs = &mut tmp[..ncoh];
                            row1(addrs, &cohort, &rf, nlanes, slot.args[0], |x| x);
                            for (pos, &l) in cohort.iter().enumerate() {
                                let l = l as usize;
                                let addr = addrs[pos];
                                let mem = &mut *mems[l];
                                // i32 -> usize sign-extends, so one
                                // unsigned compare covers negatives too.
                                if addr as usize >= mem.len() {
                                    results[l] = Some(Err(SimError::OutOfBounds {
                                        addr: addr as i64,
                                        size: mem.len(),
                                    }));
                                    exit[pos] = Exit::Retired;
                                    need_compact = true;
                                    continue;
                                }
                                rf[slot.dst as usize * nlanes + l] = mem[addr as usize];
                            }
                        }
                        SlotKind::Store => {
                            let addrs = &mut tmp[..ncoh];
                            row1(addrs, &cohort, &rf, nlanes, slot.args[0], |x| x);
                            let vals = &mut tmp2[..ncoh];
                            row1(vals, &cohort, &rf, nlanes, slot.args[1], |x| x);
                            for (pos, &l) in cohort.iter().enumerate() {
                                let l = l as usize;
                                let addr = addrs[pos];
                                let mem = &mut *mems[l];
                                // i32 -> usize sign-extends, so one
                                // unsigned compare covers negatives too.
                                if addr as usize >= mem.len() {
                                    results[l] = Some(Err(SimError::OutOfBounds {
                                        addr: addr as i64,
                                        size: mem.len(),
                                    }));
                                    exit[pos] = Exit::Retired;
                                    need_compact = true;
                                    continue;
                                }
                                mem[addr as usize] = vals[pos];
                            }
                        }
                        SlotKind::Br => {
                            br_row(&mut br, &cohort, &rf, nlanes, slot.args[0]);
                        }
                        SlotKind::Mov | SlotKind::Alu => {
                            if slot.dst != NO_DST {
                                alu_row_rf(&mut rf, &cohort, nlanes, slot);
                            }
                        }
                    }
                    start = end;
                    cycle += 1;
                    continue;
                }

                // Multi-op cycle. The queued-write layout of the row is
                // static: phase-1 writes (ALU/Mov) in slot order, then
                // one write per load in memory-op order — the same queue
                // order the solo loop commits in.
                write_dst.clear();
                mem_wi.clear();
                for slot in row {
                    match slot.kind {
                        SlotKind::Mov | SlotKind::Alu if slot.dst != NO_DST => {
                            write_dst.push(slot.dst)
                        }
                        _ => {}
                    }
                }
                for slot in row {
                    match slot.kind {
                        SlotKind::Load => {
                            mem_wi.push(write_dst.len() as u32);
                            write_dst.push(slot.dst);
                        }
                        SlotKind::Store => mem_wi.push(NO_DST),
                        _ => {}
                    }
                }
                let nwrites = write_dst.len();
                let nmem = mem_wi.len();
                debug_assert!(nwrites * ncoh <= write_vals.len());
                debug_assert!(nmem * ncoh <= mem_addr.len());

                // Phase 1, slot-major with a lane-inner loop: evaluate
                // against the start-of-cycle RF state. Opcode and
                // operand-pattern dispatch happen once per row (see
                // [`alu_row`]/[`row1`]); the lane loops are tight.
                let mut wi = 0usize;
                let mut mi = 0usize;
                for slot in row {
                    match slot.kind {
                        SlotKind::Load => {
                            let addrs = &mut mem_addr[mi * ncoh..(mi + 1) * ncoh];
                            row1(addrs, &cohort, &rf, nlanes, slot.args[0], |x| x);
                            mi += 1;
                        }
                        SlotKind::Store => {
                            let addrs = &mut mem_addr[mi * ncoh..(mi + 1) * ncoh];
                            row1(addrs, &cohort, &rf, nlanes, slot.args[0], |x| x);
                            let vals = &mut mem_val[mi * ncoh..(mi + 1) * ncoh];
                            row1(vals, &cohort, &rf, nlanes, slot.args[1], |x| x);
                            mi += 1;
                        }
                        SlotKind::Br => br_row(&mut br, &cohort, &rf, nlanes, slot.args[0]),
                        SlotKind::Mov | SlotKind::Alu => {
                            if slot.dst == NO_DST {
                                continue;
                            }
                            let vals = &mut write_vals[wi * ncoh..(wi + 1) * ncoh];
                            alu_row(vals, &cohort, &rf, nlanes, slot);
                            wi += 1;
                        }
                    }
                }

                // Phase 2, lane-major: TCDM accesses in memory-op order
                // with per-lane bank-conflict stalls. An out-of-bounds
                // access retires the lane mid-phase — earlier stores of
                // the same cycle stay committed and its queued RF writes
                // are discarded, exactly as the solo loop's early return
                // leaves them.
                if nmem == 1 {
                    // One access cannot conflict with itself: no bank
                    // accounting, no stall.
                    let wi0 = mem_wi[0];
                    for (pos, &l) in cohort.iter().enumerate() {
                        let l = l as usize;
                        let mem = &mut *mems[l];
                        let addr = mem_addr[pos];
                        if addr as usize >= mem.len() {
                            results[l] = Some(Err(SimError::OutOfBounds {
                                addr: addr as i64,
                                size: mem.len(),
                            }));
                            exit[pos] = Exit::Retired;
                            need_compact = true;
                            continue;
                        }
                        let i = addr as usize;
                        if wi0 == NO_DST {
                            mem[i] = mem_val[pos];
                        } else {
                            write_vals[wi0 as usize * ncoh + pos] = mem[i];
                        }
                    }
                } else if nmem > 1 {
                    // Op-major fast path: when every address of the
                    // cycle is provably in-bounds (max of each row,
                    // negatives wrap high as `u32`, checked against the
                    // smallest lane image) and banks are a power of
                    // two, stalls reduce to pairwise bank-row compares
                    // and each access row commits with its load/store
                    // dispatch hoisted out of the lane loop. Per-lane
                    // op order is preserved — every lane sees its
                    // accesses in `mi` order either way.
                    let all_in_bounds = bank_mask.is_some()
                        && (0..nmem).all(|mi| {
                            let row = &mem_addr[mi * ncoh..mi * ncoh + ncoh];
                            row.iter().all(|&a| (a as u32 as usize) < min_mem_len)
                        });
                    if all_in_bounds {
                        let mask = bank_mask.unwrap() as i32;
                        // `Σ_banks (load - 1)` = the number of accesses
                        // with an *earlier* same-bank access — an OR
                        // over the earlier rows per op, not a pair
                        // count (three same-bank hits stall 2, not 3).
                        let stall_row = &mut tmp[..ncoh];
                        stall_row.fill(0);
                        let dup_row = &mut tmp2[..ncoh];
                        for mi in 1..nmem {
                            let (earlier, rest) = mem_addr.split_at(mi * ncoh);
                            let row_mi = &rest[..ncoh];
                            dup_row.fill(0);
                            for mj in 0..mi {
                                let row_mj = &earlier[mj * ncoh..mj * ncoh + ncoh];
                                for (d, (&a, &b)) in
                                    dup_row.iter_mut().zip(row_mi.iter().zip(row_mj))
                                {
                                    *d |= (((a ^ b) & mask) == 0) as i32;
                                }
                            }
                            for (s, &d) in stall_row.iter_mut().zip(dup_row.iter()) {
                                *s += d;
                            }
                        }
                        for (pos, &l) in cohort.iter().enumerate() {
                            let extra = stall_row[pos] as u64;
                            cycles[l as usize] += extra;
                            stalls[l as usize] += extra;
                        }
                        for mi in 0..nmem {
                            let wi = mem_wi[mi];
                            let base = mi * ncoh;
                            if wi == NO_DST {
                                for (pos, &l) in cohort.iter().enumerate() {
                                    let addr = mem_addr[base + pos] as usize;
                                    mems[l as usize][addr] = mem_val[base + pos];
                                }
                            } else {
                                let vals = &mut write_vals[wi as usize * ncoh..];
                                for (pos, &l) in cohort.iter().enumerate() {
                                    let addr = mem_addr[base + pos] as usize;
                                    vals[pos] = mems[l as usize][addr];
                                }
                            }
                        }
                    } else {
                        // Lane-major slow path: a lane may fault
                        // mid-cycle (or banks are not a power of two),
                        // so each lane walks its accesses in op order,
                        // stopping at the first out-of-bounds address.
                        for (pos, &l) in cohort.iter().enumerate() {
                            let l = l as usize;
                            let mem = &mut *mems[l];
                            let mut stall = 0u64;
                            let mut failed = false;
                            for mi in 0..nmem {
                                let addr = mem_addr[mi * ncoh + pos];
                                if addr as usize >= mem.len() {
                                    results[l] = Some(Err(SimError::OutOfBounds {
                                        addr: addr as i64,
                                        size: mem.len(),
                                    }));
                                    exit[pos] = Exit::Retired;
                                    need_compact = true;
                                    failed = true;
                                    break;
                                }
                                let i = addr as usize;
                                let bank = match bank_mask {
                                    Some(mask) => i & mask,
                                    None => i % nbanks,
                                };
                                if lane_banks[..mi].contains(&bank) {
                                    stall += 1;
                                }
                                lane_banks[mi] = bank;
                                let wi = mem_wi[mi];
                                if wi == NO_DST {
                                    mem[i] = mem_val[mi * ncoh + pos];
                                } else {
                                    write_vals[wi as usize * ncoh + pos] = mem[i];
                                }
                            }
                            if failed {
                                continue;
                            }
                            cycles[l] += stall;
                            stalls[l] += stall;
                        }
                    }
                }

                // Phase 3, write-major: commit the queue in order for
                // every lane still running. Retired lanes exist this
                // cycle only when `need_compact` is set, so the common
                // case commits unguarded.
                for (wi, &dst) in write_dst.iter().enumerate() {
                    let vals = &write_vals[wi * ncoh..(wi + 1) * ncoh];
                    let bd = dst as usize * nlanes;
                    if !need_compact {
                        for (pos, &l) in cohort.iter().enumerate() {
                            rf[bd + l as usize] = vals[pos];
                        }
                    } else {
                        for (pos, &l) in cohort.iter().enumerate() {
                            if exit[pos] == Exit::Running {
                                rf[bd + l as usize] = vals[pos];
                            }
                        }
                    }
                }
                start = end;
                cycle += 1;
            }
            if need_compact {
                // Lanes may retire in the block's last cycle; they must
                // not reach the terminator.
                compact(&mut cohort, &mut exit);
            }
            if fast_budget {
                // The uniform per-cycle charges of the whole run, paid in
                // one step by every lane that survived it.
                for &l in &cohort {
                    cycles[l as usize] += length as u64;
                }
            }

            if cohort.is_empty() {
                continue;
            }
            match self.terminators[block] {
                BinTerminator::Jump(b) => enqueue(
                    &mut waiting,
                    &mut ready,
                    &mut queued,
                    b as usize,
                    &cohort,
                    |_| true,
                ),
                BinTerminator::Branch { taken, fallthrough } => {
                    let ntaken = cohort.iter().filter(|&&l| br[l as usize]).count();
                    if ntaken > 0 && ntaken < cohort.len() {
                        m.divergences += 1;
                    }
                    if ntaken > 0 {
                        enqueue(
                            &mut waiting,
                            &mut ready,
                            &mut queued,
                            taken as usize,
                            &cohort,
                            |l| br[l as usize],
                        );
                    }
                    if ntaken < cohort.len() {
                        enqueue(
                            &mut waiting,
                            &mut ready,
                            &mut queued,
                            fallthrough as usize,
                            &cohort,
                            |l| !br[l as usize],
                        );
                    }
                }
                BinTerminator::Return => {
                    for &l in &cohort {
                        let l = l as usize;
                        let mut stats = SimStats {
                            cycles: cycles[l],
                            stall_cycles: stalls[l],
                            block_execs: block_execs[l * nblocks..(l + 1) * nblocks].to_vec(),
                            tiles: vec![TileStats::default(); self.ntiles],
                        };
                        for (b, &n) in stats.block_execs.iter().enumerate() {
                            if n == 0 {
                                continue;
                            }
                            let deltas = &self.stats_delta[b * self.ntiles..(b + 1) * self.ntiles];
                            for (ts, d) in stats.tiles.iter_mut().zip(deltas) {
                                ts.accumulate_scaled(d, n);
                            }
                        }
                        results[l] = Some(Ok(stats));
                    }
                }
            }
        }

        let results: Vec<Result<SimStats, SimError>> = results
            .into_iter()
            .map(|r| r.expect("every lane retires"))
            .collect();
        for r in &results {
            match r {
                Ok(s) => {
                    m.retired_ok += 1;
                    m.agg_cycles += s.cycles;
                }
                Err(_) => m.retired_err += 1,
            }
        }
        cmam_obs::counter!("sim.batch.calls").add(1);
        cmam_obs::counter!("sim.batch.lanes").add(nlanes as u64);
        cmam_obs::counter!("sim.batch.cohorts").add(m.cohorts);
        cmam_obs::counter!("sim.batch.cohort_lanes").add(m.cohort_lanes);
        cmam_obs::counter!("sim.batch.divergences").add(m.divergences);
        cmam_obs::counter!("sim.batch.retired_ok").add(m.retired_ok);
        cmam_obs::counter!("sim.batch.retired_err").add(m.retired_err);
        cmam_obs::counter!("sim.batch.cycles").add(m.agg_cycles);
        results
    }
}

/// Evaluates a one-operand row into `out[pos]` for every cohort lane.
/// The operand pattern is matched once; each arm is a tight lane loop.
#[inline(always)]
fn row1(
    out: &mut [i32],
    cohort: &[u32],
    rf: &[i32],
    stride: usize,
    a0: Arg,
    f: impl Fn(i32) -> i32,
) {
    match a0 {
        Arg::Rf(i) => {
            let bi = i as usize * stride;
            for (o, &l) in out.iter_mut().zip(cohort) {
                *o = f(rf[bi + l as usize]);
            }
        }
        Arg::Const(c) => {
            let v = f(c);
            for o in out.iter_mut() {
                *o = v;
            }
        }
    }
}

/// Evaluates a two-operand row into `out[pos]` for every cohort lane,
/// with the operand pattern dispatched once per row.
#[inline(always)]
fn row2(
    out: &mut [i32],
    cohort: &[u32],
    rf: &[i32],
    stride: usize,
    a0: Arg,
    a1: Arg,
    f: impl Fn(i32, i32) -> i32,
) {
    match (a0, a1) {
        (Arg::Rf(i), Arg::Rf(j)) => {
            let (bi, bj) = (i as usize * stride, j as usize * stride);
            for (o, &l) in out.iter_mut().zip(cohort) {
                let l = l as usize;
                *o = f(rf[bi + l], rf[bj + l]);
            }
        }
        (Arg::Rf(i), Arg::Const(c)) => {
            let bi = i as usize * stride;
            for (o, &l) in out.iter_mut().zip(cohort) {
                *o = f(rf[bi + l as usize], c);
            }
        }
        (Arg::Const(c), Arg::Rf(j)) => {
            let bj = j as usize * stride;
            for (o, &l) in out.iter_mut().zip(cohort) {
                *o = f(c, rf[bj + l as usize]);
            }
        }
        (Arg::Const(c), Arg::Const(d)) => {
            let v = f(c, d);
            for o in out.iter_mut() {
                *o = v;
            }
        }
    }
}

/// Sets the branch flag of every cohort lane from a one-operand row.
#[inline(always)]
fn br_row(br: &mut [bool], cohort: &[u32], rf: &[i32], stride: usize, a0: Arg) {
    match a0 {
        Arg::Rf(i) => {
            let bi = i as usize * stride;
            for &l in cohort {
                br[l as usize] = rf[bi + l as usize] != 0;
            }
        }
        Arg::Const(c) => {
            let v = c != 0;
            for &l in cohort {
                br[l as usize] = v;
            }
        }
    }
}

/// In-place variant of [`row1`] for single-op cycles: reads and writes
/// the RF rows directly (`rf[lane_base + dst] = f(operand)`), legal
/// because the cycle has exactly one op and therefore no same-cycle
/// reader of the destination.
#[inline(always)]
fn row1_rf(
    rf: &mut [i32],
    cohort: &[u32],
    stride: usize,
    dst: usize,
    a0: Arg,
    f: impl Fn(i32) -> i32,
) {
    let bd = dst * stride;
    match a0 {
        Arg::Rf(i) => {
            let bi = i as usize * stride;
            for &l in cohort {
                let l = l as usize;
                rf[bd + l] = f(rf[bi + l]);
            }
        }
        Arg::Const(c) => {
            let v = f(c);
            for &l in cohort {
                rf[bd + l as usize] = v;
            }
        }
    }
}

/// In-place variant of [`row2`] (see [`row1_rf`]).
#[inline(always)]
fn row2_rf(
    rf: &mut [i32],
    cohort: &[u32],
    stride: usize,
    dst: usize,
    a0: Arg,
    a1: Arg,
    f: impl Fn(i32, i32) -> i32,
) {
    let bd = dst * stride;
    match (a0, a1) {
        (Arg::Rf(i), Arg::Rf(j)) => {
            let (bi, bj) = (i as usize * stride, j as usize * stride);
            for &l in cohort {
                let l = l as usize;
                rf[bd + l] = f(rf[bi + l], rf[bj + l]);
            }
        }
        (Arg::Rf(i), Arg::Const(c)) => {
            let bi = i as usize * stride;
            for &l in cohort {
                let l = l as usize;
                rf[bd + l] = f(rf[bi + l], c);
            }
        }
        (Arg::Const(c), Arg::Rf(j)) => {
            let bj = j as usize * stride;
            for &l in cohort {
                let l = l as usize;
                rf[bd + l] = f(c, rf[bj + l]);
            }
        }
        (Arg::Const(c), Arg::Const(d)) => {
            let v = f(c, d);
            for &l in cohort {
                rf[bd + l as usize] = v;
            }
        }
    }
}

/// In-place variant of [`alu_row`] for single-op cycles: commits each
/// lane's result straight into its RF row.
fn alu_row_rf(rf: &mut [i32], cohort: &[u32], stride: usize, slot: &Slot) {
    let a = slot.args;
    let dst = slot.dst as usize;
    let bool2i = |b: bool| if b { 1 } else { 0 };
    match slot.opcode {
        Opcode::Add => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| {
            x.wrapping_add(y)
        }),
        Opcode::Sub => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| {
            x.wrapping_sub(y)
        }),
        Opcode::Mul => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| {
            x.wrapping_mul(y)
        }),
        Opcode::Shl => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| {
            x.wrapping_shl(y as u32 & 31)
        }),
        Opcode::Shr => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| {
            x.wrapping_shr(y as u32 & 31)
        }),
        Opcode::And => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| x & y),
        Opcode::Or => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| x | y),
        Opcode::Xor => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| x ^ y),
        Opcode::Min => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| x.min(y)),
        Opcode::Max => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| x.max(y)),
        Opcode::Abs => row1_rf(rf, cohort, stride, dst, a[0], |x| x.wrapping_abs()),
        Opcode::Eq => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| bool2i(x == y)),
        Opcode::Ne => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| bool2i(x != y)),
        Opcode::Lt => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| bool2i(x < y)),
        Opcode::Le => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| bool2i(x <= y)),
        Opcode::Gt => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| bool2i(x > y)),
        Opcode::Ge => row2_rf(rf, cohort, stride, dst, a[0], a[1], |x, y| bool2i(x >= y)),
        Opcode::Select => {
            for &l in cohort {
                let l = l as usize;
                let read = |a: Arg| match a {
                    Arg::Const(c) => c,
                    Arg::Rf(i) => rf[i as usize * stride + l],
                };
                let v = if read(a[0]) != 0 {
                    read(a[1])
                } else {
                    read(a[2])
                };
                rf[dst * stride + l] = v;
            }
        }
        Opcode::Mov => row1_rf(rf, cohort, stride, dst, a[0], |x| x),
        Opcode::Load | Opcode::Store | Opcode::Br => {
            unreachable!("memory/control opcodes are not ALU rows")
        }
    }
}

/// Evaluates one ALU/Mov row: the opcode is dispatched once, leaving a
/// monomorphized tight lane loop per `(opcode, operand-pattern)`
/// combination — no per-lane opcode match, arity assert or operand
/// array, unlike a per-lane `Opcode::eval` call.
fn alu_row(out: &mut [i32], cohort: &[u32], rf: &[i32], stride: usize, slot: &Slot) {
    let a = slot.args;
    let bool2i = |b: bool| if b { 1 } else { 0 };
    match slot.opcode {
        Opcode::Add => row2(out, cohort, rf, stride, a[0], a[1], |x, y| {
            x.wrapping_add(y)
        }),
        Opcode::Sub => row2(out, cohort, rf, stride, a[0], a[1], |x, y| {
            x.wrapping_sub(y)
        }),
        Opcode::Mul => row2(out, cohort, rf, stride, a[0], a[1], |x, y| {
            x.wrapping_mul(y)
        }),
        Opcode::Shl => row2(out, cohort, rf, stride, a[0], a[1], |x, y| {
            x.wrapping_shl(y as u32 & 31)
        }),
        Opcode::Shr => row2(out, cohort, rf, stride, a[0], a[1], |x, y| {
            x.wrapping_shr(y as u32 & 31)
        }),
        Opcode::And => row2(out, cohort, rf, stride, a[0], a[1], |x, y| x & y),
        Opcode::Or => row2(out, cohort, rf, stride, a[0], a[1], |x, y| x | y),
        Opcode::Xor => row2(out, cohort, rf, stride, a[0], a[1], |x, y| x ^ y),
        Opcode::Min => row2(out, cohort, rf, stride, a[0], a[1], |x, y| x.min(y)),
        Opcode::Max => row2(out, cohort, rf, stride, a[0], a[1], |x, y| x.max(y)),
        Opcode::Abs => row1(out, cohort, rf, stride, a[0], |x| x.wrapping_abs()),
        Opcode::Eq => row2(out, cohort, rf, stride, a[0], a[1], |x, y| bool2i(x == y)),
        Opcode::Ne => row2(out, cohort, rf, stride, a[0], a[1], |x, y| bool2i(x != y)),
        Opcode::Lt => row2(out, cohort, rf, stride, a[0], a[1], |x, y| bool2i(x < y)),
        Opcode::Le => row2(out, cohort, rf, stride, a[0], a[1], |x, y| bool2i(x <= y)),
        Opcode::Gt => row2(out, cohort, rf, stride, a[0], a[1], |x, y| bool2i(x > y)),
        Opcode::Ge => row2(out, cohort, rf, stride, a[0], a[1], |x, y| bool2i(x >= y)),
        Opcode::Select => {
            // Rare enough that only the opcode is hoisted; the operand
            // reads stay a per-lane match (predictable per row).
            let read = |a: Arg, l: usize| match a {
                Arg::Const(c) => c,
                Arg::Rf(i) => rf[i as usize * stride + l],
            };
            for (o, &l) in out.iter_mut().zip(cohort) {
                let l = l as usize;
                *o = if read(a[0], l) != 0 {
                    read(a[1], l)
                } else {
                    read(a[2], l)
                };
            }
        }
        Opcode::Mov => row1(out, cohort, rf, stride, a[0], |x| x),
        Opcode::Load | Opcode::Store | Opcode::Br => {
            unreachable!("memory/control opcodes are not ALU rows")
        }
    }
}

/// Drops retired lanes from the cohort, keeping `exit` positions in
/// sync (all `Running` afterwards).
fn compact(cohort: &mut Vec<u32>, exit: &mut Vec<Exit>) {
    let mut w = 0;
    for r in 0..cohort.len() {
        if exit[r] == Exit::Running {
            cohort[w] = cohort[r];
            w += 1;
        }
    }
    cohort.truncate(w);
    exit.clear();
    exit.resize(w, Exit::Running);
}

/// Parks the cohort lanes selected by `pred` on block `b`'s waiting
/// list, scheduling the block if it was not already queued.
fn enqueue(
    waiting: &mut [Vec<u32>],
    ready: &mut Vec<u32>,
    queued: &mut [bool],
    b: usize,
    cohort: &[u32],
    pred: impl Fn(u32) -> bool,
) {
    for &l in cohort {
        if pred(l) {
            waiting[b].push(l);
        }
    }
    if !waiting[b].is_empty() && !queued[b] {
        queued[b] = true;
        ready.push(b as u32);
    }
}
