//! One-time decoding of a [`CgraBinary`] into a flat, cache-friendly
//! program the cycle loop can execute without hashing, cloning or
//! allocating.
//!
//! [`DecodedProgram::decode`] runs every per-run cost of the old
//! simulator exactly once per binary instead of once per call (and once
//! per cycle):
//!
//! * pnop-compressed word lists are expanded into a dense array of
//!   **active micro-ops only**, grouped by `(block, cycle)` with the
//!   tiles of one cycle contiguous — the cycle loop walks a range of
//!   executing ops and never visits an idle tile;
//! * neighbour operands are resolved through the torus geometry up
//!   front — the cycle loop never computes a wrap-around position;
//! * CRF constants are inlined into the slot (the CRF is read-only
//!   during execution, so the fetch is just the stored word);
//! * register files live in one flat word array (per-tile offsets), and
//!   every register and CRF index is bounds-checked here, at decode
//!   time — a corrupt binary fails before cycle 0 and the cycle loop
//!   itself cannot fail on operand fetch;
//! * all eleven [`TileStats`] counters of one block execution are
//!   statically known (a simulation that errors discards its stats, so
//!   mid-block aborts never expose partial counts), so decode
//!   pre-aggregates a per-`(block, tile)` delta that
//!   [`DecodedProgram::simulate`] adds once per block execution — the
//!   cycle loop maintains no activity counters at all, only the cycle
//!   count, the stall count and the dynamic machine state.
//!
//! The only runtime failures left are data-dependent: an out-of-bounds
//! memory address and the cycle budget.

use crate::machine::{SimError, SimOptions};
use crate::stats::{SimStats, TileStats};
use cmam_arch::{CgraConfig, TileId};
use cmam_cdfg::Opcode;
use cmam_isa::program::BinTerminator;
use cmam_isa::{CgraBinary, Instr, Operand};

/// Sentinel for "no destination register" in a [`Slot`].
pub(crate) const NO_DST: u32 = u32::MAX;

/// What an active slot does, pre-classified so the cycle loop dispatches
/// on one byte instead of re-matching the opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotKind {
    /// Pure ALU operation (everything except the cases below).
    Alu,
    /// Register move.
    Mov,
    /// TCDM load.
    Load,
    /// TCDM store.
    Store,
    /// Branch-flag update.
    Br,
}

/// Where one operand comes from, with everything pre-resolved. `Rf` and
/// `Neighbor` carry the flat register-file index of the already-resolved
/// register; they are distinguished only for decode-time accounting.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Arg {
    /// CRF constant, inlined at decode time.
    Const(i32),
    /// Register-file read (own or neighbour RF — resolved to a flat
    /// index either way).
    Rf(u32),
}

/// One executing micro-op of a `(block, cycle)` row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Slot {
    pub(crate) kind: SlotKind,
    pub(crate) opcode: Opcode,
    pub(crate) nargs: u8,
    /// Flat RF index of the destination, or [`NO_DST`].
    pub(crate) dst: u32,
    pub(crate) args: [Arg; 3],
}

/// A queued TCDM access of the current cycle.
#[derive(Debug, Clone, Copy)]
struct MemOp {
    store: bool,
    addr: i64,
    val: i32,
    /// Flat RF index of a load's destination ([`NO_DST`] for stores).
    dst: u32,
}

/// A [`CgraBinary`] decoded against one [`CgraConfig`]: dense micro-op
/// rows plus the control-flow skeleton. Decode once, simulate many
/// times — [`DecodedProgram::simulate`] is pure over `(mem, options)`.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    pub(crate) ntiles: usize,
    pub(crate) entry: usize,
    pub(crate) block_lengths: Vec<usize>,
    pub(crate) terminators: Vec<BinTerminator>,
    /// Active micro-ops, grouped by `(block, cycle)` in block order,
    /// tiles of one cycle contiguous and in tile order.
    pub(crate) ops: Vec<Slot>,
    /// End index into [`DecodedProgram::ops`] per `(block, cycle)`,
    /// flattened in block order; the row of global cycle `g` is
    /// `ops[op_ends[g - 1]..op_ends[g]]` (`0` for `g == 0`). Monotone by
    /// construction, so starts need not be stored.
    pub(crate) op_ends: Vec<u32>,
    /// Index of each block's cycle 0 in [`DecodedProgram::op_ends`].
    pub(crate) block_cycle_base: Vec<usize>,
    /// For a fully idle `(block, cycle)`: the length of the maximal run
    /// of fully idle cycles starting there (not crossing the block end),
    /// so the cycle loop advances over a whole pnop window in one step.
    /// `0` for cycles with at least one active op.
    pub(crate) idle_skip: Vec<u32>,
    /// Statically-known per-tile activity of one execution of each
    /// block, flattened `block * ntiles + tile`.
    pub(crate) stats_delta: Vec<TileStats>,
    /// Total RF words over all tiles (tile offsets are resolved into the
    /// slots at decode time, so only the flat extent is kept).
    pub(crate) rf_words: usize,
}

impl DecodedProgram {
    /// Decodes `binary` for `config`, resolving geometry and validating
    /// every register and CRF index.
    ///
    /// # Errors
    ///
    /// [`SimError::BadRegister`] / [`SimError::BadConstant`] for indices
    /// outside the configured register files (a corrupt binary). The
    /// reference simulator reports these lazily at first execution; the
    /// decoded path reports them eagerly here.
    ///
    /// # Panics
    ///
    /// Panics if `binary` and `config` disagree on the tile count, a
    /// tile's word list does not cover its block's schedule length, or
    /// an instruction carries more than three operands (the maximum
    /// opcode arity) — all assembler invariants.
    pub fn decode(binary: &CgraBinary, config: &CgraConfig) -> Result<Self, SimError> {
        let _span = cmam_obs::span!("decode", blocks = binary.block_lengths.len() as u64);
        let geom = config.geometry();
        let ntiles = binary.num_tiles();
        assert_eq!(
            ntiles,
            geom.num_tiles(),
            "binary and configuration disagree on the tile count"
        );

        let mut rf_base = Vec::with_capacity(ntiles);
        let mut rf_len: Vec<usize> = Vec::with_capacity(ntiles);
        let mut rf_words = 0usize;
        for t in 0..ntiles {
            rf_base.push(u32::try_from(rf_words).expect("RF fits u32"));
            let words = config.tile(TileId(t)).rf_words;
            rf_len.push(words);
            rf_words += words;
        }
        // A register read of `(tile, reg)`, bounds-checked and flattened.
        let reg_at = |tile: usize, reg: u8| -> Result<u32, SimError> {
            if (reg as usize) < rf_len[tile] {
                Ok(rf_base[tile] + reg as u32)
            } else {
                Err(SimError::BadRegister { tile, reg })
            }
        };

        let nblocks = binary.block_lengths.len();
        let mut ops: Vec<Slot> = Vec::new();
        let mut op_ends: Vec<u32> = Vec::new();
        let mut block_cycle_base = Vec::with_capacity(nblocks);
        let mut stats_delta = vec![TileStats::default(); nblocks * ntiles];
        for (b, &length) in binary.block_lengths.iter().enumerate() {
            block_cycle_base.push(op_ends.len());
            // Bucket the block's active ops by cycle; the outer tile loop
            // keeps each bucket in tile order.
            let mut buckets: Vec<Vec<Slot>> = vec![Vec::new(); length];
            for t in 0..ntiles {
                let delta = &mut stats_delta[b * ntiles + t];
                let mut cycle = 0usize;
                for word in &binary.tiles[t].blocks[b] {
                    match word {
                        Instr::Pnop { cycles } => {
                            if *cycles > 0 {
                                // One context-memory fetch per idle run.
                                delta.cm_fetches += 1;
                                delta.idle_cycles += *cycles as u64;
                            }
                            cycle += *cycles as usize;
                        }
                        Instr::Exec { opcode, dst, srcs } => {
                            delta.active_cycles += 1;
                            delta.cm_fetches += 1;
                            let mut args = [Arg::Const(0); 3];
                            assert!(srcs.len() <= args.len(), "operand count fits the slot");
                            for (a, s) in args.iter_mut().zip(srcs) {
                                *a = match *s {
                                    Operand::Crf(i) => {
                                        delta.crf_reads += 1;
                                        Arg::Const(
                                            *binary.crf[t]
                                                .get(i as usize)
                                                .ok_or(SimError::BadConstant { tile: t, idx: i })?,
                                        )
                                    }
                                    Operand::Reg(r) => {
                                        delta.rf_reads += 1;
                                        Arg::Rf(reg_at(t, r)?)
                                    }
                                    Operand::Neighbor(d, r) => {
                                        delta.neighbor_reads += 1;
                                        let n = geom.neighbor(TileId(t), d).0;
                                        Arg::Rf(reg_at(n, r)?)
                                    }
                                };
                            }
                            let kind = match opcode {
                                Opcode::Load => SlotKind::Load,
                                Opcode::Store => SlotKind::Store,
                                Opcode::Br => SlotKind::Br,
                                Opcode::Mov => SlotKind::Mov,
                                _ => SlotKind::Alu,
                            };
                            let dst = match dst {
                                Some(r) => reg_at(t, *r)?,
                                None => NO_DST,
                            };
                            debug_assert!(
                                !matches!(kind, SlotKind::Load | SlotKind::Mov) || dst != NO_DST,
                                "load/mov has a destination"
                            );
                            match kind {
                                SlotKind::Load => {
                                    delta.loads += 1;
                                    delta.rf_writes += 1;
                                }
                                SlotKind::Store => delta.stores += 1,
                                SlotKind::Br => delta.alu_ops += 1,
                                SlotKind::Mov => {
                                    delta.moves += 1;
                                    delta.rf_writes += 1;
                                }
                                SlotKind::Alu => {
                                    delta.alu_ops += 1;
                                    delta.rf_writes += (dst != NO_DST) as u64;
                                }
                            }
                            buckets[cycle].push(Slot {
                                kind,
                                opcode: *opcode,
                                nargs: srcs.len() as u8,
                                dst,
                                args,
                            });
                            cycle += 1;
                        }
                    }
                }
                assert_eq!(
                    cycle, length,
                    "tile {t} words do not cover block {b}'s schedule"
                );
            }
            for bucket in buckets {
                ops.extend(bucket);
                op_ends.push(u32::try_from(ops.len()).expect("op count fits u32"));
            }
        }
        // Idle-run lengths, computed backwards within each block.
        let mut idle_skip = vec![0u32; op_ends.len()];
        for (b, &length) in binary.block_lengths.iter().enumerate() {
            let cbase = block_cycle_base[b];
            let mut run = 0u32;
            for c in (0..length).rev() {
                let g = cbase + c;
                let start = if g == 0 { 0 } else { op_ends[g - 1] };
                run = if op_ends[g] == start { run + 1 } else { 0 };
                idle_skip[g] = run;
            }
        }

        Ok(DecodedProgram {
            ntiles,
            entry: binary.entry as usize,
            block_lengths: binary.block_lengths.clone(),
            terminators: binary.terminators.clone(),
            ops,
            op_ends,
            block_cycle_base,
            idle_skip,
            stats_delta,
            rf_words,
        })
    }

    /// Number of tiles the program was decoded for.
    pub fn num_tiles(&self) -> usize {
        self.ntiles
    }

    /// Executes the program over `mem`, producing the same [`SimStats`]
    /// and final memory image as [`crate::reference::simulate_reference`]
    /// on the original binary — bit for bit (golden- and
    /// property-tested). The cycle loop performs no allocation: all
    /// scratch is set up once per call and cleared, not reallocated.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfBounds`] and [`SimError::MaxCycles`]; the
    /// operand-fetch errors were already ruled out at decode time. On
    /// error the memory may be partially updated.
    pub fn simulate(&self, mem: &mut [i32], options: SimOptions) -> Result<SimStats, SimError> {
        let _span = cmam_obs::span!("simulate");
        let options = options.normalized();
        let ntiles = self.ntiles;
        let mut rf = vec![0i32; self.rf_words];
        let mut stats = SimStats {
            block_execs: vec![0; self.block_lengths.len()],
            tiles: vec![TileStats::default(); ntiles],
            ..SimStats::default()
        };
        // Per-cycle scratch, fixed capacity: at most one instruction per
        // tile queues at most one RF write and one memory op, and every
        // load adds one more RF write.
        let mut rf_writes: Vec<(u32, i32)> = Vec::with_capacity(2 * ntiles);
        let mut mem_ops: Vec<MemOp> = Vec::with_capacity(ntiles);
        let mut bank_load: Vec<u64> = vec![0; options.mem_banks];

        let ops = &self.ops[..];
        let op_ends = &self.op_ends[..];
        let idle_skip = &self.idle_skip[..];
        let max_cycles = options.max_cycles;
        // Cycle and stall counters stay in locals through the hot loop
        // (as does the idle-window count, flushed to the metrics registry
        // once per call on the success path).
        let mut cycles = 0u64;
        let mut stall_cycles = 0u64;
        let mut idle_windows = 0u64;

        let mut block = self.entry;
        'blocks: loop {
            stats.block_execs[block] += 1;
            let length = self.block_lengths[block];
            let cbase = self.block_cycle_base[block];
            let mut br_flag = false;

            // `start` tracks the previous cycle's op range end; idle
            // cycles leave it unchanged (their range is empty).
            let mut start = if cbase == 0 {
                0
            } else {
                op_ends[cbase - 1] as usize
            };
            let mut cycle = 0usize;
            while cycle < length {
                let g = cbase + cycle;
                let end = op_ends[g] as usize;
                if start == end {
                    // A maximal run of fully idle cycles (every tile
                    // under a pnop): advance over it in one step. The
                    // budget check still fires at the same total the
                    // per-cycle reference check would reach, and idle
                    // cycles touch no machine state.
                    let run = idle_skip[g] as u64;
                    idle_windows += 1;
                    cycles += run;
                    if cycles > max_cycles {
                        return Err(SimError::MaxCycles(max_cycles));
                    }
                    cycle += run as usize;
                    continue;
                }
                cycles += 1;
                if cycles > max_cycles {
                    return Err(SimError::MaxCycles(max_cycles));
                }
                if end - start == 1 {
                    // Single-op cycle: no same-cycle reader can observe
                    // the write and one memory access can never bank-
                    // conflict, so the phase machinery (write queue,
                    // bank table, stall sum) is provably a no-op —
                    // commit directly.
                    let slot = &ops[start];
                    let mut args = [0i32; 3];
                    for (v, a) in args.iter_mut().zip(&slot.args[..slot.nargs as usize]) {
                        *v = match *a {
                            Arg::Const(c) => c,
                            Arg::Rf(i) => rf[i as usize],
                        };
                    }
                    match slot.kind {
                        SlotKind::Load | SlotKind::Store => {
                            let addr = args[0] as i64;
                            let idx = usize::try_from(addr).ok().filter(|&i| i < mem.len());
                            let Some(i) = idx else {
                                return Err(SimError::OutOfBounds {
                                    addr,
                                    size: mem.len(),
                                });
                            };
                            if slot.kind == SlotKind::Store {
                                mem[i] = args[1];
                            } else {
                                rf[slot.dst as usize] = mem[i];
                            }
                        }
                        SlotKind::Br => br_flag = args[0] != 0,
                        SlotKind::Mov => rf[slot.dst as usize] = args[0],
                        SlotKind::Alu => {
                            let r = slot.opcode.eval(&args[..slot.nargs as usize]);
                            if slot.dst != NO_DST {
                                rf[slot.dst as usize] = r;
                            }
                        }
                    }
                    start = end;
                    cycle += 1;
                    continue;
                }
                rf_writes.clear();
                mem_ops.clear();
                // Phase 1: evaluate the cycle's active ops against the
                // start-of-cycle RF state (writes visible next cycle).
                for slot in &ops[start..end] {
                    let mut args = [0i32; 3];
                    for (v, a) in args.iter_mut().zip(&slot.args[..slot.nargs as usize]) {
                        *v = match *a {
                            Arg::Const(c) => c,
                            Arg::Rf(i) => rf[i as usize],
                        };
                    }
                    match slot.kind {
                        SlotKind::Load => mem_ops.push(MemOp {
                            store: false,
                            addr: args[0] as i64,
                            val: 0,
                            dst: slot.dst,
                        }),
                        SlotKind::Store => mem_ops.push(MemOp {
                            store: true,
                            addr: args[0] as i64,
                            val: args[1],
                            dst: NO_DST,
                        }),
                        SlotKind::Br => br_flag = args[0] != 0,
                        SlotKind::Mov => rf_writes.push((slot.dst, args[0])),
                        SlotKind::Alu => {
                            let r = slot.opcode.eval(&args[..slot.nargs as usize]);
                            if slot.dst != NO_DST {
                                rf_writes.push((slot.dst, r));
                            }
                        }
                    }
                }

                // Phase 2: TCDM accesses with bank-conflict stalls.
                if !mem_ops.is_empty() {
                    bank_load.fill(0);
                    for op in &mem_ops {
                        let idx = usize::try_from(op.addr).ok().filter(|&i| i < mem.len());
                        let Some(i) = idx else {
                            return Err(SimError::OutOfBounds {
                                addr: op.addr,
                                size: mem.len(),
                            });
                        };
                        bank_load[i % options.mem_banks] += 1;
                        if op.store {
                            mem[i] = op.val;
                        } else {
                            rf_writes.push((op.dst, mem[i]));
                        }
                    }
                    let stall: u64 = bank_load.iter().map(|&c| c.saturating_sub(1)).sum();
                    cycles += stall;
                    stall_cycles += stall;
                }

                // Phase 3: commit register writes (queue order — a later
                // write to the same register wins, as in the reference).
                for &(idx, v) in &rf_writes {
                    rf[idx as usize] = v;
                }
                start = end;
                cycle += 1;
            }

            match self.terminators[block] {
                BinTerminator::Jump(b) => block = b as usize,
                BinTerminator::Branch { taken, fallthrough } => {
                    block = if br_flag { taken } else { fallthrough } as usize;
                }
                BinTerminator::Return => break 'blocks,
            }
        }
        stats.cycles = cycles;
        stats.stall_cycles = stall_cycles;
        cmam_obs::counter!("sim.runs").add(1);
        cmam_obs::counter!("sim.cycles").add(cycles);
        cmam_obs::counter!("sim.stall_cycles").add(stall_cycles);
        cmam_obs::counter!("sim.idle_windows_skipped").add(idle_windows);
        // Reconstruct the per-tile activity from each block's static
        // per-execution delta and its execution count (see the module
        // docs: errors discard stats, so doing this only on the success
        // path is exact).
        for (b, &n) in stats.block_execs.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let deltas = &self.stats_delta[b * ntiles..(b + 1) * ntiles];
            for (ts, d) in stats.tiles.iter_mut().zip(deltas) {
                ts.accumulate_scaled(d, n);
            }
        }
        Ok(stats)
    }
}
