//! Activity counters produced by the simulator, consumed by `cmam-energy`.

use cmam_arch::TileId;

/// Per-tile activity over a whole kernel run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Cycles executing an instruction (ALU active).
    pub active_cycles: u64,
    /// Cycles idle under a pnop (clock-gated).
    pub idle_cycles: u64,
    /// Context-memory word fetches (one per executed instruction word; a
    /// pnop is fetched once per idle run).
    pub cm_fetches: u64,
    /// Executed ALU operations (everything except moves and memory ops).
    pub alu_ops: u64,
    /// Executed moves.
    pub moves: u64,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
    /// Operand reads from the own register file.
    pub rf_reads: u64,
    /// Operand reads from a neighbour's register file (through the
    /// point-to-point interconnect).
    pub neighbor_reads: u64,
    /// Operand reads from the constant register file.
    pub crf_reads: u64,
    /// Register-file writes (results and move destinations).
    pub rf_writes: u64,
}

impl TileStats {
    /// Adds `n` times every counter of `other` into `self`. The decoded
    /// simulator uses this to reconstruct a whole run's per-tile
    /// activity from each block's statically-known per-execution delta
    /// and its execution count — one pass after the run, zero stats
    /// work inside the cycle loop.
    pub fn accumulate_scaled(&mut self, other: &TileStats, n: u64) {
        self.active_cycles += n * other.active_cycles;
        self.idle_cycles += n * other.idle_cycles;
        self.cm_fetches += n * other.cm_fetches;
        self.alu_ops += n * other.alu_ops;
        self.moves += n * other.moves;
        self.loads += n * other.loads;
        self.stores += n * other.stores;
        self.rf_reads += n * other.rf_reads;
        self.neighbor_reads += n * other.neighbor_reads;
        self.crf_reads += n * other.crf_reads;
        self.rf_writes += n * other.rf_writes;
    }
}

/// Whole-run statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles including stalls (the latency reported in Figs 6-8
    /// and 10).
    pub cycles: u64,
    /// Cycles lost to TCDM bank conflicts.
    pub stall_cycles: u64,
    /// Executions per block, indexed by block id — dense, so iteration
    /// is deterministic by construction (blocks that never ran hold 0).
    pub block_execs: Vec<u64>,
    /// Per-tile counters.
    pub tiles: Vec<TileStats>,
}

impl SimStats {
    /// Counters of one tile.
    pub fn tile(&self, t: TileId) -> &TileStats {
        &self.tiles[t.0]
    }

    /// Total executed instructions over all tiles.
    pub fn total_instructions(&self) -> u64 {
        self.tiles
            .iter()
            .map(|t| t.alu_ops + t.moves + t.loads + t.stores)
            .sum()
    }

    /// Total data-memory accesses.
    pub fn total_mem_accesses(&self) -> u64 {
        self.tiles.iter().map(|t| t.loads + t.stores).sum()
    }

    /// Average tile utilisation: active cycles over `cycles x tiles`.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 || self.tiles.is_empty() {
            return 0.0;
        }
        let active: u64 = self.tiles.iter().map(|t| t.active_cycles).sum();
        active as f64
            / (self.cycles.saturating_sub(self.stall_cycles) * self.tiles.len() as u64) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut s = SimStats {
            cycles: 10,
            stall_cycles: 0,
            block_execs: Vec::new(),
            tiles: vec![TileStats::default(); 2],
        };
        s.tiles[0].alu_ops = 3;
        s.tiles[0].loads = 1;
        s.tiles[0].active_cycles = 4;
        s.tiles[1].moves = 2;
        s.tiles[1].stores = 1;
        s.tiles[1].active_cycles = 3;
        assert_eq!(s.total_instructions(), 7);
        assert_eq!(s.total_mem_accesses(), 2);
        assert!((s.utilization() - 7.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_handles_empty() {
        let s = SimStats::default();
        assert_eq!(s.utilization(), 0.0);
    }
}
