//! # cmam-sim — cycle-level CGRA simulator
//!
//! Executes a [`CgraBinary`] over a banked data memory, producing the
//! latency (cycles) and the per-tile activity counters the energy model
//! consumes. The machine model mirrors the paper's target CGRA:
//!
//! * all tiles run in lock-step through each basic block's schedule; the
//!   CGRA controller selects the next block from the latched `br` flag;
//! * an instruction reads operands from the register-file state at the
//!   *start* of its cycle — its own RF, a direct torus neighbour's RF, or
//!   the local constant register file — and its result is visible from the
//!   next cycle;
//! * `pnop` words keep the tile clock-gated: one context-memory fetch
//!   covers the whole idle run (this is exactly why small context memories
//!   save energy, and why the pnop count matters in Section III-C);
//! * loads/stores go through the logarithmic interconnect to a banked
//!   TCDM; two accesses to the same bank in one cycle cost a global stall
//!   cycle each (the "global stall" signals of Fig 1).
//!
//! The simulator is validated end-to-end: for every kernel, the memory
//! image after simulation must equal the reference interpreter's.
//!
//! Internally the hot path is a two-stage design: [`decode`] flattens a
//! binary once into a dense `(block, cycle, tile)` micro-op array
//! (neighbours resolved, CRF constants inlined, register indices
//! validated), and the cycle loop executes it without allocating. The
//! original naive interpretation survives in [`mod@reference`] as the
//! executable specification — the golden and property suites pin the
//! two bit-for-bit against each other. For input sweeps, [`batch`] runs
//! many independent memory images through one decoded program at once
//! (structure-of-arrays state, block-keyed cohorts), each lane
//! bit-identical to a solo run.

pub mod batch;
pub mod decode;
pub mod machine;
pub mod reference;
pub mod stats;

pub use batch::LaneState;
pub use decode::DecodedProgram;
pub use machine::{simulate, SimError, SimOptions};
pub use reference::simulate_reference;
pub use stats::{SimStats, TileStats};

pub use cmam_isa::CgraBinary;
