//! The lock-step execution engine: options, errors, and the one-call
//! entry point.
//!
//! The heavy lifting lives in [`crate::decode`]: [`simulate`] decodes
//! the binary into a flat [`DecodedProgram`] and runs its allocation-free
//! cycle loop. Callers that simulate one binary many times (benchmarks,
//! sweeps over memory contents) should decode once and call
//! [`DecodedProgram::simulate`] directly.

use crate::decode::DecodedProgram;
use crate::stats::SimStats;
use cmam_arch::CgraConfig;
use cmam_isa::CgraBinary;
use std::error::Error;
use std::fmt;

/// Simulator knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Number of TCDM banks (bank = word address modulo banks). A value
    /// of `0` is treated as `1` — normalization happens once, in
    /// [`SimOptions::normalized`], never at the point of use.
    pub mem_banks: usize,
    /// Hard cycle budget; exceeded means a non-terminating kernel.
    pub max_cycles: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            mem_banks: 8,
            max_cycles: 50_000_000,
        }
    }
}

impl SimOptions {
    /// The same options with `mem_banks == 0` normalized to `1` (a
    /// degenerate "single bank" memory). Every simulation entry point
    /// calls this exactly once up front, so the cycle loop can divide by
    /// `mem_banks` unguarded.
    pub fn normalized(self) -> Self {
        SimOptions {
            mem_banks: self.mem_banks.max(1),
            ..self
        }
    }
}

/// Failure during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Memory access outside the data memory.
    OutOfBounds {
        /// Offending word address.
        addr: i64,
        /// Memory size in words.
        size: usize,
    },
    /// Register index outside the tile's RF (corrupt binary).
    BadRegister {
        /// Tile index.
        tile: usize,
        /// Register index.
        reg: u8,
    },
    /// CRF index outside the tile's constants (corrupt binary).
    BadConstant {
        /// Tile index.
        tile: usize,
        /// CRF index.
        idx: u8,
    },
    /// The cycle budget was exhausted.
    MaxCycles(u64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { addr, size } => {
                write!(f, "memory access at word {addr} outside size {size}")
            }
            SimError::BadRegister { tile, reg } => {
                write!(f, "tile {tile} reads unknown register r{reg}")
            }
            SimError::BadConstant { tile, idx } => {
                write!(f, "tile {tile} reads unknown CRF slot c{idx}")
            }
            SimError::MaxCycles(n) => write!(f, "cycle budget of {n} exhausted"),
        }
    }
}

impl Error for SimError {}

/// Runs `binary` on the CGRA described by `config` over `mem`.
///
/// Decodes the binary (see [`DecodedProgram::decode`]) and executes the
/// flat program. Output is bit-identical to the reference interpretation
/// in [`crate::reference`].
///
/// # Errors
///
/// See [`SimError`]. On error the memory may be partially updated.
pub fn simulate(
    binary: &CgraBinary,
    config: &CgraConfig,
    mem: &mut [i32],
    options: SimOptions,
) -> Result<SimStats, SimError> {
    DecodedProgram::decode(binary, config)?.simulate(mem, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmam_arch::TileId;
    use cmam_cdfg::{interp, CdfgBuilder, Opcode};
    use cmam_core::{Mapper, MapperOptions};
    use cmam_isa::assemble;

    /// Maps, assembles and simulates `cdfg`, returning (stats, memory).
    fn run_end_to_end(
        cdfg: &cmam_cdfg::Cdfg,
        config: &CgraConfig,
        mem_init: &[i32],
    ) -> (SimStats, Vec<i32>) {
        let mapper = Mapper::new(MapperOptions::basic());
        let result = mapper.map(cdfg, config).expect("mapping");
        let (binary, _) = assemble(cdfg, &result.mapping, config).expect("assembly");
        let mut mem = mem_init.to_vec();
        let stats = simulate(&binary, config, &mut mem, SimOptions::default()).expect("sim");
        (stats, mem)
    }

    fn sum_squares_cdfg(n: i32, out: i32) -> cmam_cdfg::Cdfg {
        let mut b = CdfgBuilder::new("ssq");
        let b0 = b.block("entry");
        let b1 = b.block("body");
        let b2 = b.block("exit");
        let i = b.symbol("i");
        let acc = b.symbol("acc");
        b.select(b0);
        b.mov_const_to_symbol(0, i);
        b.mov_const_to_symbol(0, acc);
        b.jump(b1);
        b.select(b1);
        let iv = b.use_symbol(i);
        let av = b.use_symbol(acc);
        let x = b.load_name(iv, "x");
        let sq = b.op(Opcode::Mul, &[x, x]);
        let a2 = b.op(Opcode::Add, &[av, sq]);
        b.write_symbol(a2, acc);
        let one = b.constant(1);
        let i2 = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(i2, i);
        let nv = b.constant(n);
        let c = b.op(Opcode::Lt, &[i2, nv]);
        b.branch(c, b1, b2);
        b.select(b2);
        let av2 = b.use_symbol(acc);
        let o = b.constant(out);
        b.store(o, av2, "out");
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn simulated_loop_matches_interpreter() {
        let cdfg = sum_squares_cdfg(8, 100);
        let config = CgraConfig::hom64();
        let mut init = vec![0i32; 128];
        for i in 0..8 {
            init[i] = (i as i32) + 1;
        }
        let (stats, mem) = run_end_to_end(&cdfg, &config, &init);
        let mut golden = init.clone();
        interp::run(&cdfg, &mut golden, 1_000_000).unwrap();
        assert_eq!(mem, golden, "simulated memory differs from golden");
        assert_eq!(mem[100], (1..=8).map(|x: i32| x * x).sum::<i32>());
        // The loop body ran 8 times.
        assert_eq!(stats.block_execs[1], 8);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn stats_account_every_cycle() {
        let cdfg = sum_squares_cdfg(4, 64);
        let config = CgraConfig::hom64();
        let init = vec![1i32; 80];
        let (stats, _) = run_end_to_end(&cdfg, &config, &init);
        // Per tile: active + idle == total non-stall cycles.
        let busy_cycles = stats.cycles - stats.stall_cycles;
        for (i, t) in stats.tiles.iter().enumerate() {
            assert_eq!(
                t.active_cycles + t.idle_cycles,
                busy_cycles,
                "tile {i} cycle accounting"
            );
        }
        // Fetches are bounded by active cycles + idle runs.
        for t in &stats.tiles {
            assert!(t.cm_fetches <= t.active_cycles + t.idle_cycles);
            assert!(t.cm_fetches >= t.active_cycles);
        }
    }

    #[test]
    fn bank_conflicts_stall() {
        // Two loads to the same bank in one cycle. Build by hand: two
        // parallel loads of address 0 and 8 (same bank with 8 banks).
        let mut b = CdfgBuilder::new("conflict");
        let bb = b.block("b");
        b.select(bb);
        let a0 = b.constant(0);
        let a8 = b.constant(8);
        let x = b.load_name(a0, "x");
        let y = b.load_name(a8, "x");
        let s = b.op(Opcode::Add, &[x, y]);
        let out = b.constant(1);
        b.store(out, s, "y");
        b.ret();
        let cdfg = b.finish().unwrap();
        let config = CgraConfig::hom64();

        // Hand placement: loads on tiles 0 and 1 at cycle 0.
        use cmam_isa::{BlockMapping, KernelMapping, OperandSource, PlacedOp};
        let ids = cdfg.dfg(bb).op_ids().to_vec();
        let vx = cdfg.op(ids[0]).result.unwrap();
        let vy = cdfg.op(ids[1]).result.unwrap();
        let vs = cdfg.op(ids[2]).result.unwrap();
        let mapping = KernelMapping {
            blocks: vec![BlockMapping {
                length: 3,
                ops: vec![
                    PlacedOp {
                        op: ids[0],
                        tile: TileId(0),
                        cycle: 0,
                        operands: vec![OperandSource::Const(0)],
                        direct_symbol_write: false,
                    },
                    PlacedOp {
                        op: ids[1],
                        tile: TileId(1),
                        cycle: 0,
                        operands: vec![OperandSource::Const(8)],
                        direct_symbol_write: false,
                    },
                    PlacedOp {
                        op: ids[2],
                        tile: TileId(0),
                        cycle: 1,
                        operands: vec![
                            OperandSource::Rf {
                                tile: TileId(0),
                                value: vx,
                            },
                            OperandSource::Rf {
                                tile: TileId(1),
                                value: vy,
                            },
                        ],
                        direct_symbol_write: false,
                    },
                    PlacedOp {
                        op: ids[3],
                        tile: TileId(0),
                        cycle: 2,
                        operands: vec![
                            OperandSource::Const(1),
                            OperandSource::Rf {
                                tile: TileId(0),
                                value: vs,
                            },
                        ],
                        direct_symbol_write: false,
                    },
                ],
                moves: vec![],
            }],
            symbol_homes: Default::default(),
        };
        let (binary, _) = assemble(&cdfg, &mapping, &config).unwrap();
        let mut mem = vec![7i32; 16];
        let stats = simulate(&binary, &config, &mut mem, SimOptions::default()).unwrap();
        // Both loads hit bank 0 in cycle 0: one stall cycle.
        assert_eq!(stats.stall_cycles, 1);
        assert_eq!(mem[1], 14);
        // With 16 banks there is no conflict.
        let mut mem2 = vec![7i32; 16];
        let stats2 = simulate(
            &binary,
            &config,
            &mut mem2,
            SimOptions {
                mem_banks: 16,
                max_cycles: 1000,
            },
        )
        .unwrap();
        assert_eq!(stats2.stall_cycles, 0);
    }

    #[test]
    fn zero_banks_normalizes_to_one() {
        // `mem_banks: 0` is the degenerate single-bank memory: every
        // same-cycle access pair conflicts, and nothing divides by zero.
        let cdfg = sum_squares_cdfg(4, 64);
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(MapperOptions::basic());
        let result = mapper.map(&cdfg, &config).expect("mapping");
        let (binary, _) = assemble(&cdfg, &result.mapping, &config).expect("assembly");
        let run = |banks: usize| {
            let mut mem = vec![1i32; 80];
            let stats = simulate(
                &binary,
                &config,
                &mut mem,
                SimOptions {
                    mem_banks: banks,
                    max_cycles: 1_000_000,
                },
            )
            .expect("sim");
            (stats, mem)
        };
        let (s0, m0) = run(0);
        let (s1, m1) = run(1);
        assert_eq!(s0, s1, "0 banks must behave exactly like 1 bank");
        assert_eq!(m0, m1);
        assert_eq!(SimOptions::default().normalized(), SimOptions::default());
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut b = CdfgBuilder::new("oob");
        let _ = b.block("b");
        let a = b.constant(500);
        let x = b.load_name(a, "x");
        let o = b.constant(0);
        b.store(o, x, "x");
        b.ret();
        let cdfg = b.finish().unwrap();
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(MapperOptions::basic());
        let r = mapper.map(&cdfg, &config).unwrap();
        let (binary, _) = assemble(&cdfg, &r.mapping, &config).unwrap();
        let mut mem = vec![0i32; 16];
        let err = simulate(&binary, &config, &mut mem, SimOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { addr: 500, .. }));
    }

    #[test]
    fn corrupt_register_index_fails_at_decode() {
        // A hand-corrupted binary referencing a register outside the RF
        // must fail before cycle 0 (decode-time validation), with the
        // same error the reference simulator reports lazily.
        let cdfg = sum_squares_cdfg(2, 64);
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(MapperOptions::basic());
        let result = mapper.map(&cdfg, &config).expect("mapping");
        let (mut binary, _) = assemble(&cdfg, &result.mapping, &config).expect("assembly");
        let bad = config.tile(TileId(0)).rf_words as u8;
        'corrupt: for block in &mut binary.tiles[0].blocks {
            for word in block.iter_mut() {
                if let cmam_isa::Instr::Exec { dst: Some(d), .. } = word {
                    *d = bad;
                    break 'corrupt;
                }
            }
        }
        let err = DecodedProgram::decode(&binary, &config).unwrap_err();
        assert_eq!(err, SimError::BadRegister { tile: 0, reg: bad });
    }
}
