//! The lock-step execution engine.

use crate::stats::{SimStats, TileStats};
use cmam_arch::CgraConfig;
use cmam_cdfg::Opcode;
use cmam_isa::program::BinTerminator;
use cmam_isa::{CgraBinary, Instr, Operand};
use std::error::Error;
use std::fmt;

/// Simulator knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Number of TCDM banks (bank = word address modulo banks).
    pub mem_banks: usize,
    /// Hard cycle budget; exceeded means a non-terminating kernel.
    pub max_cycles: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            mem_banks: 8,
            max_cycles: 50_000_000,
        }
    }
}

/// Failure during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Memory access outside the data memory.
    OutOfBounds {
        /// Offending word address.
        addr: i64,
        /// Memory size in words.
        size: usize,
    },
    /// Register index outside the tile's RF (corrupt binary).
    BadRegister {
        /// Tile index.
        tile: usize,
        /// Register index.
        reg: u8,
    },
    /// CRF index outside the tile's constants (corrupt binary).
    BadConstant {
        /// Tile index.
        tile: usize,
        /// CRF index.
        idx: u8,
    },
    /// The cycle budget was exhausted.
    MaxCycles(u64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { addr, size } => {
                write!(f, "memory access at word {addr} outside size {size}")
            }
            SimError::BadRegister { tile, reg } => {
                write!(f, "tile {tile} reads unknown register r{reg}")
            }
            SimError::BadConstant { tile, idx } => {
                write!(f, "tile {tile} reads unknown CRF slot c{idx}")
            }
            SimError::MaxCycles(n) => write!(f, "cycle budget of {n} exhausted"),
        }
    }
}

impl Error for SimError {}

/// One expanded schedule slot: the instruction (if any) and whether this
/// cycle performs the context-memory fetch for its word.
#[derive(Debug, Clone)]
struct Slot {
    instr: Option<Instr>,
    fetch: bool,
}

fn expand_with_fetch(words: &[Instr]) -> Vec<Slot> {
    let mut out = Vec::new();
    for w in words {
        match w {
            Instr::Pnop { cycles } => {
                for i in 0..*cycles {
                    out.push(Slot {
                        instr: None,
                        fetch: i == 0,
                    });
                }
            }
            e => out.push(Slot {
                instr: Some(e.clone()),
                fetch: true,
            }),
        }
    }
    out
}

/// Runs `binary` on the CGRA described by `config` over `mem`.
///
/// # Errors
///
/// See [`SimError`]. On error the memory may be partially updated.
pub fn simulate(
    binary: &CgraBinary,
    config: &CgraConfig,
    mem: &mut [i32],
    options: SimOptions,
) -> Result<SimStats, SimError> {
    let geom = config.geometry();
    let ntiles = binary.num_tiles();
    assert_eq!(
        ntiles,
        geom.num_tiles(),
        "binary and configuration disagree on the tile count"
    );

    // Pre-expand every (block, tile) word list once.
    let nblocks = binary.block_lengths.len();
    let mut expanded: Vec<Vec<Vec<Slot>>> = Vec::with_capacity(nblocks);
    for b in 0..nblocks {
        let mut per_tile = Vec::with_capacity(ntiles);
        for t in 0..ntiles {
            let slots = expand_with_fetch(&binary.tiles[t].blocks[b]);
            debug_assert_eq!(slots.len(), binary.block_lengths[b]);
            per_tile.push(slots);
        }
        expanded.push(per_tile);
    }

    let mut rf: Vec<Vec<i32>> = (0..ntiles)
        .map(|i| vec![0; config.tile(cmam_arch::TileId(i)).rf_words])
        .collect();
    let mut stats = SimStats {
        tiles: vec![TileStats::default(); ntiles],
        ..SimStats::default()
    };

    let mut block = binary.entry as usize;
    loop {
        *stats.block_execs.entry(block as u32).or_insert(0) += 1;
        let length = binary.block_lengths[block];
        let mut br_flag = false;

        for cycle in 0..length {
            stats.cycles += 1;
            if stats.cycles > options.max_cycles {
                return Err(SimError::MaxCycles(options.max_cycles));
            }
            // Phase 1: evaluate all tiles against the start-of-cycle state.
            let mut rf_writes: Vec<(usize, u8, i32)> = Vec::new();
            let mut mem_ops: Vec<(usize, Opcode, i64, i32, Option<u8>)> = Vec::new();
            for t in 0..ntiles {
                let slot = &expanded[block][t][cycle];
                let ts = &mut stats.tiles[t];
                if slot.fetch {
                    ts.cm_fetches += 1;
                }
                let Some(instr) = &slot.instr else {
                    ts.idle_cycles += 1;
                    continue;
                };
                ts.active_cycles += 1;
                let Instr::Exec { opcode, dst, srcs } = instr else {
                    unreachable!("pnops were expanded away");
                };
                // Operand fetch.
                let mut args = Vec::with_capacity(srcs.len());
                for s in srcs {
                    let v = match *s {
                        Operand::Crf(i) => {
                            stats.tiles[t].crf_reads += 1;
                            *binary.crf[t]
                                .get(i as usize)
                                .ok_or(SimError::BadConstant { tile: t, idx: i })?
                        }
                        Operand::Reg(r) => {
                            stats.tiles[t].rf_reads += 1;
                            *rf[t]
                                .get(r as usize)
                                .ok_or(SimError::BadRegister { tile: t, reg: r })?
                        }
                        Operand::Neighbor(d, r) => {
                            stats.tiles[t].neighbor_reads += 1;
                            let n = geom.neighbor(cmam_arch::TileId(t), d).0;
                            *rf[n]
                                .get(r as usize)
                                .ok_or(SimError::BadRegister { tile: n, reg: r })?
                        }
                    };
                    args.push(v);
                }
                match opcode {
                    Opcode::Load => {
                        stats.tiles[t].loads += 1;
                        mem_ops.push((t, Opcode::Load, args[0] as i64, 0, *dst));
                    }
                    Opcode::Store => {
                        stats.tiles[t].stores += 1;
                        mem_ops.push((t, Opcode::Store, args[0] as i64, args[1], None));
                    }
                    Opcode::Br => {
                        stats.tiles[t].alu_ops += 1;
                        br_flag = args[0] != 0;
                    }
                    Opcode::Mov => {
                        stats.tiles[t].moves += 1;
                        rf_writes.push((t, dst.expect("mov has a destination"), args[0]));
                    }
                    op => {
                        stats.tiles[t].alu_ops += 1;
                        let r = op.eval(&args);
                        if let Some(d) = dst {
                            rf_writes.push((t, *d, r));
                        }
                    }
                }
            }

            // Phase 2: TCDM accesses with bank-conflict stalls.
            if !mem_ops.is_empty() {
                let mut bank_load = vec![0u64; options.mem_banks.max(1)];
                for &(t, op, addr, val, dst) in &mem_ops {
                    let idx = usize::try_from(addr).ok().filter(|&i| i < mem.len());
                    let Some(i) = idx else {
                        return Err(SimError::OutOfBounds {
                            addr,
                            size: mem.len(),
                        });
                    };
                    bank_load[i % options.mem_banks.max(1)] += 1;
                    match op {
                        Opcode::Load => {
                            rf_writes.push((t, dst.expect("load has a destination"), mem[i]));
                        }
                        Opcode::Store => mem[i] = val,
                        _ => unreachable!(),
                    }
                }
                let stall: u64 = bank_load.iter().map(|&c| c.saturating_sub(1)).sum();
                stats.cycles += stall;
                stats.stall_cycles += stall;
            }

            // Phase 3: commit register writes.
            for (t, r, v) in rf_writes {
                let cell = rf[t]
                    .get_mut(r as usize)
                    .ok_or(SimError::BadRegister { tile: t, reg: r })?;
                *cell = v;
                stats.tiles[t].rf_writes += 1;
            }
        }

        match binary.terminators[block] {
            BinTerminator::Jump(b) => block = b as usize,
            BinTerminator::Branch { taken, fallthrough } => {
                block = if br_flag { taken } else { fallthrough } as usize;
            }
            BinTerminator::Return => break,
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmam_arch::TileId;
    use cmam_cdfg::{interp, CdfgBuilder, Opcode};
    use cmam_core::{Mapper, MapperOptions};
    use cmam_isa::assemble;

    /// Maps, assembles and simulates `cdfg`, returning (stats, memory).
    fn run_end_to_end(
        cdfg: &cmam_cdfg::Cdfg,
        config: &CgraConfig,
        mem_init: &[i32],
    ) -> (SimStats, Vec<i32>) {
        let mapper = Mapper::new(MapperOptions::basic());
        let result = mapper.map(cdfg, config).expect("mapping");
        let (binary, _) = assemble(cdfg, &result.mapping, config).expect("assembly");
        let mut mem = mem_init.to_vec();
        let stats = simulate(&binary, config, &mut mem, SimOptions::default()).expect("sim");
        (stats, mem)
    }

    fn sum_squares_cdfg(n: i32, out: i32) -> cmam_cdfg::Cdfg {
        let mut b = CdfgBuilder::new("ssq");
        let b0 = b.block("entry");
        let b1 = b.block("body");
        let b2 = b.block("exit");
        let i = b.symbol("i");
        let acc = b.symbol("acc");
        b.select(b0);
        b.mov_const_to_symbol(0, i);
        b.mov_const_to_symbol(0, acc);
        b.jump(b1);
        b.select(b1);
        let iv = b.use_symbol(i);
        let av = b.use_symbol(acc);
        let x = b.load_name(iv, "x");
        let sq = b.op(Opcode::Mul, &[x, x]);
        let a2 = b.op(Opcode::Add, &[av, sq]);
        b.write_symbol(a2, acc);
        let one = b.constant(1);
        let i2 = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(i2, i);
        let nv = b.constant(n);
        let c = b.op(Opcode::Lt, &[i2, nv]);
        b.branch(c, b1, b2);
        b.select(b2);
        let av2 = b.use_symbol(acc);
        let o = b.constant(out);
        b.store(o, av2, "out");
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn simulated_loop_matches_interpreter() {
        let cdfg = sum_squares_cdfg(8, 100);
        let config = CgraConfig::hom64();
        let mut init = vec![0i32; 128];
        for i in 0..8 {
            init[i] = (i as i32) + 1;
        }
        let (stats, mem) = run_end_to_end(&cdfg, &config, &init);
        let mut golden = init.clone();
        interp::run(&cdfg, &mut golden, 1_000_000).unwrap();
        assert_eq!(mem, golden, "simulated memory differs from golden");
        assert_eq!(mem[100], (1..=8).map(|x: i32| x * x).sum::<i32>());
        // The loop body ran 8 times.
        assert_eq!(stats.block_execs[&1], 8);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn stats_account_every_cycle() {
        let cdfg = sum_squares_cdfg(4, 64);
        let config = CgraConfig::hom64();
        let init = vec![1i32; 80];
        let (stats, _) = run_end_to_end(&cdfg, &config, &init);
        // Per tile: active + idle == total non-stall cycles.
        let busy_cycles = stats.cycles - stats.stall_cycles;
        for (i, t) in stats.tiles.iter().enumerate() {
            assert_eq!(
                t.active_cycles + t.idle_cycles,
                busy_cycles,
                "tile {i} cycle accounting"
            );
        }
        // Fetches are bounded by active cycles + idle runs.
        for t in &stats.tiles {
            assert!(t.cm_fetches <= t.active_cycles + t.idle_cycles);
            assert!(t.cm_fetches >= t.active_cycles);
        }
    }

    #[test]
    fn bank_conflicts_stall() {
        // Two loads to the same bank in one cycle. Build by hand: two
        // parallel loads of address 0 and 8 (same bank with 8 banks).
        let mut b = CdfgBuilder::new("conflict");
        let bb = b.block("b");
        b.select(bb);
        let a0 = b.constant(0);
        let a8 = b.constant(8);
        let x = b.load_name(a0, "x");
        let y = b.load_name(a8, "x");
        let s = b.op(Opcode::Add, &[x, y]);
        let out = b.constant(1);
        b.store(out, s, "y");
        b.ret();
        let cdfg = b.finish().unwrap();
        let config = CgraConfig::hom64();

        // Hand placement: loads on tiles 0 and 1 at cycle 0.
        use cmam_isa::{BlockMapping, KernelMapping, OperandSource, PlacedOp};
        let ids = cdfg.dfg(bb).op_ids().to_vec();
        let vx = cdfg.op(ids[0]).result.unwrap();
        let vy = cdfg.op(ids[1]).result.unwrap();
        let vs = cdfg.op(ids[2]).result.unwrap();
        let mapping = KernelMapping {
            blocks: vec![BlockMapping {
                length: 3,
                ops: vec![
                    PlacedOp {
                        op: ids[0],
                        tile: TileId(0),
                        cycle: 0,
                        operands: vec![OperandSource::Const(0)],
                        direct_symbol_write: false,
                    },
                    PlacedOp {
                        op: ids[1],
                        tile: TileId(1),
                        cycle: 0,
                        operands: vec![OperandSource::Const(8)],
                        direct_symbol_write: false,
                    },
                    PlacedOp {
                        op: ids[2],
                        tile: TileId(0),
                        cycle: 1,
                        operands: vec![
                            OperandSource::Rf {
                                tile: TileId(0),
                                value: vx,
                            },
                            OperandSource::Rf {
                                tile: TileId(1),
                                value: vy,
                            },
                        ],
                        direct_symbol_write: false,
                    },
                    PlacedOp {
                        op: ids[3],
                        tile: TileId(0),
                        cycle: 2,
                        operands: vec![
                            OperandSource::Const(1),
                            OperandSource::Rf {
                                tile: TileId(0),
                                value: vs,
                            },
                        ],
                        direct_symbol_write: false,
                    },
                ],
                moves: vec![],
            }],
            symbol_homes: Default::default(),
        };
        let (binary, _) = assemble(&cdfg, &mapping, &config).unwrap();
        let mut mem = vec![7i32; 16];
        let stats = simulate(&binary, &config, &mut mem, SimOptions::default()).unwrap();
        // Both loads hit bank 0 in cycle 0: one stall cycle.
        assert_eq!(stats.stall_cycles, 1);
        assert_eq!(mem[1], 14);
        // With 16 banks there is no conflict.
        let mut mem2 = vec![7i32; 16];
        let stats2 = simulate(
            &binary,
            &config,
            &mut mem2,
            SimOptions {
                mem_banks: 16,
                max_cycles: 1000,
            },
        )
        .unwrap();
        assert_eq!(stats2.stall_cycles, 0);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut b = CdfgBuilder::new("oob");
        let _ = b.block("b");
        let a = b.constant(500);
        let x = b.load_name(a, "x");
        let o = b.constant(0);
        b.store(o, x, "x");
        b.ret();
        let cdfg = b.finish().unwrap();
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(MapperOptions::basic());
        let r = mapper.map(&cdfg, &config).unwrap();
        let (binary, _) = assemble(&cdfg, &r.mapping, &config).unwrap();
        let mut mem = vec![0i32; 16];
        let err = simulate(&binary, &config, &mut mem, SimOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { addr: 500, .. }));
    }
}
