//! The pre-optimization simulator, kept as the executable specification.
//!
//! This is the naive interpretation of a [`CgraBinary`]: every call
//! re-expands the pnop-compressed word lists, and the cycle loop
//! allocates its operand/write/memory-op buffers per simulated cycle.
//! It is deliberately left untouched by the performance work in
//! [`crate::decode`] so that:
//!
//! * the property tests can assert the decoded fast path agrees with a
//!   straightforward reading of the ISA on arbitrary binaries, and
//! * `bench_sim` can measure the decoded simulator's speedup against the
//!   original implementation on every run instead of trusting a stale
//!   baseline number.
//!
//! Only [`SimOptions::normalized`] is shared with the fast path, so the
//! `mem_banks == 0` convention lives in exactly one place.

use crate::machine::{SimError, SimOptions};
use crate::stats::{SimStats, TileStats};
use cmam_arch::CgraConfig;
use cmam_cdfg::Opcode;
use cmam_isa::program::BinTerminator;
use cmam_isa::{CgraBinary, Instr, Operand};

/// One expanded schedule slot: the instruction (if any) and whether this
/// cycle performs the context-memory fetch for its word.
#[derive(Debug, Clone)]
struct Slot {
    instr: Option<Instr>,
    fetch: bool,
}

fn expand_with_fetch(words: &[Instr]) -> Vec<Slot> {
    let mut out = Vec::new();
    for w in words {
        match w {
            Instr::Pnop { cycles } => {
                for i in 0..*cycles {
                    out.push(Slot {
                        instr: None,
                        fetch: i == 0,
                    });
                }
            }
            e => out.push(Slot {
                instr: Some(e.clone()),
                fetch: true,
            }),
        }
    }
    out
}

/// Runs `binary` on the CGRA described by `config` over `mem` with the
/// reference interpretation. Same contract as [`crate::simulate`]; the
/// two must agree bit-for-bit on every valid binary.
///
/// # Errors
///
/// See [`SimError`]. On error the memory may be partially updated.
pub fn simulate_reference(
    binary: &CgraBinary,
    config: &CgraConfig,
    mem: &mut [i32],
    options: SimOptions,
) -> Result<SimStats, SimError> {
    let options = options.normalized();
    let geom = config.geometry();
    let ntiles = binary.num_tiles();
    assert_eq!(
        ntiles,
        geom.num_tiles(),
        "binary and configuration disagree on the tile count"
    );

    // Pre-expand every (block, tile) word list once.
    let nblocks = binary.block_lengths.len();
    let mut expanded: Vec<Vec<Vec<Slot>>> = Vec::with_capacity(nblocks);
    for b in 0..nblocks {
        let mut per_tile = Vec::with_capacity(ntiles);
        for t in 0..ntiles {
            let slots = expand_with_fetch(&binary.tiles[t].blocks[b]);
            debug_assert_eq!(slots.len(), binary.block_lengths[b]);
            per_tile.push(slots);
        }
        expanded.push(per_tile);
    }

    let mut rf: Vec<Vec<i32>> = (0..ntiles)
        .map(|i| vec![0; config.tile(cmam_arch::TileId(i)).rf_words])
        .collect();
    let mut stats = SimStats {
        block_execs: vec![0; nblocks],
        tiles: vec![TileStats::default(); ntiles],
        ..SimStats::default()
    };

    let mut block = binary.entry as usize;
    loop {
        stats.block_execs[block] += 1;
        let length = binary.block_lengths[block];
        let mut br_flag = false;

        for cycle in 0..length {
            stats.cycles += 1;
            if stats.cycles > options.max_cycles {
                return Err(SimError::MaxCycles(options.max_cycles));
            }
            // Phase 1: evaluate all tiles against the start-of-cycle state.
            let mut rf_writes: Vec<(usize, u8, i32)> = Vec::new();
            let mut mem_ops: Vec<(usize, Opcode, i64, i32, Option<u8>)> = Vec::new();
            for t in 0..ntiles {
                let slot = &expanded[block][t][cycle];
                let ts = &mut stats.tiles[t];
                if slot.fetch {
                    ts.cm_fetches += 1;
                }
                let Some(instr) = &slot.instr else {
                    ts.idle_cycles += 1;
                    continue;
                };
                ts.active_cycles += 1;
                let Instr::Exec { opcode, dst, srcs } = instr else {
                    unreachable!("pnops were expanded away");
                };
                // Operand fetch.
                let mut args = Vec::with_capacity(srcs.len());
                for s in srcs {
                    let v = match *s {
                        Operand::Crf(i) => {
                            stats.tiles[t].crf_reads += 1;
                            *binary.crf[t]
                                .get(i as usize)
                                .ok_or(SimError::BadConstant { tile: t, idx: i })?
                        }
                        Operand::Reg(r) => {
                            stats.tiles[t].rf_reads += 1;
                            *rf[t]
                                .get(r as usize)
                                .ok_or(SimError::BadRegister { tile: t, reg: r })?
                        }
                        Operand::Neighbor(d, r) => {
                            stats.tiles[t].neighbor_reads += 1;
                            let n = geom.neighbor(cmam_arch::TileId(t), d).0;
                            *rf[n]
                                .get(r as usize)
                                .ok_or(SimError::BadRegister { tile: n, reg: r })?
                        }
                    };
                    args.push(v);
                }
                match opcode {
                    Opcode::Load => {
                        stats.tiles[t].loads += 1;
                        mem_ops.push((t, Opcode::Load, args[0] as i64, 0, *dst));
                    }
                    Opcode::Store => {
                        stats.tiles[t].stores += 1;
                        mem_ops.push((t, Opcode::Store, args[0] as i64, args[1], None));
                    }
                    Opcode::Br => {
                        stats.tiles[t].alu_ops += 1;
                        br_flag = args[0] != 0;
                    }
                    Opcode::Mov => {
                        stats.tiles[t].moves += 1;
                        rf_writes.push((t, dst.expect("mov has a destination"), args[0]));
                    }
                    op => {
                        stats.tiles[t].alu_ops += 1;
                        let r = op.eval(&args);
                        if let Some(d) = dst {
                            rf_writes.push((t, *d, r));
                        }
                    }
                }
            }

            // Phase 2: TCDM accesses with bank-conflict stalls.
            if !mem_ops.is_empty() {
                let mut bank_load = vec![0u64; options.mem_banks];
                for &(t, op, addr, val, dst) in &mem_ops {
                    let idx = usize::try_from(addr).ok().filter(|&i| i < mem.len());
                    let Some(i) = idx else {
                        return Err(SimError::OutOfBounds {
                            addr,
                            size: mem.len(),
                        });
                    };
                    bank_load[i % options.mem_banks] += 1;
                    match op {
                        Opcode::Load => {
                            rf_writes.push((t, dst.expect("load has a destination"), mem[i]));
                        }
                        Opcode::Store => mem[i] = val,
                        _ => unreachable!(),
                    }
                }
                let stall: u64 = bank_load.iter().map(|&c| c.saturating_sub(1)).sum();
                stats.cycles += stall;
                stats.stall_cycles += stall;
            }

            // Phase 3: commit register writes.
            for (t, r, v) in rf_writes {
                let cell = rf[t]
                    .get_mut(r as usize)
                    .ok_or(SimError::BadRegister { tile: t, reg: r })?;
                *cell = v;
                stats.tiles[t].rf_writes += 1;
            }
        }

        match binary.terminators[block] {
            BinTerminator::Jump(b) => block = b as usize,
            BinTerminator::Branch { taken, fallthrough } => {
                block = if br_flag { taken } else { fallthrough } as usize;
            }
            BinTerminator::Return => break,
        }
    }
    Ok(stats)
}
