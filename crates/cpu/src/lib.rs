//! # cmam-cpu — or1k-like scalar CPU baseline
//!
//! The paper compares the CGRA against an or1k CPU running the kernels
//! compiled with `-O3` (Fig 10, Table II). This crate provides the
//! equivalent baseline: an in-order scalar RISC cost model driven by the
//! exact dynamic execution trace of the kernel (the reference
//! interpreter's statistics), so CPU and CGRA execute *identical*
//! workloads.
//!
//! The model charges per-instruction cycle costs typical of a small
//! in-order core without branch prediction or a data cache (single-issue,
//! 3-cycle loads over the system bus, 4-cycle multiplier, 3-cycle taken
//! branches) plus one jump instruction per
//! executed block that falls through (`-O3` keeps loop bodies tight but
//! still pays the loop back-edge). Activity counters (instruction
//! fetches, register-file traffic, data-memory accesses) feed the energy
//! model in `cmam-energy`.

use cmam_cdfg::{interp, Cdfg, InterpError, InterpStats, Opcode, Terminator};

/// Per-opcode-class cycle costs of the scalar core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCosts {
    /// Simple ALU ops, moves, compares, selects.
    pub alu: u64,
    /// Multiplication.
    pub mul: u64,
    /// Word load from the data scratchpad.
    pub load: u64,
    /// Word store.
    pub store: u64,
    /// Conditional branch (averaged taken/not-taken penalty).
    pub branch: u64,
    /// Unconditional jump (block fallthrough).
    pub jump: u64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            alu: 1,
            mul: 4,
            load: 3,
            store: 2,
            branch: 3,
            jump: 2,
        }
    }
}

/// Dynamic execution profile of one kernel on the scalar core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic instruction count (ops + jumps).
    pub instructions: u64,
    /// Instruction-memory / I-cache fetches (one per instruction).
    pub imem_reads: u64,
    /// Data-memory accesses (loads + stores).
    pub dmem_accesses: u64,
    /// Register-file reads (approximately two per instruction).
    pub rf_reads: u64,
    /// Register-file writes (approximately one per result-producing op).
    pub rf_writes: u64,
    /// Dynamic multiplications (for energy weighting).
    pub muls: u64,
}

/// The CPU baseline: costs plus the `run` entry point.
#[derive(Debug, Clone, Default)]
pub struct CpuModel {
    costs: CpuCosts,
}

impl CpuModel {
    /// Model with the given cost table.
    pub fn new(costs: CpuCosts) -> Self {
        CpuModel { costs }
    }

    /// The cost table in use.
    pub fn costs(&self) -> &CpuCosts {
        &self.costs
    }

    /// Executes `cdfg` over `mem` on the scalar model.
    ///
    /// Returns both the CPU profile and the raw interpreter statistics.
    ///
    /// # Errors
    ///
    /// Propagates the interpreter's [`InterpError`] (bad memory access or
    /// step-limit exhaustion).
    pub fn run(
        &self,
        cdfg: &Cdfg,
        mem: &mut [i32],
        max_ops: u64,
    ) -> Result<(CpuStats, InterpStats), InterpError> {
        let interp_stats = interp::run(cdfg, mem, max_ops)?;
        Ok((self.profile(cdfg, &interp_stats), interp_stats))
    }

    /// Computes the CPU profile from a dynamic execution trace.
    pub fn profile(&self, cdfg: &Cdfg, interp_stats: &InterpStats) -> CpuStats {
        let c = &self.costs;
        let mut s = CpuStats::default();
        for (&op, &n) in &interp_stats.op_counts {
            s.instructions += n;
            s.imem_reads += n;
            let (cyc, reads, writes) = match op {
                Opcode::Mul => {
                    s.muls += n;
                    (c.mul, 2, 1)
                }
                Opcode::Load => {
                    s.dmem_accesses += n;
                    (c.load, 1, 1)
                }
                Opcode::Store => {
                    s.dmem_accesses += n;
                    (c.store, 2, 0)
                }
                Opcode::Br => (c.branch, 1, 0),
                Opcode::Mov | Opcode::Abs => (c.alu, 1, 1),
                _ => (c.alu, 2, 1),
            };
            s.cycles += cyc * n;
            s.rf_reads += reads * n;
            s.rf_writes += writes * n;
        }
        // One jump per executed block that ends in an unconditional jump.
        for (&bid, &execs) in &interp_stats.block_counts {
            let bb = cdfg.block(bid);
            if matches!(bb.terminator, Some(Terminator::Jump(_))) {
                s.instructions += execs;
                s.imem_reads += execs;
                s.cycles += c.jump * execs;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmam_cdfg::CdfgBuilder;

    fn small_loop() -> Cdfg {
        let mut b = CdfgBuilder::new("loop");
        let b0 = b.block("entry");
        let b1 = b.block("body");
        let b2 = b.block("exit");
        let i = b.symbol("i");
        b.select(b0);
        b.mov_const_to_symbol(0, i);
        b.jump(b1);
        b.select(b1);
        let iv = b.use_symbol(i);
        let x = b.load_name(iv, "x");
        let sq = b.op(Opcode::Mul, &[x, x]);
        let ten = b.constant(10);
        let addr = b.op(Opcode::Add, &[iv, ten]);
        b.store(addr, sq, "y");
        let one = b.constant(1);
        let i2 = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(i2, i);
        let n = b.constant(4);
        let cnd = b.op(Opcode::Lt, &[i2, n]);
        b.branch(cnd, b1, b2);
        b.select(b2);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn cycle_accounting_matches_hand_count() {
        let cdfg = small_loop();
        let model = CpuModel::default();
        let mut mem = vec![1i32; 32];
        let (s, interp_stats) = model.run(&cdfg, &mut mem, 100_000).unwrap();
        // Body (4 iterations): load(3) + mul(4) + add(1) + store(2) +
        // add(1) + lt(1) + br(3) = 15 cycles. Entry: mov(1) + jump(2).
        assert_eq!(interp_stats.block_counts[&cmam_cdfg::BlockId(1)], 4);
        assert_eq!(s.cycles, 4 * 15 + 3);
        // Instructions: body 7 x 4 + entry mov + entry jump.
        assert_eq!(s.instructions, 30);
        assert_eq!(s.dmem_accesses, 8);
        assert_eq!(s.muls, 4);
    }

    #[test]
    fn profile_is_deterministic() {
        let cdfg = small_loop();
        let model = CpuModel::default();
        let mut m1 = vec![1i32; 32];
        let mut m2 = vec![1i32; 32];
        let (a, _) = model.run(&cdfg, &mut m1, 100_000).unwrap();
        let (b, _) = model.run(&cdfg, &mut m2, 100_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn custom_costs_scale_cycles() {
        let cdfg = small_loop();
        let slow = CpuModel::new(CpuCosts {
            alu: 2,
            mul: 8,
            load: 6,
            store: 4,
            branch: 6,
            jump: 4,
        });
        let fast = CpuModel::default();
        let mut m1 = vec![1i32; 32];
        let mut m2 = vec![1i32; 32];
        let (a, _) = slow.run(&cdfg, &mut m1, 100_000).unwrap();
        let (b, _) = fast.run(&cdfg, &mut m2, 100_000).unwrap();
        assert_eq!(a.cycles, 2 * b.cycles);
    }
}
