//! Round trip: record nested spans on several threads, export the
//! Chrome-trace JSON, parse it back with [`cmam_obs::json`] and check it
//! against [`cmam_obs::validate_chrome_trace`] — the exact pipeline
//! `profile_flow` and the CI trace check run in production.

use cmam_obs::json::{self, Value};
use cmam_obs::span;

/// Records a small, deterministic span tree on the calling thread.
fn record_tree(depth_marker: u64) {
    let _outer = span!("outer", marker = depth_marker);
    for i in 0..3u64 {
        let _mid = span!("mid", index = i);
        let _inner = span!("inner");
    }
}

#[test]
fn export_parses_validates_and_preserves_structure() {
    cmam_obs::enable_tracing();
    cmam_obs::reset_trace();
    cmam_obs::set_thread_label("roundtrip-main");
    record_tree(7);
    let worker = std::thread::spawn(|| {
        cmam_obs::set_thread_label("roundtrip-worker");
        record_tree(8);
    });
    worker.join().expect("worker thread");

    let text = cmam_obs::chrome_trace_json();

    // The validator accepts its own exporter's output.
    let n = cmam_obs::validate_chrome_trace(&text).expect("own export validates");
    // 2 threads x (1 outer + 3 mid + 3 inner) spans, plus metadata.
    assert!(n >= 14, "expected at least 14 events, validator saw {n}");

    // Parse back and check the pieces the validator doesn't pin.
    let doc = json::parse(&text).expect("export parses");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents");

    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(
        thread_names.contains(&"roundtrip-main"),
        "main thread label missing: {thread_names:?}"
    );
    assert!(
        thread_names.contains(&"roundtrip-worker"),
        "worker thread label missing: {thread_names:?}"
    );

    let spans: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect();
    assert_eq!(spans.len(), 14, "2 threads x 7 spans");

    // Arguments survive the trip with their values.
    let outer_markers: Vec<f64> = spans
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("outer"))
        .filter_map(|e| e.get("args")?.get("marker")?.as_f64())
        .collect();
    let mut sorted = outer_markers.clone();
    sorted.sort_by(f64::total_cmp);
    assert_eq!(sorted, vec![7.0, 8.0], "outer span args: {outer_markers:?}");

    // Each thread's outer span must contain all six of its children —
    // re-derive the containment the validator checks, but strictly for
    // the known shape: per tid, the longest span is `outer`.
    for tid_name in ["roundtrip-main", "roundtrip-worker"] {
        let tid = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .find(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    == Some(tid_name)
            })
            .and_then(|e| e.get("tid"))
            .and_then(Value::as_f64)
            .expect("labelled thread has a tid");
        let mine: Vec<&&Value> = spans
            .iter()
            .filter(|e| e.get("tid").and_then(Value::as_f64) == Some(tid))
            .collect();
        assert_eq!(mine.len(), 7, "{tid_name}: 7 spans");
        let outer = mine
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("outer"))
            .expect("outer span present");
        let start = outer.get("ts").and_then(Value::as_f64).expect("ts");
        let end = start + outer.get("dur").and_then(Value::as_f64).expect("dur");
        for child in mine.iter().filter(|e| !std::ptr::eq(***e, **outer)) {
            let cts = child.get("ts").and_then(Value::as_f64).expect("child ts");
            let cdur = child.get("dur").and_then(Value::as_f64).expect("child dur");
            assert!(
                cts >= start - 1e-6 && cts + cdur <= end + 1e-6,
                "{tid_name}: child span escapes its outer span"
            );
        }
    }
}

#[test]
fn disabled_spans_record_nothing() {
    // This test must not race the roundtrip test's recording: spawn a
    // dedicated thread, whose thread-local buffer we can observe... but
    // the recorder is process-global, so instead check the cheap
    // invariant only: a disabled guard is inert and droppable.
    let guard = cmam_obs::SpanGuard::disabled();
    drop(guard);
}
