//! Span recording and Chrome-trace export.
//!
//! ## Recorder design
//!
//! Every thread that records a span owns one `ThreadBuf`: a bounded
//! ring of events plus a display label, registered once in a global
//! list. Recording locks only the owner's own buffer — never a shared
//! structure — so steady-state recording is contention-free; the only
//! writer that ever takes someone else's lock is the exporter, which
//! runs after the measured work. The ring is bounded (default 65536
//! events per thread, `CMAM_TRACE_BUF` overrides), overwriting the
//! oldest events and counting the overwritten ones, so tracing a huge
//! sweep can never exhaust memory.
//!
//! ## Export format
//!
//! [`chrome_trace_json`] renders the JSON Array Format that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: one `"ph": "X"` *complete* event per span (`ts`/`dur` in
//! microseconds, nanosecond resolution preserved as decimals) plus
//! `"ph": "M"` metadata naming the process and each thread. Span
//! hierarchy needs no explicit parent links — the viewers nest complete
//! events on the same thread track by time containment, which the
//! recorder guarantees by construction (a child guard drops before its
//! parent). [`validate_chrome_trace`] re-parses a document and checks
//! exactly that schema, including the nesting invariant.

use std::cell::OnceCell;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum `name = value` pairs one span can carry (fixed so recording
/// never allocates).
pub const MAX_SPAN_ARGS: usize = 4;

/// Inline argument storage of one span.
#[derive(Debug, Clone, Copy, Default)]
struct ArgBuf {
    kv: [(&'static str, u64); MAX_SPAN_ARGS],
    len: u8,
}

impl ArgBuf {
    fn from_slice(args: &[(&'static str, u64)]) -> Self {
        let mut buf = ArgBuf {
            kv: [("", 0); MAX_SPAN_ARGS],
            len: args.len().min(MAX_SPAN_ARGS) as u8,
        };
        buf.kv[..buf.len as usize].copy_from_slice(&args[..buf.len as usize]);
        buf
    }

    fn pairs(&self) -> &[(&'static str, u64)] {
        &self.kv[..self.len as usize]
    }
}

/// One closed span, timestamped relative to the process trace epoch.
#[derive(Debug, Clone, Copy)]
struct Event {
    name: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    args: ArgBuf,
}

/// Bounded event ring: overwrites the oldest events once full.
#[derive(Debug)]
struct Ring {
    cap: usize,
    buf: Vec<Event>,
    /// Events ever pushed; `total % cap` is the next overwrite slot.
    total: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            cap: cap.max(16),
            buf: Vec::new(),
            total: 0,
        }
    }

    fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            let slot = (self.total % self.cap as u64) as usize;
            self.buf[slot] = ev;
        }
        self.total += 1;
    }

    /// Events in recording order (oldest surviving first).
    fn in_order(&self) -> Vec<Event> {
        if self.total <= self.cap as u64 {
            self.buf.clone()
        } else {
            let split = (self.total % self.cap as u64) as usize;
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[split..]);
            out.extend_from_slice(&self.buf[..split]);
            out
        }
    }

    fn dropped(&self) -> u64 {
        self.total.saturating_sub(self.buf.len() as u64)
    }
}

/// One thread's recorder: only the owning thread pushes events; the
/// exporter (and `reset`) are the only other lockers.
#[derive(Debug)]
struct ThreadBuf {
    tid: u32,
    label: Mutex<String>,
    events: Mutex<Ring>,
}

/// Global recorder state: the trace epoch and the registered threads.
struct Recorder {
    epoch: Instant,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    cap: usize,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        threads: Mutex::new(Vec::new()),
        cap: std::env::var("CMAM_TRACE_BUF")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1 << 16),
    })
}

thread_local! {
    static LOCAL: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
}

/// The current thread's buffer, registering it on first use. The label
/// defaults to the OS thread name (`main`, `cmam-pool-3`, test names) or
/// `thread-<tid>`.
fn local_buf() -> Arc<ThreadBuf> {
    LOCAL.with(|cell| {
        Arc::clone(cell.get_or_init(|| {
            let rec = recorder();
            let mut threads = rec.threads.lock().expect("trace registry poisoned");
            let tid = threads.len() as u32 + 1;
            let label = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(ThreadBuf {
                tid,
                label: Mutex::new(label),
                events: Mutex::new(Ring::new(rec.cap)),
            });
            threads.push(Arc::clone(&buf));
            buf
        }))
    })
}

/// Renames the current thread's trace track (the pool workers call this
/// with their worker id so a trace shows `cmam-pool-N` lanes).
pub fn set_thread_label(label: &str) {
    let buf = local_buf();
    *buf.label.lock().expect("trace label poisoned") = label.to_owned();
}

/// Total events ever recorded, across all threads (tests/diagnostics).
pub fn events_recorded() -> u64 {
    let threads = recorder().threads.lock().expect("trace registry poisoned");
    threads
        .iter()
        .map(|t| t.events.lock().expect("trace ring poisoned").total)
        .sum()
}

/// Clears every thread's recorded events (labels and registrations
/// survive). Tests use this for isolation; production code never needs
/// it.
pub fn reset_trace() {
    let threads = recorder().threads.lock().expect("trace registry poisoned");
    for t in threads.iter() {
        let mut ring = t.events.lock().expect("trace ring poisoned");
        ring.buf.clear();
        ring.total = 0;
    }
}

/// An open span; the span closes (and the event is recorded) when the
/// guard drops. Construct through the [`span!`](crate::span) macro.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    name: &'static str,
    args: ArgBuf,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span now. Called by [`span!`](crate::span) only after the
    /// enabled check passed.
    pub fn enter(name: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
        // Touch the recorder first so the epoch exists before the start
        // timestamp is taken.
        let _ = recorder();
        SpanGuard(Some(ActiveSpan {
            name,
            args: ArgBuf::from_slice(args),
            start: Instant::now(),
        }))
    }

    /// The inert guard the disabled path returns: no clock read, no
    /// allocation, nothing on drop.
    pub fn disabled() -> SpanGuard {
        SpanGuard(None)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let dur_ns = active.start.elapsed().as_nanos() as u64;
            let ts_ns = active.start.duration_since(recorder().epoch).as_nanos() as u64;
            let buf = local_buf();
            buf.events.lock().expect("trace ring poisoned").push(Event {
                name: active.name,
                ts_ns,
                dur_ns,
                args: active.args,
            });
        }
    }
}

/// Nanoseconds rendered as Chrome-trace microseconds (`ts` unit) with
/// the nanosecond fraction preserved.
fn ns_as_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders everything recorded so far as a Chrome-trace JSON document
/// (the buffers are left intact). Loadable in `chrome://tracing` and
/// Perfetto; parseable back with [`crate::json::parse`].
pub fn chrome_trace_json() -> String {
    let snapshot: Vec<(u32, String, u64, Vec<Event>)> = {
        let threads = recorder().threads.lock().expect("trace registry poisoned");
        threads
            .iter()
            .map(|t| {
                let ring = t.events.lock().expect("trace ring poisoned");
                (
                    t.tid,
                    t.label.lock().expect("trace label poisoned").clone(),
                    ring.dropped(),
                    ring.in_order(),
                )
            })
            .collect()
    };
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"cmam\"}}",
    );
    for (tid, label, dropped, _) in &snapshot {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\",\"dropped\":{dropped}}}}}",
            json_escape(label)
        ));
    }
    // All spans, globally ordered by start time (longer spans first on
    // ties, so parents precede children).
    let mut all: Vec<(u32, Event)> = Vec::new();
    for (tid, _, _, events) in &snapshot {
        all.extend(events.iter().map(|e| (*tid, *e)));
    }
    all.sort_by_key(|(tid, e)| (e.ts_ns, std::cmp::Reverse(e.dur_ns), *tid));
    for (tid, e) in &all {
        out.push_str(&format!(
            ",\n{{\"name\":\"{}\",\"cat\":\"cmam\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{},\"dur\":{}",
            json_escape(e.name),
            ns_as_us(e.ts_ns),
            ns_as_us(e.dur_ns),
        ));
        if e.args.len > 0 {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.pairs().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{v}", json_escape(k)));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// Validates a Chrome-trace document against the schema this crate
/// emits: a `traceEvents` array of `"ph": "X"` complete events (with
/// `name`, `pid`, `tid`, non-negative `ts`/`dur`) and `"ph": "M"`
/// metadata (named `process_name`/`thread_name`, with `args.name`), and
/// — the property the viewers' nesting depends on — spans on one thread
/// must strictly nest, never partially overlap. Returns the number of
/// complete events.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    use crate::json::{parse, Value};
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut spans_per_tid: std::collections::BTreeMap<i64, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    let mut xcount = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as i64;
        ev.get("pid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        match ph {
            "M" => {
                if name != "process_name" && name != "thread_name" {
                    return Err(format!("event {i}: unknown metadata {name:?}"));
                }
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: metadata without args.name"))?;
            }
            "X" => {
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}): missing dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i} ({name}): negative ts/dur"));
                }
                spans_per_tid.entry(tid).or_default().push((ts, ts + dur));
                xcount += 1;
            }
            other => return Err(format!("event {i} ({name}): unsupported ph {other:?}")),
        }
    }
    // Same-thread spans must nest by containment.
    const EPS: f64 = 1e-6;
    for (tid, spans) in &mut spans_per_tid {
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<f64> = Vec::new();
        for &(start, end) in spans.iter() {
            while stack.last().is_some_and(|&top| top <= start + EPS) {
                stack.pop();
            }
            if let Some(&top) = stack.last() {
                if end > top + EPS {
                    return Err(format!(
                        "tid {tid}: span [{start}, {end}] partially overlaps \
                         an enclosing span ending at {top}"
                    ));
                }
            }
            stack.push(end);
        }
    }
    Ok(xcount)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut r = Ring::new(16);
        for i in 0..40u64 {
            r.push(Event {
                name: "e",
                ts_ns: i,
                dur_ns: 0,
                args: ArgBuf::default(),
            });
        }
        let ordered = r.in_order();
        assert_eq!(ordered.len(), 16);
        assert_eq!(ordered.first().map(|e| e.ts_ns), Some(24));
        assert_eq!(ordered.last().map(|e| e.ts_ns), Some(39));
        assert_eq!(r.dropped(), 24);
    }

    #[test]
    fn ns_formatting_preserves_nanoseconds() {
        assert_eq!(ns_as_us(0), "0.000");
        assert_eq!(ns_as_us(1), "0.001");
        assert_eq!(ns_as_us(1500), "1.500");
        assert_eq!(ns_as_us(12_345_678), "12345.678");
    }

    #[test]
    fn validator_rejects_partial_overlap() {
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":10},
            {"name":"b","ph":"X","pid":1,"tid":1,"ts":5,"dur":10}
        ]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        let good = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":10},
            {"name":"b","ph":"X","pid":1,"tid":1,"ts":2,"dur":3},
            {"name":"c","ph":"X","pid":1,"tid":1,"ts":6,"dur":4},
            {"name":"d","ph":"X","pid":1,"tid":2,"ts":5,"dur":10}
        ]}"#;
        assert_eq!(validate_chrome_trace(good), Ok(4));
    }

    #[test]
    fn validator_checks_metadata_shape() {
        let bad = r#"{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
    }
}
