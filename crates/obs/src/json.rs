//! A minimal JSON reader — just big enough to round-trip the documents
//! this workspace emits (Chrome traces, `METRICS` blocks, the
//! benchmark reports) without pulling a JSON dependency into the
//! offline build. Moved here from `cmam_bench::mapper_bench` so the
//! trace validator and the bench tooling share one parser;
//! `cmam_bench` re-exports it under its old path.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad codepoint")?);
                        *pos += 4;
                    }
                    Some(&c) => out.push(c as char),
                    None => return Err("unterminated escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{parse, Value};

    #[test]
    fn mini_json_parser_handles_the_grammar() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
        let v = parse("{\"a\": [1, {\"b\": \"c\"}]}").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_arr).map(|a| a.len()), Some(2));
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }
}
