//! # cmam-obs — zero-overhead tracing, metrics, and the warning hook
//!
//! Every other crate of the toolchain can afford to depend on this one:
//! it depends on nothing, and its instrumentation is **zero-cost when
//! disabled** — a [`span!`] site compiles to a single relaxed atomic
//! load (no timestamp is taken, nothing is allocated, no lock is
//! touched) and the metrics counters are only ever bumped at phase
//! boundaries (once per `map()`, once per batch, once per simulation),
//! never inside a hot loop. The golden suites pass with tracing on or
//! off, byte-identical: timestamps exist only in the recorder and never
//! feed a fingerprint or an artifact.
//!
//! Three facilities:
//!
//! * **Tracing spans** ([`span!`], [`trace`]) — hierarchical wall-clock
//!   spans recorded into per-thread ring buffers and exported as Chrome
//!   `chrome://tracing` / Perfetto JSON. Threads are identified by
//!   registration order and labeled (the [`cmam_pool`] workers label
//!   themselves `cmam-pool-N`), so a trace shows the engine's job-level
//!   parallelism and the mapper's beam sharding on separate tracks.
//!   Enable with `CMAM_TRACE=1`, programmatically via
//!   [`enable_tracing`], or with the `--trace-out FILE` flag every
//!   experiment binary understands.
//!
//! * **Metrics** ([`metrics`]) — a process-wide registry of named atomic
//!   counters, gauges and power-of-two histograms (engine cache
//!   hits/misses, mapper search counters, pool steals, simulated
//!   cycles, per-phase latency). Always on: every metric is fed from an
//!   already-aggregated statistic at a phase boundary, so the hot paths
//!   never see a metrics instruction. Counter totals are deterministic
//!   across thread counts wherever the underlying statistic is
//!   (`pool.*` and the `phase.*` latency histograms are the documented
//!   exceptions). Dump with [`metrics::metrics_json`].
//!
//! * **Warnings** ([`warn!`]) — the one funnel for user-facing
//!   diagnostics that used to be scattered `eprintln!`s; every warning
//!   is counted (`obs.warnings`) so a sweep that produced them is
//!   distinguishable from one that did not.
//!
//! [`cmam_pool`]: ../cmam_pool/index.html

pub mod json;
pub mod metrics;
pub mod trace;

pub use trace::{
    chrome_trace_json, reset_trace, set_thread_label, validate_chrome_trace, write_chrome_trace,
    SpanGuard,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// Tracing enable state: 0 = not yet initialized (consult `CMAM_TRACE`),
/// 1 = disabled, 2 = enabled.
static TRACE_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether span recording is on. This is **the** per-site check the
/// zero-overhead contract is built on: one relaxed atomic load on the
/// (overwhelmingly common) initialized path.
#[inline]
pub fn tracing_enabled() -> bool {
    match TRACE_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_tracing_from_env(),
    }
}

/// First-call slow path: resolve the `CMAM_TRACE` environment variable
/// (any value except empty or `0` enables). Racing initializers agree
/// because the environment does not change.
#[cold]
fn init_tracing_from_env() -> bool {
    let on = std::env::var("CMAM_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
    let _ = TRACE_STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    TRACE_STATE.load(Ordering::Relaxed) == 2
}

/// Turns span recording on (used by `--trace-out` and by tests).
pub fn enable_tracing() {
    TRACE_STATE.store(2, Ordering::Relaxed);
}

/// Turns span recording off again (tests only; recorded events stay in
/// the buffers until [`reset_trace`]).
pub fn disable_tracing() {
    TRACE_STATE.store(1, Ordering::Relaxed);
}

/// Emits a user-facing warning: counted in the `obs.warnings` metric,
/// rendered to stderr as `warning: …`. Use the [`warn!`] macro.
pub fn warn_str(msg: &str) {
    metrics::registry().counter("obs.warnings").add(1);
    eprintln!("warning: {msg}");
}

/// `warn!("--jobs expects a number")` — formats like `format!`, counts
/// the warning in the metrics registry, prints to stderr. The single
/// funnel every toolchain warning goes through.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::warn_str(&format!($($arg)*))
    };
}

/// Opens a tracing span that closes when the returned guard drops.
///
/// ```
/// # fn map_block() {}
/// let _g = cmam_obs::span!("map_block", block = 3u64, ops = 17u64);
/// map_block();
/// // span ends here
/// ```
///
/// Arguments are `name = value` pairs where the value converts to `u64`
/// with `as`; they surface in the Chrome trace's `args` object. When
/// tracing is disabled the whole site is one relaxed atomic load and the
/// guard is inert — no clock read, no allocation.
#[macro_export]
macro_rules! span {
    ($name:literal $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::tracing_enabled() {
            $crate::trace::SpanGuard::enter($name, &[$((stringify!($k), ($v) as u64)),*])
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing_and_is_cheap() {
        disable_tracing();
        {
            let _g = span!("never", x = 1u64);
        }
        // No way to observe "no clock was read" directly, but the guard
        // must at least be inert: nothing new in the buffers.
        let before = trace::events_recorded();
        {
            let _g = span!("never_again");
        }
        assert_eq!(trace::events_recorded(), before);
    }

    #[test]
    fn warn_macro_counts_and_formats() {
        let c = metrics::registry().counter("obs.warnings");
        let before = c.get();
        crate::warn!("test warning {}", 42);
        assert_eq!(c.get(), before + 1);
    }
}
