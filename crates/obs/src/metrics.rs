//! The process-wide metrics registry: named atomic counters, gauges,
//! and power-of-two latency histograms.
//!
//! ## Always on, never hot
//!
//! Unlike tracing there is no enable flag: every metric is fed from an
//! **already-aggregated** statistic at a phase boundary — the mapper
//! flushes its `MapStats` once per `map()`, the engine flushes a batch's
//! cache outcome once per `run_batch()`, the simulator flushes counters
//! it accumulated in locals once per `simulate()`. The inner loops never
//! execute a metrics instruction, so the registry costs nothing
//! measurable even when nobody reads it.
//!
//! ## Determinism
//!
//! Counter totals mirror the underlying statistics, which the toolchain
//! keeps bit-identical across thread counts — so `mapper.*`, `engine.*`
//! and `sim.*` totals are equal for `CMAM_THREADS=1` and `=4` on the
//! same work. The documented exceptions are scheduling-dependent by
//! nature: `pool.*` (who stole how many chunks) and the `phase.*` /
//! `batch.*` latency histograms (wall-clock). [`metrics_json`] renders
//! names sorted, so two deterministic runs produce byte-identical
//! documents modulo those families.
//!
//! ## Site caching
//!
//! Metric lookup takes a registry lock, so call sites that fire more
//! than once per phase should resolve their metric once: handles are
//! `&'static` (leaked on first registration) and can be cached in a
//! `OnceLock`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

const RELAXED: Ordering = Ordering::Relaxed;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, RELAXED);
        }
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(RELAXED)
    }
}

/// A last-writer-wins signed gauge (peaks, sizes, levels).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, RELAXED);
    }

    /// Raises the gauge to `v` if `v` is larger (lock-free running max).
    pub fn raise(&self, v: i64) {
        self.0.fetch_max(v, RELAXED);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(RELAXED)
    }
}

/// Histogram bucket count: one bucket per power of two of the recorded
/// value (bucket `i` holds values with `ilog2 == i`), plus bucket 0 for
/// zero. Covers the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two histogram of `u64` samples (typically microseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let bucket = match v {
            0 => 0,
            v => v.ilog2() as usize + 1,
        };
        self.buckets[bucket].fetch_add(1, RELAXED);
        self.count.fetch_add(1, RELAXED);
        self.sum.fetch_add(v, RELAXED);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(RELAXED)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(RELAXED)
    }

    /// `(bucket_upper_bound, count)` for every non-empty bucket; bucket 0
    /// is the exact-zero bucket.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = self.buckets[i].load(RELAXED);
                if n == 0 {
                    return None;
                }
                let upper = match i {
                    0 => 0,
                    64 => u64::MAX,
                    i => (1u64 << i) - 1,
                };
                Some((upper, n))
            })
            .collect()
    }
}

/// One registered metric.
#[derive(Debug)]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The registry: name → metric, names sorted for deterministic dumps.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<std::collections::BTreeMap<&'static str, Metric>>,
}

impl Registry {
    /// The counter named `name`, registered on first use. Panics if the
    /// name is already registered as a different metric kind.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        match m
            .entry(name)
            .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
        {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// The gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        match m
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
        {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// The histogram named `name`, registered on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        match m
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::default())))
        {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Snapshot of every counter total, sorted by name (tests and the
    /// determinism gate).
    pub fn counter_snapshot(&self) -> Vec<(&'static str, u64)> {
        let m = self.metrics.lock().expect("metrics registry poisoned");
        m.iter()
            .filter_map(|(name, metric)| match metric {
                Metric::Counter(c) => Some((*name, c.get())),
                _ => None,
            })
            .collect()
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Renders every registered metric as one JSON object, names sorted:
/// counters as numbers, gauges as numbers, histograms as
/// `{"count", "sum", "buckets": [[upper, n], …]}`. This is the payload
/// of the `METRICS` block the experiment binaries print.
pub fn metrics_json() -> String {
    let reg = registry();
    let m = reg.metrics.lock().expect("metrics registry poisoned");
    let mut out = String::from("{");
    for (i, (name, metric)) in m.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n  \"{name}\": "));
        match metric {
            Metric::Counter(c) => out.push_str(&c.get().to_string()),
            Metric::Gauge(g) => out.push_str(&g.get().to_string()),
            Metric::Histogram(h) => {
                out.push_str(&format!(
                    "{{\"count\": {}, \"sum\": {}, \"buckets\": [",
                    h.count(),
                    h.sum()
                ));
                for (j, (upper, n)) in h.nonempty_buckets().iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{upper},{n}]"));
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("\n}\n");
    out
}

/// `counter!("engine.cache.hits").add(n)` — resolves the counter once
/// per call site (a hidden `OnceLock` caches the handle), so repeated
/// hits skip the registry lock.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static SITE: std::sync::OnceLock<&'static $crate::metrics::Counter> =
            std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// `gauge!("mapper.peak_population").raise(v)` — site-cached gauge
/// handle, see [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static SITE: std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

/// `histogram!("phase.map_us").record(us)` — site-cached histogram
/// handle, see [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static SITE: std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        registry().counter("test.metrics.b").add(2);
        registry().counter("test.metrics.a").add(1);
        registry().counter("test.metrics.b").add(3);
        let snap = registry().counter_snapshot();
        let a = snap.iter().position(|(n, _)| *n == "test.metrics.a");
        let b = snap.iter().position(|(n, _)| *n == "test.metrics.b");
        assert!(a.expect("a registered") < b.expect("b registered"));
        assert_eq!(registry().counter("test.metrics.b").get(), 5);
    }

    #[test]
    fn gauge_raise_is_a_running_max() {
        let g = registry().gauge("test.metrics.gauge");
        g.set(10);
        g.raise(5);
        assert_eq!(g.get(), 10);
        g.raise(25);
        assert_eq!(g.get(), 25);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let buckets = h.nonempty_buckets();
        // 0 → bucket 0; 1 → (1,1); 2,3 → (3,2); 1024 → (2047,1).
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (2047, 1)]);
    }

    #[test]
    fn site_macros_resolve_to_the_registry() {
        crate::counter!("test.metrics.site").add(7);
        assert_eq!(registry().counter("test.metrics.site").get(), 7);
        crate::histogram!("test.metrics.hist").record(100);
        assert_eq!(registry().histogram("test.metrics.hist").count(), 1);
    }

    #[test]
    fn metrics_json_is_parseable_and_sorted() {
        registry().counter("test.metrics.json").add(1);
        registry().histogram("test.metrics.json_hist").record(42);
        let text = metrics_json();
        let doc = crate::json::parse(&text).expect("metrics dump parses");
        assert!(doc.get("test.metrics.json").is_some());
        let hist = doc.get("test.metrics.json_hist").expect("histogram");
        assert_eq!(
            hist.get("count").and_then(crate::json::Value::as_f64),
            Some(1.0)
        );
    }
}
