//! Golden-equivalence suite: the mapper must keep producing **exactly**
//! the same `KernelMapping` and `MapStats` it produced before the
//! hot-loop optimizations, for every kernel × smoke configuration × flow
//! variant at the fixed default seed.
//!
//! The golden file (`tests/golden/mapper.golden`) was generated against
//! the pre-optimization mapper (the clone-per-candidate, HashMap-state
//! implementation) and is the contract every performance refactor must
//! preserve: flat state, incremental ACMAP/ECMAP counters and try/undo
//! candidate expansion are all observationally invisible.
//!
//! Regenerate (only when an *intentional* semantic change lands) with:
//!
//! ```text
//! CMAM_REGEN_GOLDEN=1 cargo test -p cmam_core --test golden_equivalence
//! ```

use cmam_arch::CgraConfig;
use cmam_core::{FlowVariant, Mapper};
use cmam_isa::{KernelMapping, OperandSource};
use std::fmt::Write as _;
use std::path::PathBuf;

/// FNV-1a, the same construction the engine uses for content hashes
/// (reimplemented here because `cmam_core` must not depend on
/// `cmam_engine`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
}

/// A canonical content hash of a mapping: every placement, route, operand
/// source, commit flag and symbol home. Two mappings with equal digests
/// are byte-identical for every downstream consumer (assembler,
/// simulator, reports).
fn mapping_digest(m: &KernelMapping) -> u64 {
    let mut h = Fnv::new();
    h.usize(m.blocks.len());
    for b in &m.blocks {
        h.usize(b.length);
        h.usize(b.ops.len());
        for o in &b.ops {
            h.u64(o.op.0 as u64);
            h.usize(o.tile.0);
            h.usize(o.cycle);
            h.u64(o.direct_symbol_write as u64);
            h.usize(o.operands.len());
            for s in &o.operands {
                match s {
                    OperandSource::Const(c) => {
                        h.u64(1);
                        h.u64(*c as u32 as u64);
                    }
                    OperandSource::Rf { tile, value } => {
                        h.u64(2);
                        h.usize(tile.0);
                        h.u64(value.0 as u64);
                    }
                }
            }
        }
        h.usize(b.moves.len());
        for mv in &b.moves {
            h.u64(mv.value.0 as u64);
            h.usize(mv.src_tile.0);
            h.usize(mv.tile.0);
            h.usize(mv.cycle);
            match mv.commit_symbol {
                Some(s) => {
                    h.u64(1);
                    h.u64(s.0 as u64);
                }
                None => h.u64(0),
            }
        }
    }
    // Homes sorted by symbol id: stable across map-representation changes.
    let mut homes: Vec<(u32, usize)> = m.symbol_homes.iter().map(|(s, t)| (s.0, t.0)).collect();
    homes.sort_unstable();
    h.usize(homes.len());
    for (s, t) in homes {
        h.u64(s as u64);
        h.usize(t);
    }
    h.0
}

fn configs() -> Vec<CgraConfig> {
    // The smoke configurations (the unconstrained baseline plus both
    // heterogeneous constrained targets), and two uniformly tight
    // targets chosen so that the ACMAP/ECMAP filters actually drop
    // candidates and some searches fail — covering the pruning counters,
    // the finalize-failure path and the error formatting, which the
    // smoke configurations never trigger.
    vec![
        CgraConfig::hom64(),
        CgraConfig::het1(),
        CgraConfig::het2(),
        CgraConfig::builder(4, 4)
            .uniform_cm(16)
            .name("TIGHT16")
            .build()
            .expect("valid config"),
        CgraConfig::builder(4, 4)
            .uniform_cm(24)
            .name("TIGHT24")
            .build()
            .expect("valid config"),
    ]
}

/// One observed line of the suite, in the golden file's format:
///
/// `<kernel> <variant> <config> ok <mapping-hash> <8 stat counters>`
/// `<kernel> <variant> <config> err <error message with spaces escaped>`
fn observe(kernel: &str, variant: FlowVariant, config: &CgraConfig) -> String {
    let spec = cmam_kernels::all()
        .into_iter()
        .find(|s| s.name == kernel)
        .expect("known kernel");
    let mapper = Mapper::new(variant.options());
    match mapper.map(&spec.cdfg, config) {
        Ok(r) => {
            let s = &r.stats;
            // `rollbacks` is deliberately excluded: it counts how the
            // *implementation* explores (clone-based mappers never roll
            // back), not what the search decides. Every other counter is
            // search semantics and must match the golden mapper exactly.
            format!(
                "{kernel} {variant} {} ok {:016x} {} {} {} {} {} {} {} {}",
                config.name(),
                mapping_digest(&r.mapping),
                s.candidates,
                s.attempts,
                s.acmap_pruned,
                s.ecmap_pruned,
                s.stochastic_pruned,
                s.finalize_failures,
                s.escalations,
                s.peak_population,
            )
        }
        Err(e) => format!(
            "{kernel} {variant} {} err {}",
            config.name(),
            e.to_string().replace(' ', "_")
        ),
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("mapper.golden")
}

fn run_suite() -> String {
    let kernels: Vec<String> = cmam_kernels::all().iter().map(|s| s.name.clone()).collect();
    let mut out = String::new();
    for kernel in &kernels {
        for config in &configs() {
            for variant in FlowVariant::ALL {
                let _ = writeln!(out, "{}", observe(kernel, variant, config));
            }
        }
    }
    out
}

/// The observability layer's zero-interference contract: running the
/// whole 175-job suite with span recording force-enabled must produce
/// byte-identical results to the golden file. Recording happens purely
/// at phase boundaries, so the search — every candidate, every counter —
/// cannot be perturbed by it. (This test shares the process with
/// `mapper_output_matches_golden`, which therefore may also run with
/// tracing on; both compare against the same golden bytes, so tracing
/// on/off equivalence is exactly what the pair pins.)
#[test]
fn mapper_output_matches_golden_with_tracing_enabled() {
    if std::env::var_os("CMAM_REGEN_GOLDEN").is_some() {
        return; // the plain test regenerates; nothing to compare yet
    }
    cmam_obs::enable_tracing();
    let golden = std::fs::read_to_string(golden_path()).expect("golden file present");
    let observed = run_suite();
    assert!(
        cmam_obs::trace::events_recorded() > 0,
        "tracing was supposed to be recording during this run"
    );
    assert_eq!(
        golden, observed,
        "suite output changed when span recording was enabled"
    );
}

#[test]
fn mapper_output_matches_golden() {
    let path = golden_path();
    let observed = run_suite();
    if std::env::var_os("CMAM_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &observed).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             CMAM_REGEN_GOLDEN=1 cargo test -p cmam_core --test golden_equivalence",
            path.display()
        )
    });
    let golden_lines: Vec<&str> = golden.lines().collect();
    let observed_lines: Vec<&str> = observed.lines().collect();
    assert_eq!(
        golden_lines.len(),
        observed_lines.len(),
        "suite shape changed: {} golden lines vs {} observed",
        golden_lines.len(),
        observed_lines.len()
    );
    let mut diffs = Vec::new();
    for (g, o) in golden_lines.iter().zip(&observed_lines) {
        if g != o {
            diffs.push(format!("  golden:   {g}\n  observed: {o}"));
        }
    }
    assert!(
        diffs.is_empty(),
        "{} of {} jobs diverged from the golden mapper:\n{}",
        diffs.len(),
        golden_lines.len(),
        diffs.join("\n")
    );
}
