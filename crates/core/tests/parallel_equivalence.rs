//! Property-style equivalence suite for the beam-parallel mapper: for
//! random seeds, every flow variant and both ends of the configuration
//! spectrum, `map()` with `threads = 4` must agree with `threads = 1` on
//! the **entire** observable outcome — the `KernelMapping` byte for byte
//! and every `MapStats` counter (including `rollbacks`: the parallel
//! shards run the identical per-partial try/undo loop, so even the
//! implementation-effort counters line up).
//!
//! This is the per-call complement of the golden-equivalence suite: the
//! golden file pins today's mapper against the historical one at the
//! default seed, while this test pins parallel against sequential at
//! seeds the golden file never saw.

use cmam_arch::CgraConfig;
use cmam_core::{FlowVariant, Mapper, MapperOptions};

/// Splitmix64 — a tiny deterministic seed sequence so the suite covers
/// "random" seeds without depending on ambient randomness.
fn seeds(n: usize) -> Vec<u64> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

fn map_with_threads(
    options: &MapperOptions,
    threads: usize,
    cdfg: &cmam_cdfg::Cdfg,
    config: &CgraConfig,
) -> Result<(cmam_isa::KernelMapping, cmam_core::MapStats), String> {
    let mut options = options.clone();
    options.threads = threads;
    Mapper::new(options)
        .map(cdfg, config)
        .map(|r| (r.mapping, r.stats))
        .map_err(|e| e.to_string())
}

#[test]
fn parallel_map_agrees_with_sequential_across_seeds_and_variants() {
    let specs = cmam_kernels::all();
    // The smallest and a mid-size kernel keep the suite fast while still
    // exercising routing, re-computation and symbol commits.
    let kernels: Vec<_> = specs
        .iter()
        .filter(|s| s.name == "DC Filter" || s.name == "FFT")
        .collect();
    assert_eq!(kernels.len(), 2, "expected kernels present");
    let configs = [CgraConfig::hom64(), CgraConfig::het2()];

    let mut compared = 0usize;
    for variant in FlowVariant::ALL {
        for &seed in &seeds(4) {
            let mut options = variant.options();
            options.seed = seed;
            for spec in &kernels {
                for config in &configs {
                    let seq = map_with_threads(&options, 1, &spec.cdfg, config);
                    let par = map_with_threads(&options, 4, &spec.cdfg, config);
                    assert_eq!(
                        seq,
                        par,
                        "threads=4 diverged from threads=1 for {variant} seed {seed:#x} \
                         kernel {} config {}",
                        spec.name,
                        config.name()
                    );
                    compared += 1;
                }
            }
        }
    }
    // 5 variants x 4 seeds x 2 kernels x 2 configs.
    assert_eq!(compared, 80);
}

#[test]
fn env_auto_threads_resolution_is_side_effect_free() {
    // `threads = 0` resolves through CMAM_THREADS; an explicit value must
    // win without consulting the environment. (The env-var path itself is
    // exercised by the CI golden-equivalence run under CMAM_THREADS=4.)
    let mut options = MapperOptions::basic();
    options.threads = 3;
    assert_eq!(options.effective_threads(), 3);
    options.threads = 1;
    assert_eq!(options.effective_threads(), 1);
}
