//! Mapper edge cases and flow-behaviour tests beyond the happy path.

use cmam_arch::{CgraConfig, TileId};
use cmam_cdfg::{CdfgBuilder, Opcode};
use cmam_core::{FlowVariant, MapError, Mapper, MapperOptions};

/// A single-block kernel with one store.
fn tiny() -> cmam_cdfg::Cdfg {
    let mut b = CdfgBuilder::new("tiny");
    let _ = b.block("b0");
    let c1 = b.constant(1);
    let c2 = b.constant(2);
    let v = b.op(Opcode::Add, &[c1, c2]);
    let a = b.constant(0);
    b.store(a, v, "m");
    b.ret();
    b.finish().unwrap()
}

#[test]
fn maps_on_minimal_grids() {
    // 2x2 with one LSU row still maps the tiny kernel.
    let config = CgraConfig::builder(2, 2).lsu_rows(1).build().unwrap();
    let r = Mapper::new(MapperOptions::basic())
        .map(&tiny(), &config)
        .unwrap();
    cmam_isa::assemble(&tiny(), &r.mapping, &config).unwrap();
}

#[test]
fn maps_on_larger_grids() {
    let config = CgraConfig::builder(6, 6).name("BIG").build().unwrap();
    let spec = cmam_kernels::dc::spec();
    let r = Mapper::new(MapperOptions::context_aware())
        .map(&spec.cdfg, &config)
        .unwrap();
    cmam_isa::assemble(&spec.cdfg, &r.mapping, &config).unwrap();
}

#[test]
fn different_seeds_both_produce_valid_mappings() {
    let spec = cmam_kernels::dc::spec();
    let config = CgraConfig::het2();
    for seed in [1u64, 999, 0xDEAD] {
        let mut options = FlowVariant::Cab.options();
        options.seed = seed;
        let r = Mapper::new(options).map(&spec.cdfg, &config).unwrap();
        cmam_isa::assemble(&spec.cdfg, &r.mapping, &config)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn memory_constraint_error_names_the_block() {
    let spec = cmam_kernels::nonsep::spec();
    // 8-word CMs cannot hold the 131-op body anywhere.
    let config = CgraConfig::builder(4, 4).uniform_cm(8).build().unwrap();
    let err = Mapper::new(MapperOptions::context_aware())
        .map(&spec.cdfg, &config)
        .unwrap_err();
    match err {
        MapError::MemoryConstraint { block, step } => {
            assert_eq!(block, cmam_cdfg::BlockId(2), "the body block");
            assert!(["binding", "ACMAP", "ECMAP", "finalize"].contains(&step));
        }
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn basic_flow_ignores_memory_constraints() {
    // The context-unaware flow happily produces a mapping for a config it
    // cannot fit — the assembler then rejects it. This is exactly the
    // paper's premise.
    let spec = cmam_kernels::nonsep::spec();
    let tight = CgraConfig::builder(4, 4).uniform_cm(8).build().unwrap();
    let r = Mapper::new(MapperOptions::basic())
        .map(&spec.cdfg, &tight)
        .unwrap();
    let err = cmam_isa::assemble(&spec.cdfg, &r.mapping, &tight).unwrap_err();
    assert!(matches!(
        err,
        cmam_isa::AssembleError::ContextOverflow { .. }
    ));
}

#[test]
fn cab_respects_blacklisted_tiles() {
    // With CAB on a tight config, no tile may exceed its capacity in the
    // final mapping (stronger: the winning mapping fits exactly).
    let spec = cmam_kernels::sep::spec();
    let config = CgraConfig::het2();
    let r = Mapper::new(FlowVariant::Cab.options())
        .map(&spec.cdfg, &config)
        .unwrap();
    for i in 0..16 {
        let t = TileId(i);
        assert!(r.mapping.context_words(t) <= config.tile(t).cm_words);
    }
}

#[test]
fn stats_track_search_effort() {
    let spec = cmam_kernels::fir::spec();
    let config = CgraConfig::hom64();
    let r = Mapper::new(MapperOptions::basic())
        .map(&spec.cdfg, &config)
        .unwrap();
    assert!(r.stats.attempts > r.stats.candidates);
    assert!(r.stats.candidates > 0);
    assert!(r.stats.stochastic_pruned > 0, "population was capped");
}

#[test]
fn biggest_kernel_pays_latency_on_constrained_configs() {
    // The Figs 6-8 shape: the largest kernel still maps onto the halved
    // configurations, but pays a latency penalty relative to its HOM64
    // schedule, while smaller kernels map at parity (checked in the
    // experiment-shape integration tests).
    let spec = cmam_kernels::nonsep::spec();
    let base = Mapper::new(FlowVariant::Basic.options())
        .map(&spec.cdfg, &CgraConfig::hom64())
        .unwrap();
    let constrained = Mapper::new(FlowVariant::Ecmap.options())
        .map(&spec.cdfg, &CgraConfig::hom32())
        .unwrap();
    assert!(
        constrained.mapping.total_length() >= base.mapping.total_length(),
        "constrained {} vs base {}",
        constrained.mapping.total_length(),
        base.mapping.total_length()
    );
    let on_het1 = Mapper::new(FlowVariant::Ecmap.options()).map(&spec.cdfg, &CgraConfig::het1());
    assert!(on_het1.is_ok());
}

#[test]
fn memory_filters_fire_on_overconstrained_targets() {
    // On a uniformly tight target the ECMAP filter must actually drop
    // candidates during the search (even though the kernel ultimately
    // cannot map at all).
    let spec = cmam_kernels::fir::spec();
    let tight = CgraConfig::builder(4, 4).uniform_cm(16).build().unwrap();
    let err = Mapper::new(FlowVariant::Ecmap.options()).map(&spec.cdfg, &tight);
    assert!(
        matches!(err, Err(MapError::MemoryConstraint { .. })),
        "{err:?}"
    );
}

#[test]
fn invalid_cdfg_is_rejected_up_front() {
    let mut b = CdfgBuilder::new("bad");
    let _ = b.block("b0");
    // Unterminated block.
    let err = b.finish().unwrap_err();
    // And the mapper surfaces validation through MapError::Invalid when
    // given a hand-broken CDFG (constructed via the builder error here).
    assert!(matches!(err, cmam_cdfg::ValidateError::Unterminated(_)));
}

#[test]
fn symbol_heavy_kernel_maps_with_weighted_traversal() {
    let spec = cmam_kernels::fft::spec();
    let config = CgraConfig::hom64();
    let r = Mapper::new(FlowVariant::Weighted.options())
        .map(&spec.cdfg, &config)
        .unwrap();
    // All six symbols received homes.
    assert_eq!(r.mapping.symbol_homes.len(), 6);
    cmam_isa::assemble(&spec.cdfg, &r.mapping, &config).unwrap();
}
