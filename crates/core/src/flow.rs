//! The whole-kernel mapping driver (Fig 4 of the paper).
//!
//! For every basic block (in forward or weighted traversal order), the
//! driver runs the population-based list-scheduling/binding loop:
//!
//! ```text
//! for op in priority order:
//!     candidates = { partial + (op -> tile, cycle) : feasible bindings }
//!     ACMAP filter          (if enabled)
//!     ECMAP filter          (if enabled)
//!     stochastic pruning    (population cap)
//! finalize (symbol commits, exact fit check), pick the cheapest mapping
//! ```
//!
//! and commits the winner's context-word usage, CRF contents and symbol
//! homes before moving to the next block.

use crate::options::{MapperOptions, Traversal};
use crate::partial::{FlowState, MapCtx, MapPre, Partial};
use crate::prune::stochastic_prune_by;
use crate::schedule::priority_order;
use cmam_arch::CgraConfig;
use cmam_cdfg::analysis::{forward_order, weighted_order, DepGraph};
use cmam_cdfg::{BlockId, Cdfg, ValidateError};
use cmam_isa::KernelMapping;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;

/// Why a kernel could not be mapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The CDFG failed structural validation.
    Invalid(ValidateError),
    /// No feasible binding existed for an operation of `block` even after
    /// slack escalation (routing/recomputation exhausted).
    Unroutable {
        /// The failing block.
        block: BlockId,
    },
    /// Every candidate was pruned by the context-memory constraints — the
    /// kernel does not fit this configuration (the "zero" bars of
    /// Figs 6-8).
    MemoryConstraint {
        /// The failing block.
        block: BlockId,
        /// Which step rejected the last candidates (`"binding"`,
        /// `"ACMAP"`, `"ECMAP"` or `"finalize"`).
        step: &'static str,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Invalid(e) => write!(f, "invalid cdfg: {e}"),
            MapError::Unroutable { block } => {
                write!(f, "no feasible binding while mapping {block}")
            }
            MapError::MemoryConstraint { block, step } => {
                write!(
                    f,
                    "context-memory constraints unsatisfiable in {block} ({step})"
                )
            }
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for MapError {
    fn from(e: ValidateError) -> Self {
        MapError::Invalid(e)
    }
}

/// Search statistics of one mapping run (used by the Fig 9 compilation
/// effort comparison and by tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapStats {
    /// Candidate bindings generated (successful `try_place_op` calls).
    pub candidates: u64,
    /// Candidate bindings attempted (including failures).
    pub attempts: u64,
    /// Partials dropped by the ACMAP filter.
    pub acmap_pruned: u64,
    /// Partials dropped by the ECMAP filter.
    pub ecmap_pruned: u64,
    /// Partials dropped by the stochastic pruning.
    pub stochastic_pruned: u64,
    /// Partials that failed finalisation (commit or exact fit).
    pub finalize_failures: u64,
    /// Number of slack escalations needed.
    pub escalations: u64,
    /// Largest candidate pool alive at once (after binding expansion,
    /// before the memory filters) — the search's peak memory pressure,
    /// a timing-noise-free effort measure for Fig 9 and the DSE sweep.
    pub peak_population: u64,
    /// Trial bindings undone on the shared partial state during candidate
    /// expansion — every try that left a delta (surviving candidates and
    /// failed attempts alike) is rolled back rather than cloned away.
    /// Zero for mapper implementations that evaluate candidates on
    /// clones; together with `attempts` this measures how much work the
    /// try/undo scheme saves over clone-per-candidate.
    pub rollbacks: u64,
}

/// A successful mapping plus its statistics.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// The mapping, ready for `cmam_isa::assemble`.
    pub mapping: KernelMapping,
    /// Search statistics.
    pub stats: MapStats,
}

/// The mapping engine. One instance is reusable across kernels and
/// configurations; each [`map`](Mapper::map) call is deterministic for the
/// options' seed.
#[derive(Debug, Clone, Default)]
pub struct Mapper {
    options: MapperOptions,
}

impl Mapper {
    /// Creates a mapper with the given options.
    pub fn new(options: MapperOptions) -> Self {
        Mapper { options }
    }

    /// The options in use.
    pub fn options(&self) -> &MapperOptions {
        &self.options
    }

    /// Maps `cdfg` onto `config`.
    ///
    /// # Errors
    ///
    /// [`MapError::Invalid`] for malformed CDFGs, [`MapError::Unroutable`]
    /// when binding fails structurally, and [`MapError::MemoryConstraint`]
    /// when the context-memory constraints cannot be met (memory-aware
    /// flows only).
    pub fn map(&self, cdfg: &Cdfg, config: &CgraConfig) -> Result<MapResult, MapError> {
        cdfg.validate()?;
        let order = match self.options.traversal {
            Traversal::Forward => forward_order(cdfg),
            Traversal::Weighted => weighted_order(cdfg),
        };
        let ntiles = config.geometry().num_tiles();
        let pre = MapPre::new(config);
        let mut state = FlowState::new(ntiles);
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let mut stats = MapStats::default();
        let mut blocks: Vec<Option<cmam_isa::BlockMapping>> = vec![None; cdfg.num_blocks()];
        // Retired partials whose allocations the survivor materialisation
        // reuses (see `map_block`); shared across blocks because every
        // partial of one run has identically sized tables.
        let mut pool_mem: Vec<Partial> = Vec::new();

        for (pos, &block) in order.iter().enumerate() {
            // Reserve one context word per tile for every block still to
            // be mapped (each costs at least a pnop everywhere).
            let ctx = MapCtx {
                cdfg,
                config,
                options: &self.options,
                reserve: order.len() - 1 - pos,
                pre: &pre,
            };
            let bm =
                self.map_block(&ctx, block, &mut state, &mut rng, &mut stats, &mut pool_mem)?;
            blocks[block.0 as usize] = Some(bm);
        }

        let mapping = KernelMapping {
            blocks: blocks
                .into_iter()
                .map(|b| b.expect("all blocks mapped"))
                .collect(),
            symbol_homes: state.homes.clone(),
        };
        Ok(MapResult { mapping, stats })
    }

    #[allow(clippy::too_many_arguments)]
    fn map_block(
        &self,
        ctx: &MapCtx<'_>,
        block: BlockId,
        state: &mut FlowState,
        rng: &mut StdRng,
        stats: &mut MapStats,
        pool_mem: &mut Vec<Partial>,
    ) -> Result<cmam_isa::BlockMapping, MapError> {
        let dfg = ctx.cdfg.dfg(block);
        let deps = DepGraph::build(&dfg);
        let order = priority_order(&dfg, &deps);
        let tiles: Vec<_> = ctx.config.geometry().tiles().collect();
        let geom = ctx.config.geometry();

        /// One successful trial binding: which parent it extends and
        /// where the op goes, plus everything the downstream pipeline
        /// steps need (cost for ranking, the memory-filter verdicts) —
        /// recorded while the delta was applied, before it was rolled
        /// back. Only the candidates that survive pruning are ever
        /// materialised into real [`Partial`]s.
        struct Candidate {
            parent: u32,
            tile: cmam_arch::TileId,
            cycle: u32,
            cost: (usize, usize),
            acmap_ok: bool,
            ecmap_ok: bool,
        }

        let mut population = vec![Partial::new(state, ctx)];

        for &op in &order {
            // Candidate generation with slack escalation. Every trial is
            // applied to the shared parent state and rolled back; cloning
            // happens only for pruning survivors below.
            let mut pool: Vec<Candidate> = Vec::new();
            for escalation in 0..3 {
                let slack = self.options.slack << (2 * escalation);
                if escalation > 0 {
                    stats.escalations += 1;
                }
                for (pi, partial) in population.iter_mut().enumerate() {
                    let earliest = partial.earliest_cycle(&deps, op);
                    let cp = partial.checkpoint();
                    let mut local: Vec<Candidate> = Vec::new();
                    for &tile in &tiles {
                        for cycle in earliest..=earliest + slack {
                            stats.attempts += 1;
                            if partial.try_place_op(ctx, op, tile, cycle) {
                                stats.candidates += 1;
                                // Evaluate the memory filters while the
                                // delta is applied — O(1) per tile from
                                // the incremental counters.
                                let acmap_ok = !self.options.acmap
                                    || geom
                                        .tiles()
                                        .all(|t| partial.acmap_words(t) <= ctx.capacity(t));
                                let ecmap_ok = !self.options.ecmap
                                    || geom
                                        .tiles()
                                        .all(|t| partial.ecmap_words(t) <= ctx.capacity(t));
                                local.push(Candidate {
                                    parent: pi as u32,
                                    tile,
                                    cycle: cycle as u32,
                                    cost: partial.cost(),
                                    acmap_ok,
                                    ecmap_ok,
                                });
                            }
                            if partial.dirty_since(cp) {
                                stats.rollbacks += 1;
                                partial.rollback(cp);
                            }
                        }
                    }
                    // Note the expansion cut happens *before* the memory
                    // filters, exactly like the paper's Fig 4 pipeline
                    // (binding -> ACMAP -> stochastic pruning): the
                    // memory-aware steps prune the partial-mapping set,
                    // they do not re-rank the binder's candidates. This is
                    // what makes over-constrained targets fail (the zero
                    // bars of Figs 6-8) instead of being rescued by
                    // exhaustive candidate filtering. (Stable sort: ties
                    // keep generation order, as when partials themselves
                    // were sorted.)
                    local.sort_by_key(|c| c.cost);
                    local.truncate(self.options.expansion);
                    pool.extend(local);
                }
                if !pool.is_empty() {
                    break;
                }
            }
            if pool.is_empty() {
                // With memory awareness on, an empty pool usually means
                // the CAB blacklist / capacity reservation left no legal
                // tile — a constraint failure, not a routing failure.
                if self.options.memory_aware() {
                    return Err(MapError::MemoryConstraint {
                        block,
                        step: "binding",
                    });
                }
                return Err(MapError::Unroutable { block });
            }

            stats.peak_population = stats.peak_population.max(pool.len() as u64);

            // ACMAP / ECMAP filters: the verdicts were computed per
            // candidate at trial time; the filters reduce to retains.
            // ECMAP counts only candidates that survived ACMAP, like the
            // sequential filter pipeline did.
            if self.options.acmap {
                let before = pool.len();
                pool.retain(|c| c.acmap_ok);
                stats.acmap_pruned += (before - pool.len()) as u64;
                if pool.is_empty() {
                    return Err(MapError::MemoryConstraint {
                        block,
                        step: "ACMAP",
                    });
                }
            }
            if self.options.ecmap {
                let before = pool.len();
                pool.retain(|c| c.ecmap_ok);
                stats.ecmap_pruned += (before - pool.len()) as u64;
                if pool.is_empty() {
                    return Err(MapError::MemoryConstraint {
                        block,
                        step: "ECMAP",
                    });
                }
            }
            let before = pool.len();
            let chosen = stochastic_prune_by(pool, self.options.population, rng, |c| c.cost);
            stats.stochastic_pruned += (before - chosen.len()) as u64;

            // Materialise the survivors: re-apply each chosen delta onto
            // (a clone of) its parent. The last reference to a parent
            // takes it by move; buffers of never-chosen parents are
            // recycled through `pool_mem` instead of reallocated.
            let mut refs = vec![0u32; population.len()];
            for c in &chosen {
                refs[c.parent as usize] += 1;
            }
            let mut parents: Vec<Option<Partial>> = population.into_iter().map(Some).collect();
            let mut next: Vec<Partial> = Vec::with_capacity(chosen.len());
            for c in &chosen {
                let pi = c.parent as usize;
                refs[pi] -= 1;
                let mut p = if refs[pi] == 0 {
                    parents[pi].take().expect("last reference")
                } else {
                    let parent = parents[pi].as_ref().expect("parent still live");
                    match pool_mem.pop() {
                        Some(mut buf) => {
                            buf.clone_from(parent);
                            buf
                        }
                        None => parent.clone(),
                    }
                };
                let ok = p.try_place_op(ctx, op, c.tile, c.cycle as usize);
                debug_assert!(ok, "re-applying a proven-feasible binding");
                if !ok {
                    // A rolled-back trial failing on re-application would
                    // mean the journal is broken; never ship a corrupt
                    // mapping in release builds either.
                    return Err(MapError::Unroutable { block });
                }
                p.clear_journal();
                next.push(p);
            }
            // Recycle the allocations of parents nothing descended from.
            pool_mem.extend(parents.into_iter().flatten());
            population = next;
        }

        // Finalisation: symbol commits + exact feasibility.
        let mut finalized: Vec<Partial> = Vec::new();
        for mut p in population {
            if p.finalize(ctx, block) {
                finalized.push(p);
            } else {
                stats.finalize_failures += 1;
            }
        }
        if finalized.is_empty() {
            return Err(MapError::MemoryConstraint {
                block,
                step: "finalize",
            });
        }
        finalized.sort_by_key(|p| (p.length(), p.cost()));
        let best = finalized.swap_remove(0);
        best.commit_into(state);
        Ok(best.into_block_mapping())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::FlowVariant;
    use cmam_cdfg::{CdfgBuilder, Opcode};

    /// acc = Σ mem[i]^2 over n elements, stored to mem[out].
    fn sum_squares(n: i32, out: i32) -> Cdfg {
        let mut b = CdfgBuilder::new("ssq");
        let b0 = b.block("entry");
        let b1 = b.block("body");
        let b2 = b.block("exit");
        let i = b.symbol("i");
        let acc = b.symbol("acc");
        b.select(b0);
        b.mov_const_to_symbol(0, i);
        b.mov_const_to_symbol(0, acc);
        b.jump(b1);
        b.select(b1);
        let iv = b.use_symbol(i);
        let av = b.use_symbol(acc);
        let x = b.load_name(iv, "x");
        let sq = b.op(Opcode::Mul, &[x, x]);
        let a2 = b.op(Opcode::Add, &[av, sq]);
        b.write_symbol(a2, acc);
        let one = b.constant(1);
        let i2 = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(i2, i);
        let nv = b.constant(n);
        let c = b.op(Opcode::Lt, &[i2, nv]);
        b.branch(c, b1, b2);
        b.select(b2);
        let av2 = b.use_symbol(acc);
        let o = b.constant(out);
        b.store(o, av2, "out");
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn basic_flow_maps_a_loop_kernel() {
        let cdfg = sum_squares(8, 100);
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(MapperOptions::basic());
        let r = mapper.map(&cdfg, &config).unwrap();
        assert_eq!(r.mapping.blocks.len(), 3);
        // Every op of every block is placed at least once.
        for b in cdfg.block_ids() {
            let dfg = cdfg.dfg(b);
            let bm = r.mapping.block(b);
            for &op in dfg.op_ids() {
                assert!(bm.ops.iter().any(|p| p.op == op), "{op} unplaced in {b}");
            }
        }
        // And the mapping assembles (the assembler re-validates everything).
        cmam_isa::assemble(&cdfg, &r.mapping, &config).unwrap();
    }

    #[test]
    fn context_aware_flow_maps_and_assembles_on_het2() {
        let cdfg = sum_squares(8, 100);
        let config = CgraConfig::het2();
        let mapper = Mapper::new(MapperOptions::context_aware());
        let r = mapper.map(&cdfg, &config).unwrap();
        let (_bin, report) = cmam_isa::assemble(&cdfg, &r.mapping, &config).unwrap();
        // The memory-aware flow guarantees the fit.
        for (t, cfg) in config.tiles() {
            assert!(report.words(t) <= cfg.cm_words, "{t} overflows");
        }
    }

    #[test]
    fn mapping_is_deterministic_for_a_seed() {
        let cdfg = sum_squares(6, 90);
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(MapperOptions::basic());
        let a = mapper.map(&cdfg, &config).unwrap();
        let b = mapper.map(&cdfg, &config).unwrap();
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn impossible_memory_constraints_are_reported() {
        let cdfg = sum_squares(8, 100);
        // 2-word context memories cannot hold the loop body anywhere.
        let config = CgraConfig::builder(4, 4).uniform_cm(2).build().unwrap();
        let mapper = Mapper::new(MapperOptions::context_aware());
        let err = mapper.map(&cdfg, &config).unwrap_err();
        assert!(matches!(err, MapError::MemoryConstraint { .. }), "{err}");
    }

    #[test]
    fn all_flow_variants_map_the_kernel_on_hom64() {
        let cdfg = sum_squares(4, 80);
        let config = CgraConfig::hom64();
        for variant in FlowVariant::ALL {
            let mapper = Mapper::new(variant.options());
            let r = mapper
                .map(&cdfg, &config)
                .unwrap_or_else(|e| panic!("{variant}: {e}"));
            cmam_isa::assemble(&cdfg, &r.mapping, &config)
                .unwrap_or_else(|e| panic!("{variant}: {e}"));
        }
    }
}
