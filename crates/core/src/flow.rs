//! The whole-kernel mapping driver (Fig 4 of the paper).
//!
//! For every basic block (in forward or weighted traversal order), the
//! driver runs the population-based list-scheduling/binding loop:
//!
//! ```text
//! for op in priority order:
//!     candidates = { partial + (op -> tile, cycle) : feasible bindings }
//!     ACMAP filter          (if enabled)
//!     ECMAP filter          (if enabled)
//!     stochastic pruning    (population cap)
//! finalize (symbol commits, exact fit check), pick the cheapest mapping
//! ```
//!
//! and commits the winner's context-word usage, CRF contents and symbol
//! homes before moving to the next block.

use crate::options::{MapperOptions, Traversal};
use crate::partial::{FlowState, MapCtx, MapPre, Partial};
use crate::prune::stochastic_prune_by;
use crate::schedule::priority_order;
use cmam_arch::{CgraConfig, TileId};
use cmam_cdfg::analysis::{forward_order, weighted_order, DepGraph};
use cmam_cdfg::{BlockId, Cdfg, OpId, ValidateError};
use cmam_isa::KernelMapping;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Why a kernel could not be mapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The CDFG failed structural validation.
    Invalid(ValidateError),
    /// No feasible binding existed for an operation of `block` even after
    /// slack escalation (routing/recomputation exhausted).
    Unroutable {
        /// The failing block.
        block: BlockId,
    },
    /// Every candidate was pruned by the context-memory constraints — the
    /// kernel does not fit this configuration (the "zero" bars of
    /// Figs 6-8).
    MemoryConstraint {
        /// The failing block.
        block: BlockId,
        /// Which step rejected the last candidates (`"binding"`,
        /// `"ACMAP"`, `"ECMAP"` or `"finalize"`).
        step: &'static str,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Invalid(e) => write!(f, "invalid cdfg: {e}"),
            MapError::Unroutable { block } => {
                write!(f, "no feasible binding while mapping {block}")
            }
            MapError::MemoryConstraint { block, step } => {
                write!(
                    f,
                    "context-memory constraints unsatisfiable in {block} ({step})"
                )
            }
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for MapError {
    fn from(e: ValidateError) -> Self {
        MapError::Invalid(e)
    }
}

/// Search statistics of one mapping run (used by the Fig 9 compilation
/// effort comparison and by tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapStats {
    /// Candidate bindings generated (successful `try_place_op` calls).
    pub candidates: u64,
    /// Candidate bindings attempted (including failures).
    pub attempts: u64,
    /// Partials dropped by the ACMAP filter.
    pub acmap_pruned: u64,
    /// Partials dropped by the ECMAP filter.
    pub ecmap_pruned: u64,
    /// Partials dropped by the stochastic pruning.
    pub stochastic_pruned: u64,
    /// Partials that failed finalisation (commit or exact fit).
    pub finalize_failures: u64,
    /// Number of slack escalations needed.
    pub escalations: u64,
    /// Largest candidate pool alive at once (after binding expansion,
    /// before the memory filters) — the search's peak memory pressure,
    /// a timing-noise-free effort measure for Fig 9 and the DSE sweep.
    pub peak_population: u64,
    /// Trial bindings undone on the shared partial state during candidate
    /// expansion — every try that left a delta (surviving candidates and
    /// failed attempts alike) is rolled back rather than cloned away.
    /// Zero for mapper implementations that evaluate candidates on
    /// clones; together with `attempts` this measures how much work the
    /// try/undo scheme saves over clone-per-candidate.
    pub rollbacks: u64,
}

impl MapStats {
    /// Flushes this run's aggregated statistics into the global
    /// `mapper.*` metrics — called once per [`Mapper::map`], so the
    /// search loops themselves carry no metrics instructions. The totals
    /// are deterministic across thread counts because `MapStats` itself
    /// is (pinned by the golden-equivalence suite).
    pub fn flush_metrics(&self, failed: bool) {
        cmam_obs::counter!("mapper.maps").add(1);
        if failed {
            cmam_obs::counter!("mapper.map_failures").add(1);
        }
        cmam_obs::counter!("mapper.candidates").add(self.candidates);
        cmam_obs::counter!("mapper.attempts").add(self.attempts);
        cmam_obs::counter!("mapper.acmap_pruned").add(self.acmap_pruned);
        cmam_obs::counter!("mapper.ecmap_pruned").add(self.ecmap_pruned);
        cmam_obs::counter!("mapper.stochastic_pruned").add(self.stochastic_pruned);
        cmam_obs::counter!("mapper.finalize_failures").add(self.finalize_failures);
        cmam_obs::counter!("mapper.escalations").add(self.escalations);
        cmam_obs::counter!("mapper.rollbacks").add(self.rollbacks);
        cmam_obs::gauge!("mapper.peak_population").raise(self.peak_population as i64);
    }
}

/// A successful mapping plus its statistics.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// The mapping, ready for `cmam_isa::assemble`.
    pub mapping: KernelMapping,
    /// Search statistics.
    pub stats: MapStats,
}

/// The mapping engine. One instance is reusable across kernels and
/// configurations; each [`map`](Mapper::map) call is deterministic for the
/// options' seed.
#[derive(Debug, Clone, Default)]
pub struct Mapper {
    options: MapperOptions,
}

/// One successful trial binding: which parent it extends and where the op
/// goes, plus everything the downstream pipeline steps need (cost for
/// ranking, the memory-filter verdicts) — recorded while the delta was
/// applied, before it was rolled back. Only the candidates that survive
/// pruning are ever materialised into real [`Partial`]s.
struct Candidate {
    parent: u32,
    tile: TileId,
    cycle: u32,
    cost: (usize, usize),
    acmap_ok: bool,
    ecmap_ok: bool,
}

/// Search counters produced by one expansion shard; folded into
/// [`MapStats`] after the (sequential or parallel) round joins. Plain
/// integer sums, so the fold order cannot influence the totals.
#[derive(Debug, Clone, Copy, Default)]
struct ExpandStats {
    attempts: u64,
    candidates: u64,
    rollbacks: u64,
}

impl ExpandStats {
    fn absorb(&mut self, other: ExpandStats) {
        self.attempts += other.attempts;
        self.candidates += other.candidates;
        self.rollbacks += other.rollbacks;
    }
}

/// Expands one partial mapping for `op` at the given `slack`: the
/// tiles × cycles try/rollback loop, the per-candidate memory-filter
/// verdicts, and the per-partial expansion cut. **The** candidate
/// generator — the sequential path and every parallel beam shard call
/// exactly this function, which is what makes the parallel search
/// bit-identical to the sequential one by construction.
fn expand_partial(
    ctx: &MapCtx<'_>,
    deps: &DepGraph,
    tiles: &[TileId],
    op: OpId,
    slack: usize,
    pi: usize,
    partial: &mut Partial,
) -> (Vec<Candidate>, ExpandStats) {
    let geom = ctx.config.geometry();
    let mut st = ExpandStats::default();
    let earliest = partial.earliest_cycle(deps, op);
    let cp = partial.checkpoint();
    let mut local: Vec<Candidate> = Vec::new();
    for &tile in tiles {
        for cycle in earliest..=earliest + slack {
            st.attempts += 1;
            if partial.try_place_op(ctx, op, tile, cycle) {
                st.candidates += 1;
                // Evaluate the memory filters while the delta is applied —
                // O(1) per tile from the incremental counters.
                let acmap_ok = !ctx.options.acmap
                    || geom
                        .tiles()
                        .all(|t| partial.acmap_words(t) <= ctx.capacity(t));
                let ecmap_ok = !ctx.options.ecmap
                    || geom
                        .tiles()
                        .all(|t| partial.ecmap_words(t) <= ctx.capacity(t));
                local.push(Candidate {
                    parent: pi as u32,
                    tile,
                    cycle: cycle as u32,
                    cost: partial.cost(),
                    acmap_ok,
                    ecmap_ok,
                });
            }
            if partial.dirty_since(cp) {
                st.rollbacks += 1;
                partial.rollback(cp);
            }
        }
    }
    // Note the expansion cut happens *before* the memory filters, exactly
    // like the paper's Fig 4 pipeline (binding -> ACMAP -> stochastic
    // pruning): the memory-aware steps prune the partial-mapping set,
    // they do not re-rank the binder's candidates. This is what makes
    // over-constrained targets fail (the zero bars of Figs 6-8) instead
    // of being rescued by exhaustive candidate filtering. (Stable sort:
    // ties keep generation order, as when partials themselves were
    // sorted.)
    local.sort_by_key(|c| c.cost);
    local.truncate(ctx.options.expansion);
    (local, st)
}

/// The owned copy of one `map()` call's inputs that parallel beam shards
/// share through an `Arc`. Cloning the CDFG and configuration once per
/// `map()` call (graph-sized, microseconds) is what lets the shard jobs
/// be `'static` for the persistent [`cmam_pool`] workers — no borrow of
/// the caller's stack ever crosses a thread.
#[derive(Debug)]
struct SharedSearch {
    cdfg: Cdfg,
    config: CgraConfig,
    options: MapperOptions,
    pre: MapPre,
}

impl SharedSearch {
    fn ctx(&self, reserve: usize) -> MapCtx<'_> {
        MapCtx {
            cdfg: &self.cdfg,
            config: &self.config,
            options: &self.options,
            reserve,
            pre: &self.pre,
        }
    }
}

/// Handle for the intra-search beam parallelism: the shared inputs plus
/// the resolved thread count. Present only when
/// [`MapperOptions::effective_threads`] > 1.
struct BeamPool {
    shared: Arc<SharedSearch>,
    threads: usize,
}

/// Takes every partial back out of the per-index slots after a parallel
/// round joined, restoring the population in index order.
fn take_back(slots: &[Mutex<Option<Partial>>]) -> Vec<Partial> {
    slots
        .iter()
        .map(|s| {
            s.lock()
                .expect("beam slot poisoned")
                .take()
                .expect("every shard returned its partial")
        })
        .collect()
}

/// Wraps a population into the `Mutex<Option<_>>` slots parallel jobs
/// move their partials in and out of.
fn into_slots(population: Vec<Partial>) -> Arc<Vec<Mutex<Option<Partial>>>> {
    Arc::new(
        population
            .into_iter()
            .map(|p| Mutex::new(Some(p)))
            .collect(),
    )
}

impl BeamPool {
    /// One parallel expansion round: shards the `tiles × slack`
    /// try/rollback loop across the beam (one shard per live partial) and
    /// concatenates the per-partial candidate lists back **in partial
    /// index order** — the exact order the sequential loop produces.
    fn expand_round(
        &self,
        reserve: usize,
        deps: &Arc<DepGraph>,
        tiles: &Arc<Vec<TileId>>,
        op: OpId,
        slack: usize,
        population: Vec<Partial>,
    ) -> (Vec<Partial>, Vec<Candidate>, ExpandStats) {
        let n = population.len();
        let slots = into_slots(population);
        let job_slots = Arc::clone(&slots);
        let shared = Arc::clone(&self.shared);
        let deps = Arc::clone(deps);
        let tiles = Arc::clone(tiles);
        let results = cmam_pool::global().run_indexed(n, self.threads, move |i| {
            let ctx = shared.ctx(reserve);
            let mut p = job_slots[i]
                .lock()
                .expect("beam slot poisoned")
                .take()
                .expect("partial present");
            let out = expand_partial(&ctx, &deps, &tiles, op, slack, i, &mut p);
            *job_slots[i].lock().expect("beam slot poisoned") = Some(p);
            out
        });
        let population = take_back(&slots);
        let mut pool: Vec<Candidate> = Vec::new();
        let mut st = ExpandStats::default();
        for (local, s) in results {
            pool.extend(local);
            st.absorb(s);
        }
        (population, pool, st)
    }

    /// One parallel finalisation round: every surviving partial runs its
    /// (independent) symbol-commit + exact-fit trials on a shard; verdicts
    /// come back in partial index order.
    fn finalize_round(
        &self,
        reserve: usize,
        block: BlockId,
        population: Vec<Partial>,
    ) -> (Vec<Partial>, Vec<bool>) {
        let n = population.len();
        let slots = into_slots(population);
        let job_slots = Arc::clone(&slots);
        let shared = Arc::clone(&self.shared);
        let flags = cmam_pool::global().run_indexed(n, self.threads, move |i| {
            let ctx = shared.ctx(reserve);
            let mut p = job_slots[i]
                .lock()
                .expect("beam slot poisoned")
                .take()
                .expect("partial present");
            let ok = p.finalize(&ctx, block);
            *job_slots[i].lock().expect("beam slot poisoned") = Some(p);
            ok
        });
        (take_back(&slots), flags)
    }
}

impl Mapper {
    /// Creates a mapper with the given options.
    pub fn new(options: MapperOptions) -> Self {
        Mapper { options }
    }

    /// The options in use.
    pub fn options(&self) -> &MapperOptions {
        &self.options
    }

    /// Maps `cdfg` onto `config`.
    ///
    /// With [`MapperOptions::threads`] (or `CMAM_THREADS`) above 1 the
    /// candidate expansion and finalisation shard across the shared
    /// [`cmam_pool`] — the result is **bit-identical** to the sequential
    /// search for every thread count, because every shard runs the same
    /// per-partial generator, shards join in partial index order, and the
    /// only RNG consumer (the stochastic pruning) always runs
    /// sequentially on the ordered candidate pool.
    ///
    /// # Errors
    ///
    /// [`MapError::Invalid`] for malformed CDFGs, [`MapError::Unroutable`]
    /// when binding fails structurally, and [`MapError::MemoryConstraint`]
    /// when the context-memory constraints cannot be met (memory-aware
    /// flows only).
    pub fn map(&self, cdfg: &Cdfg, config: &CgraConfig) -> Result<MapResult, MapError> {
        let _span = cmam_obs::span!("map", blocks = cdfg.num_blocks() as u64);
        let mut stats = MapStats::default();
        let result = self.map_impl(cdfg, config, &mut stats);
        stats.flush_metrics(result.is_err());
        result.map(|mapping| MapResult { mapping, stats })
    }

    fn map_impl(
        &self,
        cdfg: &Cdfg,
        config: &CgraConfig,
        stats: &mut MapStats,
    ) -> Result<KernelMapping, MapError> {
        cdfg.validate()?;
        let order = match self.options.traversal {
            Traversal::Forward => forward_order(cdfg),
            Traversal::Weighted => weighted_order(cdfg),
        };
        let ntiles = config.geometry().num_tiles();
        let pre = MapPre::new(config);
        let threads = self.options.effective_threads();
        let beam = (threads > 1).then(|| BeamPool {
            shared: Arc::new(SharedSearch {
                cdfg: cdfg.clone(),
                config: config.clone(),
                options: self.options.clone(),
                pre: pre.clone(),
            }),
            threads,
        });
        let mut state = FlowState::new(ntiles);
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let mut blocks: Vec<Option<cmam_isa::BlockMapping>> = vec![None; cdfg.num_blocks()];
        // Retired partials whose allocations the survivor materialisation
        // reuses (see `map_block`); shared across blocks because every
        // partial of one run has identically sized tables.
        let mut pool_mem: Vec<Partial> = Vec::new();

        for (pos, &block) in order.iter().enumerate() {
            // Reserve one context word per tile for every block still to
            // be mapped (each costs at least a pnop everywhere).
            let ctx = MapCtx {
                cdfg,
                config,
                options: &self.options,
                reserve: order.len() - 1 - pos,
                pre: &pre,
            };
            let bm = self.map_block(
                &ctx,
                block,
                &mut state,
                &mut rng,
                stats,
                &mut pool_mem,
                beam.as_ref(),
            )?;
            blocks[block.0 as usize] = Some(bm);
        }

        let mapping = KernelMapping {
            blocks: blocks
                .into_iter()
                .map(|b| b.expect("all blocks mapped"))
                .collect(),
            symbol_homes: state.homes.clone(),
        };
        Ok(mapping)
    }

    #[allow(clippy::too_many_arguments)]
    fn map_block(
        &self,
        ctx: &MapCtx<'_>,
        block: BlockId,
        state: &mut FlowState,
        rng: &mut StdRng,
        stats: &mut MapStats,
        pool_mem: &mut Vec<Partial>,
        beam: Option<&BeamPool>,
    ) -> Result<cmam_isa::BlockMapping, MapError> {
        let dfg = ctx.cdfg.dfg(block);
        let deps = Arc::new(DepGraph::build(&dfg));
        let order = priority_order(&dfg, &deps);
        let _span = cmam_obs::span!(
            "map_block",
            block = block.0 as u64,
            ops = order.len() as u64
        );
        let tiles: Arc<Vec<TileId>> = Arc::new(ctx.config.geometry().tiles().collect());

        let mut population = vec![Partial::new(state, ctx)];

        for &op in &order {
            // Candidate generation with slack escalation. Every trial is
            // applied to the shared parent state and rolled back; cloning
            // happens only for pruning survivors below. With beam
            // parallelism on, the per-partial shards run concurrently and
            // join in partial index order — the pool below is identical
            // either way.
            let mut pool: Vec<Candidate> = Vec::new();
            for escalation in 0..3 {
                let slack = self.options.slack << (2 * escalation);
                if escalation > 0 {
                    stats.escalations += 1;
                }
                let round_stats = match beam {
                    Some(bp) if population.len() > 1 => {
                        let (pop, cands, st) = bp.expand_round(
                            ctx.reserve,
                            &deps,
                            &tiles,
                            op,
                            slack,
                            std::mem::take(&mut population),
                        );
                        population = pop;
                        pool = cands;
                        st
                    }
                    _ => {
                        let mut st = ExpandStats::default();
                        for (pi, partial) in population.iter_mut().enumerate() {
                            let (local, s) =
                                expand_partial(ctx, &deps, &tiles, op, slack, pi, partial);
                            pool.extend(local);
                            st.absorb(s);
                        }
                        st
                    }
                };
                stats.attempts += round_stats.attempts;
                stats.candidates += round_stats.candidates;
                stats.rollbacks += round_stats.rollbacks;
                if !pool.is_empty() {
                    break;
                }
            }
            if pool.is_empty() {
                // With memory awareness on, an empty pool usually means
                // the CAB blacklist / capacity reservation left no legal
                // tile — a constraint failure, not a routing failure.
                if self.options.memory_aware() {
                    return Err(MapError::MemoryConstraint {
                        block,
                        step: "binding",
                    });
                }
                return Err(MapError::Unroutable { block });
            }

            stats.peak_population = stats.peak_population.max(pool.len() as u64);

            // ACMAP / ECMAP filters: the verdicts were computed per
            // candidate at trial time; the filters reduce to retains.
            // ECMAP counts only candidates that survived ACMAP, like the
            // sequential filter pipeline did.
            if self.options.acmap {
                let before = pool.len();
                pool.retain(|c| c.acmap_ok);
                stats.acmap_pruned += (before - pool.len()) as u64;
                if pool.is_empty() {
                    return Err(MapError::MemoryConstraint {
                        block,
                        step: "ACMAP",
                    });
                }
            }
            if self.options.ecmap {
                let before = pool.len();
                pool.retain(|c| c.ecmap_ok);
                stats.ecmap_pruned += (before - pool.len()) as u64;
                if pool.is_empty() {
                    return Err(MapError::MemoryConstraint {
                        block,
                        step: "ECMAP",
                    });
                }
            }
            let before = pool.len();
            let chosen = stochastic_prune_by(pool, self.options.population, rng, |c| c.cost);
            stats.stochastic_pruned += (before - chosen.len()) as u64;

            // Materialise the survivors: re-apply each chosen delta onto
            // (a clone of) its parent. The last reference to a parent
            // takes it by move; buffers of never-chosen parents are
            // recycled through `pool_mem` instead of reallocated.
            let mut refs = vec![0u32; population.len()];
            for c in &chosen {
                refs[c.parent as usize] += 1;
            }
            let mut parents: Vec<Option<Partial>> = population.into_iter().map(Some).collect();
            let mut next: Vec<Partial> = Vec::with_capacity(chosen.len());
            for c in &chosen {
                let pi = c.parent as usize;
                refs[pi] -= 1;
                let mut p = if refs[pi] == 0 {
                    parents[pi].take().expect("last reference")
                } else {
                    let parent = parents[pi].as_ref().expect("parent still live");
                    match pool_mem.pop() {
                        Some(mut buf) => {
                            buf.clone_from(parent);
                            buf
                        }
                        None => parent.clone(),
                    }
                };
                let ok = p.try_place_op(ctx, op, c.tile, c.cycle as usize);
                debug_assert!(ok, "re-applying a proven-feasible binding");
                if !ok {
                    // A rolled-back trial failing on re-application would
                    // mean the journal is broken; never ship a corrupt
                    // mapping in release builds either.
                    return Err(MapError::Unroutable { block });
                }
                p.clear_journal();
                next.push(p);
            }
            // Recycle the allocations of parents nothing descended from.
            pool_mem.extend(parents.into_iter().flatten());
            population = next;
        }

        // Finalisation: symbol commits + exact feasibility. Each trial
        // only touches its own partial, so the surviving beam shards the
        // same way expansion did; verdicts join in partial index order.
        let (population, verdicts) = match beam {
            Some(bp) if population.len() > 1 => bp.finalize_round(ctx.reserve, block, population),
            _ => {
                let mut flags = Vec::with_capacity(population.len());
                for p in population.iter_mut() {
                    flags.push(p.finalize(ctx, block));
                }
                (population, flags)
            }
        };
        let mut finalized: Vec<Partial> = Vec::new();
        for (p, ok) in population.into_iter().zip(verdicts) {
            if ok {
                finalized.push(p);
            } else {
                stats.finalize_failures += 1;
            }
        }
        if finalized.is_empty() {
            return Err(MapError::MemoryConstraint {
                block,
                step: "finalize",
            });
        }
        finalized.sort_by_key(|p| (p.length(), p.cost()));
        let best = finalized.swap_remove(0);
        best.commit_into(state);
        Ok(best.into_block_mapping())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::FlowVariant;
    use cmam_cdfg::{CdfgBuilder, Opcode};

    /// acc = Σ mem[i]^2 over n elements, stored to mem[out].
    fn sum_squares(n: i32, out: i32) -> Cdfg {
        let mut b = CdfgBuilder::new("ssq");
        let b0 = b.block("entry");
        let b1 = b.block("body");
        let b2 = b.block("exit");
        let i = b.symbol("i");
        let acc = b.symbol("acc");
        b.select(b0);
        b.mov_const_to_symbol(0, i);
        b.mov_const_to_symbol(0, acc);
        b.jump(b1);
        b.select(b1);
        let iv = b.use_symbol(i);
        let av = b.use_symbol(acc);
        let x = b.load_name(iv, "x");
        let sq = b.op(Opcode::Mul, &[x, x]);
        let a2 = b.op(Opcode::Add, &[av, sq]);
        b.write_symbol(a2, acc);
        let one = b.constant(1);
        let i2 = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(i2, i);
        let nv = b.constant(n);
        let c = b.op(Opcode::Lt, &[i2, nv]);
        b.branch(c, b1, b2);
        b.select(b2);
        let av2 = b.use_symbol(acc);
        let o = b.constant(out);
        b.store(o, av2, "out");
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn basic_flow_maps_a_loop_kernel() {
        let cdfg = sum_squares(8, 100);
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(MapperOptions::basic());
        let r = mapper.map(&cdfg, &config).unwrap();
        assert_eq!(r.mapping.blocks.len(), 3);
        // Every op of every block is placed at least once.
        for b in cdfg.block_ids() {
            let dfg = cdfg.dfg(b);
            let bm = r.mapping.block(b);
            for &op in dfg.op_ids() {
                assert!(bm.ops.iter().any(|p| p.op == op), "{op} unplaced in {b}");
            }
        }
        // And the mapping assembles (the assembler re-validates everything).
        cmam_isa::assemble(&cdfg, &r.mapping, &config).unwrap();
    }

    #[test]
    fn context_aware_flow_maps_and_assembles_on_het2() {
        let cdfg = sum_squares(8, 100);
        let config = CgraConfig::het2();
        let mapper = Mapper::new(MapperOptions::context_aware());
        let r = mapper.map(&cdfg, &config).unwrap();
        let (_bin, report) = cmam_isa::assemble(&cdfg, &r.mapping, &config).unwrap();
        // The memory-aware flow guarantees the fit.
        for (t, cfg) in config.tiles() {
            assert!(report.words(t) <= cfg.cm_words, "{t} overflows");
        }
    }

    #[test]
    fn mapping_is_deterministic_for_a_seed() {
        let cdfg = sum_squares(6, 90);
        let config = CgraConfig::hom64();
        let mapper = Mapper::new(MapperOptions::basic());
        let a = mapper.map(&cdfg, &config).unwrap();
        let b = mapper.map(&cdfg, &config).unwrap();
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn impossible_memory_constraints_are_reported() {
        let cdfg = sum_squares(8, 100);
        // 2-word context memories cannot hold the loop body anywhere.
        let config = CgraConfig::builder(4, 4).uniform_cm(2).build().unwrap();
        let mapper = Mapper::new(MapperOptions::context_aware());
        let err = mapper.map(&cdfg, &config).unwrap_err();
        assert!(matches!(err, MapError::MemoryConstraint { .. }), "{err}");
    }

    #[test]
    fn all_flow_variants_map_the_kernel_on_hom64() {
        let cdfg = sum_squares(4, 80);
        let config = CgraConfig::hom64();
        for variant in FlowVariant::ALL {
            let mapper = Mapper::new(variant.options());
            let r = mapper
                .map(&cdfg, &config)
                .unwrap_or_else(|e| panic!("{variant}: {e}"));
            cmam_isa::assemble(&cdfg, &r.mapping, &config)
                .unwrap_or_else(|e| panic!("{variant}: {e}"));
        }
    }
}
