//! # cmam-core — the paper's contribution: CGRA mapping flows
//!
//! Implements the *basic* mapping flow of Das et al. (the baseline from
//! reference \[1\] of the paper) and the proposed **context-memory aware**
//! flow, as a set of independently toggleable steps so that every
//! experiment of the paper (Figs 5-10) can be reproduced:
//!
//! 1. **Weighted CDFG traversal** (Section III-D.1) — basic blocks mapped
//!    in descending `Wbb = n(s) + Σ f_s`;
//! 2. **ACMAP** (Section III-D.2) — approximate context-memory aware
//!    pruning of partial mappings before the stochastic pruning;
//! 3. **ECMAP** (Section III-D.3) — exact context-memory aware pruning at
//!    cycle boundaries;
//! 4. **CAB** (Section III-D.4) — constraint-aware binding: tiles with a
//!    full context memory are blacklisted from candidate generation.
//!
//! The binding is an exact incremental feasibility check against the
//! time-extended resource graph: every operand must be readable from the
//! executing tile's own or a direct neighbour's register file at the
//! scheduled cycle, with `move` instructions inserted over the torus when
//! it is not (re-routing), and producers duplicated near their consumers
//! when even that fails (re-computing). A population of partial mappings
//! is maintained and reduced by a seeded stochastic pruning step, exactly
//! as in the basic flow of the paper.
//!
//! The deviation from the paper (documented in `DESIGN.md`): the per-block
//! list scheduling here traverses the DFG *forward* (producers before
//! consumers) with the same priority function (mobility, then fan-outs)
//! instead of backward. Forward traversal makes every operand location
//! exact at bind time; the context-memory accounting this paper
//! contributes is unaffected.
//!
//! ```
//! use cmam_core::{Mapper, MapperOptions};
//! use cmam_arch::CgraConfig;
//! use cmam_cdfg::{CdfgBuilder, Opcode};
//!
//! let mut b = CdfgBuilder::new("axpy");
//! let bb = b.block("body");
//! b.select(bb);
//! let a0 = b.constant(0);
//! let a1 = b.constant(1);
//! let x = b.load_name(a0, "x");
//! let k = b.constant(3);
//! let kx = b.op(Opcode::Mul, &[k, x]);
//! b.store(a1, kx, "y");
//! b.ret();
//! let cdfg = b.finish()?;
//!
//! let config = CgraConfig::het2();
//! let mapper = Mapper::new(MapperOptions::context_aware());
//! let result = mapper.map(&cdfg, &config)?;
//! assert!(result.mapping.total_length() >= 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod flow;
pub mod options;
pub mod partial;
pub mod prune;
pub mod schedule;

pub use flow::{MapError, MapResult, MapStats, Mapper};
pub use options::{FlowVariant, MapperOptions, Traversal};
pub use partial::{MapPre, Partial};
pub use prune::{acmap_filter, ecmap_filter, stochastic_prune, stochastic_prune_by};
pub use schedule::priority_order;
