//! Mapper configuration: flow variants and tuning knobs.

use std::fmt;

/// CDFG traversal strategy (Section III-D.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Traversal {
    /// The basic flow's forward traversal (reverse post-order).
    #[default]
    Forward,
    /// The proposed weighted traversal: blocks in descending
    /// `Wbb = n(s) + Σ f_s`.
    Weighted,
}

/// The cumulative flow variants evaluated in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowVariant {
    /// Basic mapping of \[1\]: forward traversal, no memory awareness.
    Basic,
    /// Basic + weighted traversal (the Fig 5 comparison).
    Weighted,
    /// + approximate context-memory aware pruning (Fig 6).
    Acmap,
    /// + exact context-memory aware pruning (Fig 7).
    Ecmap,
    /// + constraint-aware binding (Fig 8) — the full proposed flow.
    Cab,
}

impl FlowVariant {
    /// All variants in the paper's cumulative order.
    pub const ALL: [FlowVariant; 5] = [
        FlowVariant::Basic,
        FlowVariant::Weighted,
        FlowVariant::Acmap,
        FlowVariant::Ecmap,
        FlowVariant::Cab,
    ];

    /// The option set for this variant (with default tuning knobs).
    pub fn options(self) -> MapperOptions {
        let mut o = MapperOptions::basic();
        if self != FlowVariant::Basic {
            o.traversal = Traversal::Weighted;
        }
        o.acmap = matches!(
            self,
            FlowVariant::Acmap | FlowVariant::Ecmap | FlowVariant::Cab
        );
        o.ecmap = matches!(self, FlowVariant::Ecmap | FlowVariant::Cab);
        o.cab = self == FlowVariant::Cab;
        o
    }
}

impl fmt::Display for FlowVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlowVariant::Basic => "basic",
            FlowVariant::Weighted => "basic+weighted",
            FlowVariant::Acmap => "basic+ACMAP",
            FlowVariant::Ecmap => "basic+ACMAP+ECMAP",
            FlowVariant::Cab => "basic+ACMAP+ECMAP+CAB",
        };
        f.write_str(s)
    }
}

/// All mapper knobs. Construct via [`MapperOptions::basic`],
/// [`MapperOptions::context_aware`] or [`FlowVariant::options`], then
/// adjust fields as needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapperOptions {
    /// CDFG traversal strategy.
    pub traversal: Traversal,
    /// Enable approximate context-memory aware pruning (filters the
    /// candidate pool before the stochastic pruning).
    pub acmap: bool,
    /// Enable exact context-memory aware pruning (filters on the exact
    /// word lower bound after every binding round).
    pub ecmap: bool,
    /// Enable constraint-aware binding (blacklist full tiles during
    /// candidate generation and routing).
    pub cab: bool,
    /// Maximum surviving partial mappings after stochastic pruning.
    pub population: usize,
    /// Maximum candidate placements kept per partial mapping per
    /// operation.
    pub expansion: usize,
    /// Extra cycles beyond the earliest feasible tried for each placement.
    pub slack: usize,
    /// Hard bound on a block's schedule length.
    pub max_schedule: usize,
    /// Seed of the stochastic pruning RNG (the flow is deterministic for a
    /// fixed seed).
    pub seed: u64,
    /// Worker threads for the intra-search beam parallelism (candidate
    /// expansion and finalisation sharded across the partial-mapping
    /// population). `0` means *auto*: the `CMAM_THREADS` environment
    /// variable if set, else 1 (sequential). The mapping produced is
    /// **bit-identical** for every thread count — see
    /// [`Mapper::map`](crate::Mapper::map) — so this knob trades wall
    /// clock only; it is deliberately excluded from the engine's job
    /// fingerprints.
    pub threads: usize,
}

impl MapperOptions {
    /// The basic (context-memory *unaware*) flow of \[1\].
    pub fn basic() -> Self {
        MapperOptions {
            traversal: Traversal::Forward,
            acmap: false,
            ecmap: false,
            cab: false,
            population: 24,
            expansion: 8,
            slack: 3,
            max_schedule: 512,
            seed: 0xC64A,
            threads: 0,
        }
    }

    /// The full proposed flow: weighted traversal + ACMAP + ECMAP + CAB.
    pub fn context_aware() -> Self {
        FlowVariant::Cab.options()
    }

    /// Whether any context-memory constraint step is active (the mapper
    /// then refuses mappings that overflow a tile's context memory).
    pub fn memory_aware(&self) -> bool {
        self.acmap || self.ecmap || self.cab
    }

    /// Resolves [`threads`](MapperOptions::threads): an explicit value
    /// wins, `0` falls back to `CMAM_THREADS` (ignored unless it parses
    /// to a positive integer) and finally to 1.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::env::var("CMAM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }
}

impl Default for MapperOptions {
    fn default() -> Self {
        MapperOptions::context_aware()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_cumulative() {
        let b = FlowVariant::Basic.options();
        assert_eq!(b.traversal, Traversal::Forward);
        assert!(!b.acmap && !b.ecmap && !b.cab);
        assert!(!b.memory_aware());

        let w = FlowVariant::Weighted.options();
        assert_eq!(w.traversal, Traversal::Weighted);
        assert!(!w.memory_aware());

        let a = FlowVariant::Acmap.options();
        assert!(a.acmap && !a.ecmap && !a.cab);

        let e = FlowVariant::Ecmap.options();
        assert!(e.acmap && e.ecmap && !e.cab);

        let c = FlowVariant::Cab.options();
        assert!(c.acmap && c.ecmap && c.cab);
        assert!(c.memory_aware());
    }

    #[test]
    fn default_is_full_flow() {
        assert_eq!(MapperOptions::default(), MapperOptions::context_aware());
    }

    #[test]
    fn display_labels() {
        assert_eq!(FlowVariant::Basic.to_string(), "basic");
        assert_eq!(FlowVariant::Cab.to_string(), "basic+ACMAP+ECMAP+CAB");
    }
}
