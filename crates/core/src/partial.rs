//! Partial mappings: the unit of the population-based search.
//!
//! A [`Partial`] is one in-progress mapping of the *current* basic block on
//! top of the committed state of previously mapped blocks (context words
//! already used per tile, CRF contents, symbol homes). It owns every
//! architectural feasibility rule of the binding:
//!
//! * one instruction per `(tile, cycle)` slot;
//! * memory operations only on LSU tiles;
//! * operands readable from the executing tile's own RF or a direct torus
//!   neighbour's RF, at a cycle after the value copy was written;
//! * register-file capacity via **live intervals**: a copy occupies a
//!   register from its write until its last read (every read extends the
//!   interval, and the extension must not push the overlap over the RF
//!   size); symbols occupy a persistent register at their home tile for
//!   the whole kernel, and pinning a home also respects the peak RF
//!   pressure of previously committed blocks;
//! * constant-register-file capacity (distinct constants per tile);
//! * **re-routing**: when no copy is reachable, a shortest chain of `move`
//!   instructions over free slots is inserted (the paper's first graph
//!   transformation);
//! * **re-computing**: when even routing fails, a producer whose operands
//!   are constants or symbol reads is duplicated next to the consumer (the
//!   paper's second graph transformation);
//! * symbol-variable location constraints: every symbol lives in one
//!   register of its home tile; old-value reads and the new-value commit
//!   are ordered so the home register is never overwritten early.
//!
//! The same struct computes the two context-memory metrics that drive the
//! paper's pruning steps: the [`acmap`](Partial::acmap_words) approximation
//! (instructions + interior idle runs) and the
//! [`ecmap`](Partial::ecmap_words) exact lower bound (instructions + all
//! idle runs in the current extent). Because filling an idle cycle can
//! never decrease `instructions + runs`, the ECMAP metric is a true lower
//! bound on the final context words of the tile — pruning on it never
//! discards a partial mapping that could still fit.

use crate::options::MapperOptions;
use cmam_arch::{CgraConfig, TileId};
use cmam_cdfg::analysis::DepGraph;
use cmam_cdfg::{BlockId, Cdfg, OpId, SymbolId, ValueId, ValueKind};
use cmam_isa::{BlockMapping, OperandSource, PlacedMove, PlacedOp};
use std::collections::{BTreeMap, HashMap};

/// Shared, immutable context for one mapping run.
#[derive(Debug, Clone, Copy)]
pub struct MapCtx<'a> {
    /// The kernel being mapped.
    pub cdfg: &'a Cdfg,
    /// The target CGRA.
    pub config: &'a CgraConfig,
    /// Flow options.
    pub options: &'a MapperOptions,
    /// Context words reserved per tile for blocks not yet mapped (every
    /// basic block costs each tile at least one word — an instruction or
    /// one pnop — so the flow must not let earlier blocks spend the whole
    /// budget).
    pub reserve: usize,
}

impl<'a> MapCtx<'a> {
    /// Effective context capacity of `tile` for the block being mapped.
    pub fn capacity(&self, tile: TileId) -> usize {
        self.config.tile(tile).cm_words.saturating_sub(self.reserve)
    }
}

/// Committed cross-block mapper state (updated after each block).
#[derive(Debug, Clone)]
pub struct FlowState {
    /// Context words already used per tile by previously mapped blocks.
    pub base_words: Vec<usize>,
    /// CRF contents per tile accumulated so far.
    pub crf: Vec<Vec<i32>>,
    /// Pinned symbol homes (sorted by symbol id, so every consumer
    /// observes a deterministic order).
    pub homes: BTreeMap<SymbolId, TileId>,
    /// Persistent (symbol) registers in use per tile.
    pub persistent_count: Vec<usize>,
    /// Peak block-local register pressure per tile over the committed
    /// blocks (pinning a new home must leave room for it).
    pub rf_pressure: Vec<usize>,
}

impl FlowState {
    /// Fresh state for a CGRA with `ntiles` tiles.
    pub fn new(ntiles: usize) -> Self {
        FlowState {
            base_words: vec![0; ntiles],
            crf: vec![Vec::new(); ntiles],
            homes: BTreeMap::new(),
            persistent_count: vec![0; ntiles],
            rf_pressure: vec![0; ntiles],
        }
    }
}

/// A block-local value copy living in a tile's register file during
/// `[start, end]` (write visible at `start`, last read at `end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CopyInterval {
    value: ValueId,
    start: usize,
    end: usize,
}

/// One partial mapping of the current block. Cheap to clone; the search
/// clones a partial per candidate placement and discards failures.
#[derive(Debug, Clone)]
pub struct Partial {
    ops: Vec<PlacedOp>,
    moves: Vec<PlacedMove>,
    /// Sorted occupied cycles per tile (this block only).
    occ: Vec<Vec<usize>>,
    /// Copies of each value: `(tile, ready_cycle)`, insertion-ordered.
    avail: HashMap<ValueId, Vec<(TileId, usize)>>,
    /// Live intervals of block-local copies per tile.
    intervals: Vec<Vec<CopyInterval>>,
    crf: Vec<Vec<i32>>,
    homes: BTreeMap<SymbolId, TileId>,
    persistent_count: Vec<usize>,
    /// Peak committed RF pressure per tile (from previous blocks).
    rf_pressure: Vec<usize>,
    /// Latest cycle at which the *old* value of a symbol was read from its
    /// home register in this block.
    last_home_read: HashMap<SymbolId, usize>,
    /// Accumulated distance from placed symbol-writing ops to their
    /// symbols' home tiles — the expected commit-routing cost (the
    /// paper's location constraints influencing the binding).
    commit_debt: usize,
    base_words: Vec<usize>,
    frontier: usize,
    length: usize,
}

impl Partial {
    /// Starts an empty partial mapping of a new block on top of `state`.
    pub fn new(state: &FlowState) -> Self {
        let n = state.base_words.len();
        Partial {
            ops: Vec::new(),
            moves: Vec::new(),
            occ: vec![Vec::new(); n],
            avail: HashMap::new(),
            intervals: vec![Vec::new(); n],
            crf: state.crf.clone(),
            homes: state.homes.clone(),
            persistent_count: state.persistent_count.clone(),
            rf_pressure: state.rf_pressure.clone(),
            last_home_read: HashMap::new(),
            commit_debt: 0,
            base_words: state.base_words.clone(),
            frontier: 0,
            length: 0,
        }
    }

    /// Placed operation instances so far.
    pub fn placed_ops(&self) -> &[PlacedOp] {
        &self.ops
    }

    /// Inserted moves so far.
    pub fn placed_moves(&self) -> &[PlacedMove] {
        &self.moves
    }

    /// Current symbol home assignment (including homes pinned by this
    /// partial).
    pub fn homes(&self) -> &BTreeMap<SymbolId, TileId> {
        &self.homes
    }

    /// Persistent register counts per tile.
    pub fn persistent_count(&self) -> &[usize] {
        &self.persistent_count
    }

    /// Per-tile CRF contents.
    pub fn crf(&self) -> &[Vec<i32>] {
        &self.crf
    }

    /// Current schedule extent (max occupied cycle + 1).
    pub fn frontier(&self) -> usize {
        self.frontier
    }

    /// Final schedule length; valid after [`finalize`](Partial::finalize).
    pub fn length(&self) -> usize {
        self.length
    }

    fn slot_free(&self, t: TileId, c: usize) -> bool {
        self.occ[t.0].binary_search(&c).is_err()
    }

    fn occupy(&mut self, t: TileId, c: usize) {
        let v = &mut self.occ[t.0];
        let pos = v.binary_search(&c).unwrap_err();
        v.insert(pos, c);
        self.frontier = self.frontier.max(c + 1);
    }

    /// Idle runs of `tile` within `[0, extent)`: `(interior, leading,
    /// trailing)` run counts.
    fn runs(&self, tile: TileId, extent: usize) -> (usize, usize, usize) {
        let occ = &self.occ[tile.0];
        if extent == 0 {
            return (0, 0, 0);
        }
        if occ.is_empty() {
            return (0, 1, 0); // one big leading run
        }
        let leading = usize::from(occ[0] > 0);
        let trailing = usize::from(*occ.last().unwrap() + 1 < extent);
        let interior = occ.windows(2).filter(|w| w[1] - w[0] > 1).count();
        (interior, leading, trailing)
    }

    /// Mapped instructions (ops + moves) of this block on `tile`.
    pub fn instr_count(&self, tile: TileId) -> usize {
        self.occ[tile.0].len()
    }

    /// ACMAP metric (Section III-D.2): committed words + instructions +
    /// *interior* idle runs only. An approximation — leading/trailing runs
    /// are ignored, so infeasible partials can survive this filter.
    pub fn acmap_words(&self, tile: TileId) -> usize {
        let (interior, _, _) = self.runs(tile, self.frontier);
        self.base_words[tile.0] + self.instr_count(tile) + interior
    }

    /// ECMAP metric (Section III-D.3): committed words + instructions +
    /// all idle runs in the current extent. A true lower bound of the
    /// tile's final context words.
    pub fn ecmap_words(&self, tile: TileId) -> usize {
        let (i, l, t) = self.runs(tile, self.frontier);
        self.base_words[tile.0] + self.instr_count(tile) + i + l + t
    }

    /// Exact context words of `tile` for a finished block of `length`
    /// cycles (matches `BlockMapping::context_words` plus the committed
    /// base).
    pub fn exact_words(&self, tile: TileId, length: usize) -> usize {
        let (i, l, t) = self.runs(tile, length);
        self.base_words[tile.0] + self.instr_count(tile) + i + l + t
    }

    /// CAB blacklist test (Section III-D.4): the tile cannot take any
    /// further instruction without overflowing its context memory.
    pub fn blacklisted(&self, ctx: &MapCtx<'_>, tile: TileId) -> bool {
        self.ecmap_words(tile) >= ctx.capacity(tile)
    }

    /// Block-local registers available on `tile` (RF minus persistent
    /// symbol registers).
    fn local_cap(&self, ctx: &MapCtx<'_>, tile: TileId) -> usize {
        ctx.config
            .tile(tile)
            .rf_words
            .saturating_sub(self.persistent_count[tile.0])
    }

    /// Number of live block-local copies on `tile` at `cycle`.
    fn occupancy(&self, tile: TileId, cycle: usize) -> usize {
        self.intervals[tile.0]
            .iter()
            .filter(|iv| iv.start <= cycle && cycle <= iv.end)
            .count()
    }

    /// Peak occupancy of `tile` over the whole block so far.
    fn max_overlap(&self, tile: TileId) -> usize {
        self.intervals[tile.0]
            .iter()
            .map(|iv| self.occupancy(tile, iv.start))
            .max()
            .unwrap_or(0)
    }

    /// Whether one more copy can be live on `tile` across `[from, to]`.
    fn range_has_room(&self, ctx: &MapCtx<'_>, tile: TileId, from: usize, to: usize) -> bool {
        let cap = self.local_cap(ctx, tile);
        (from..=to).all(|c| self.occupancy(tile, c) < cap)
    }

    /// Registers a copy of `v` on `tile` written at the end of cycle
    /// `ready - 1` (readable from `ready`). Fails when the RF is full at
    /// that point.
    fn try_add_copy(&mut self, ctx: &MapCtx<'_>, tile: TileId, v: ValueId, ready: usize) -> bool {
        if let Some(pos) = self.intervals[tile.0].iter().position(|iv| iv.value == v) {
            // Re-computed duplicate: widen the interval start if needed.
            let old_start = self.intervals[tile.0][pos].start;
            if ready < old_start {
                if !self.range_has_room(ctx, tile, ready, old_start.saturating_sub(1)) {
                    return false;
                }
                self.intervals[tile.0][pos].start = ready;
                if let Some(c) = self
                    .avail
                    .get_mut(&v)
                    .and_then(|c| c.iter_mut().find(|(t, _)| *t == tile))
                {
                    c.1 = ready;
                }
            }
            return true;
        }
        if !self.range_has_room(ctx, tile, ready, ready) {
            return false;
        }
        self.intervals[tile.0].push(CopyInterval {
            value: v,
            start: ready,
            end: ready,
        });
        self.avail.entry(v).or_default().push((tile, ready));
        true
    }

    /// Whether the copy of `v` on `tile` is the persistent home register
    /// of a symbol (not subject to interval accounting).
    fn is_home_copy(&self, ctx: &MapCtx<'_>, v: ValueId, tile: TileId) -> bool {
        matches!(
            ctx.cdfg.value(v).kind,
            ValueKind::SymbolUse(s) if self.homes.get(&s) == Some(&tile)
        )
    }

    /// Extends the live interval of the copy of `v` on `tile` to cover a
    /// read at `cycle`; fails when the extension would overflow the RF.
    fn try_extend_use(&mut self, ctx: &MapCtx<'_>, tile: TileId, v: ValueId, cycle: usize) -> bool {
        if self.is_home_copy(ctx, v, tile) {
            return true;
        }
        let Some(pos) = self.intervals[tile.0].iter().position(|iv| iv.value == v) else {
            return false;
        };
        let end = self.intervals[tile.0][pos].end;
        if cycle <= end {
            return true;
        }
        if !self.range_has_room(ctx, tile, end + 1, cycle) {
            return false;
        }
        self.intervals[tile.0][pos].end = cycle;
        true
    }

    /// Finds a copy of `v` readable by an instruction on `tile` at `cycle`
    /// (the tile itself or a direct neighbour), extending its live
    /// interval. Prefers the tile itself, then the lowest-id neighbour.
    fn acquire_read(
        &mut self,
        ctx: &MapCtx<'_>,
        v: ValueId,
        tile: TileId,
        cycle: usize,
    ) -> Option<TileId> {
        let geom = ctx.config.geometry();
        let mut candidates: Vec<(usize, TileId)> = self
            .avail
            .get(&v)?
            .iter()
            .filter(|&&(t, ready)| ready <= cycle && geom.distance(t, tile) <= 1)
            .map(|&(t, _)| (geom.distance(t, tile), t))
            .collect();
        candidates.sort();
        for (_, src) in candidates {
            if self.try_extend_use(ctx, src, v, cycle) {
                self.note_home_read(ctx, v, src, cycle);
                return Some(src);
            }
        }
        None
    }

    fn note_home_read(&mut self, ctx: &MapCtx<'_>, v: ValueId, src: TileId, cycle: usize) {
        if let ValueKind::SymbolUse(s) = ctx.cdfg.value(v).kind {
            if self.homes.get(&s) == Some(&src) {
                let e = self.last_home_read.entry(s).or_insert(0);
                *e = (*e).max(cycle);
            }
        }
    }

    /// Pins a home for symbol `s` near `preferred`; returns the home tile.
    ///
    /// The chosen tile must fit one more persistent register next to both
    /// the current block's peak local pressure *and* the peak pressure of
    /// every previously committed block.
    fn pin_home(&mut self, ctx: &MapCtx<'_>, s: SymbolId, preferred: TileId) -> Option<TileId> {
        let geom = ctx.config.geometry();
        let mut candidates: Vec<TileId> = vec![preferred];
        candidates.extend(geom.neighbors(preferred).into_iter().map(|(_, t)| t));
        // Fall back to every tile by distance, then id.
        let mut rest: Vec<TileId> = geom.tiles().filter(|t| !candidates.contains(t)).collect();
        rest.sort_by_key(|&t| (geom.distance(t, preferred), t));
        candidates.extend(rest);
        for home in candidates {
            let cap = ctx.config.tile(home).rf_words;
            let pressure = self.rf_pressure[home.0].max(self.max_overlap(home));
            if self.persistent_count[home.0] + pressure + 1 <= cap {
                self.persistent_count[home.0] += 1;
                self.homes.insert(s, home);
                // Writers of `s` placed before the home was known now have
                // a definite commit distance.
                let writer_debt: usize = self
                    .ops
                    .iter()
                    .filter(|po| ctx.cdfg.op(po.op).writes_symbol == Some(s))
                    .map(|po| geom.distance(po.tile, home))
                    .sum();
                self.commit_debt += writer_debt;
                return Some(home);
            }
        }
        None
    }

    /// Makes `v` readable at `(tile, cycle)`: ensures a copy of `v` exists
    /// on `tile` or one of its neighbours, ready by `cycle`, inserting
    /// `move` instructions if needed. Returns the source tile.
    ///
    /// Mutates `self` on both success and failure: callers must work on a
    /// clone and discard it when this returns `None`.
    fn ensure_readable(
        &mut self,
        ctx: &MapCtx<'_>,
        v: ValueId,
        tile: TileId,
        cycle: usize,
    ) -> Option<TileId> {
        // Symbol reads come from the home register: seed the home copy on
        // first encounter in this block, pinning an unpinned home at the
        // consumer.
        if let ValueKind::SymbolUse(s) = ctx.cdfg.value(v).kind {
            let home = match self.homes.get(&s) {
                Some(&h) => h,
                None => self.pin_home(ctx, s, tile)?,
            };
            let seeded = self
                .avail
                .get(&v)
                .is_some_and(|c| c.iter().any(|&(t, _)| t == home));
            if !seeded {
                // The home copy lives in a persistent register, not a
                // block-local one, so it carries no live interval.
                self.avail.entry(v).or_default().push((home, 0));
            }
        }
        if let Some(src) = self.acquire_read(ctx, v, tile, cycle) {
            return Some(src);
        }
        let src = self.route_value(ctx, v, tile, cycle)?;
        // The consumer's read at `cycle` must keep the routed copy alive.
        if !self.try_extend_use(ctx, src, v, cycle) {
            return None;
        }
        self.note_home_read(ctx, v, src, cycle);
        Some(src)
    }

    /// Re-routing transformation: inserts a shortest chain of moves over
    /// free slots so that a copy of `v` is readable by `(dest, need)`.
    /// Returns the tile the consumer should read from.
    fn route_value(
        &mut self,
        ctx: &MapCtx<'_>,
        v: ValueId,
        dest: TileId,
        need: usize,
    ) -> Option<TileId> {
        let geom = ctx.config.geometry();
        let starts: Vec<(TileId, usize)> = self
            .avail
            .get(&v)
            .map(|c| {
                c.iter()
                    .filter(|&&(_, ready)| ready < need)
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        if starts.is_empty() {
            return None;
        }
        // BFS by move count over tiles; per tile keep the earliest ready.
        #[derive(Clone, Copy)]
        struct Visit {
            ready: usize,
            prev: Option<(TileId, usize)>, // (prev tile, move cycle)
        }
        let mut visited: HashMap<TileId, Visit> = HashMap::new();
        let mut queue: std::collections::VecDeque<TileId> = Default::default();
        for &(t, ready) in &starts {
            let better = visited.get(&t).is_none_or(|x| ready < x.ready);
            if better {
                visited.insert(t, Visit { ready, prev: None });
                queue.push_back(t);
            }
        }
        let mut goal: Option<TileId> = None;
        'bfs: while let Some(x) = queue.pop_front() {
            let vx = visited[&x];
            let mut neighbors = geom.neighbors(x);
            neighbors.sort_by_key(|&(_, t)| t);
            for (_, y) in neighbors {
                if visited.contains_key(&y) {
                    continue;
                }
                if ctx.options.cab && self.blacklisted(ctx, y) {
                    continue;
                }
                // Earliest free slot m on y with ready <= m < need whose
                // destination RF has room for the new copy.
                let mut m = vx.ready;
                let slot = loop {
                    if m >= need {
                        break None;
                    }
                    if m >= ctx.options.max_schedule {
                        break None;
                    }
                    if self.slot_free(y, m) && self.range_has_room(ctx, y, m + 1, m + 1) {
                        break Some(m);
                    }
                    m += 1;
                };
                let Some(m) = slot else { continue };
                visited.insert(
                    y,
                    Visit {
                        ready: m + 1,
                        prev: Some((x, m)),
                    },
                );
                if geom.distance(y, dest) <= 1 {
                    goal = Some(y);
                    break 'bfs;
                }
                queue.push_back(y);
            }
        }
        let goal = goal?;
        // Reconstruct and apply the move chain from the start copy.
        let mut chain: Vec<(TileId, TileId, usize)> = Vec::new(); // (src, dst, cycle)
        let mut cur = goal;
        while let Some((prev, m)) = visited[&cur].prev {
            chain.push((prev, cur, m));
            cur = prev;
        }
        chain.reverse();
        for &(src, dst, m) in &chain {
            // Each hop reads the previous copy at cycle m (extending its
            // interval) and writes a new copy on dst.
            if !self.try_extend_use(ctx, src, v, m) {
                return None;
            }
            self.note_home_read(ctx, v, src, m);
            if !self.try_add_copy(ctx, dst, v, m + 1) {
                return None;
            }
            self.occupy(dst, m);
            self.moves.push(PlacedMove {
                value: v,
                src_tile: src,
                tile: dst,
                cycle: m,
                commit_symbol: None,
            });
        }
        // The consumer's read extends the goal copy via the caller.
        Some(goal)
    }

    /// Re-computing transformation: duplicates `producer` (a non-memory op
    /// whose operands are constants or symbol reads) on `tile` or one of
    /// its neighbours before `before`, making its result locally
    /// available.
    fn try_recompute(
        &mut self,
        ctx: &MapCtx<'_>,
        producer: OpId,
        tile: TileId,
        before: usize,
    ) -> bool {
        let op = ctx.cdfg.op(producer);
        if op.opcode.is_memory()
            || op.opcode.is_branch()
            || op.result.is_none()
            || op.writes_symbol.is_some()
        {
            return false;
        }
        // Depth-1 only: every operand must be a constant or a pinned
        // symbol whose home is adjacent to the duplicate's tile.
        let geom = ctx.config.geometry();
        let mut sites: Vec<TileId> = vec![tile];
        sites.extend(geom.neighbors(tile).into_iter().map(|(_, t)| t));
        'site: for t2 in sites {
            if ctx.options.cab && self.blacklisted(ctx, t2) {
                continue;
            }
            // Check operands are resolvable at t2 without routing.
            let mut sources = Vec::with_capacity(op.args.len());
            for &a in &op.args {
                match ctx.cdfg.value(a).kind {
                    ValueKind::Const(c) => {
                        let in_crf = self.crf[t2.0].contains(&c);
                        if !in_crf && self.crf[t2.0].len() >= ctx.config.tile(t2).crf_words {
                            continue 'site;
                        }
                        sources.push(OperandSource::Const(c));
                    }
                    ValueKind::SymbolUse(s) => {
                        let Some(&home) = self.homes.get(&s) else {
                            continue 'site;
                        };
                        if geom.distance(home, t2) > 1 {
                            continue 'site;
                        }
                        sources.push(OperandSource::Rf {
                            tile: home,
                            value: a,
                        });
                    }
                    ValueKind::Def(_) => continue 'site,
                }
            }
            // Earliest free slot before `before` with RF room for the
            // duplicated result.
            let mut c2 = 0;
            let slot = loop {
                if c2 >= before {
                    break None;
                }
                if self.slot_free(t2, c2) && self.range_has_room(ctx, t2, c2 + 1, c2 + 1) {
                    break Some(c2);
                }
                c2 += 1;
            };
            let Some(c2) = slot else { continue };
            // Apply.
            for (i, src) in sources.iter().enumerate() {
                match *src {
                    OperandSource::Const(c) => {
                        if !self.crf[t2.0].contains(&c) {
                            self.crf[t2.0].push(c);
                        }
                    }
                    OperandSource::Rf { tile: home, value } => {
                        let _ = i;
                        self.note_home_read(ctx, value, home, c2);
                    }
                }
            }
            let result = op.result.expect("checked above");
            if !self.try_add_copy(ctx, t2, result, c2 + 1) {
                continue;
            }
            self.occupy(t2, c2);
            self.ops.push(PlacedOp {
                op: producer,
                tile: t2,
                cycle: c2,
                operands: sources,
                direct_symbol_write: false,
            });
            return true;
        }
        false
    }

    /// Attempts to bind `op` on `(tile, cycle)`, resolving all operands
    /// (inserting moves / re-computations as needed). Returns `false` on
    /// infeasibility; the state is then dirty, so callers must work on a
    /// clone.
    pub fn try_place_op(
        &mut self,
        ctx: &MapCtx<'_>,
        op_id: OpId,
        tile: TileId,
        cycle: usize,
    ) -> bool {
        let op = ctx.cdfg.op(op_id);
        if cycle >= ctx.options.max_schedule {
            return false;
        }
        if !self.slot_free(tile, cycle) {
            return false;
        }
        if op.opcode.is_memory() && !ctx.config.tile(tile).has_lsu {
            return false;
        }
        if ctx.options.cab && self.blacklisted(ctx, tile) {
            return false;
        }
        let mut sources = Vec::with_capacity(op.args.len());
        for &a in &op.args {
            match ctx.cdfg.value(a).kind {
                ValueKind::Const(c) => {
                    let in_crf = self.crf[tile.0].contains(&c);
                    if !in_crf {
                        if self.crf[tile.0].len() >= ctx.config.tile(tile).crf_words {
                            return false;
                        }
                        self.crf[tile.0].push(c);
                    }
                    sources.push(OperandSource::Const(c));
                }
                _ => {
                    let src = match self.ensure_readable(ctx, a, tile, cycle) {
                        Some(s) => s,
                        None => {
                            // Re-computing transformation, then retry.
                            let producer = match ctx.cdfg.value(a).kind {
                                ValueKind::Def(p) => p,
                                _ => return false,
                            };
                            if !self.try_recompute(ctx, producer, tile, cycle) {
                                return false;
                            }
                            match self.acquire_read(ctx, a, tile, cycle) {
                                Some(s) => s,
                                None => return false,
                            }
                        }
                    };
                    sources.push(OperandSource::Rf {
                        tile: src,
                        value: a,
                    });
                }
            }
        }
        if let Some(r) = op.result {
            if !self.try_add_copy(ctx, tile, r, cycle + 1) {
                return false;
            }
        }
        self.occupy(tile, cycle);
        if let Some(s) = op.writes_symbol {
            if let Some(&home) = self.homes.get(&s) {
                self.commit_debt += ctx.config.geometry().distance(tile, home);
            }
        }
        self.ops.push(PlacedOp {
            op: op_id,
            tile,
            cycle,
            operands: sources,
            direct_symbol_write: false,
        });
        true
    }

    /// Earliest feasible cycle for `op` given its placed dependency
    /// predecessors (their first-instance cycles + 1).
    pub fn earliest_cycle(&self, deps: &DepGraph, op: OpId) -> usize {
        deps.preds_of(op)
            .iter()
            .map(|p| {
                self.ops
                    .iter()
                    .filter(|po| po.op == *p)
                    .map(|po| po.cycle + 1)
                    .min()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Completes the block: resolves symbol writes (direct-write elision
    /// or commit moves), fixes the final schedule length, and — when the
    /// flow is memory-aware — verifies the exact per-tile context words
    /// against the configuration. Returns `false` when the partial cannot
    /// be completed; the state is then dirty.
    pub fn finalize(&mut self, ctx: &MapCtx<'_>, block: BlockId) -> bool {
        let dfg = ctx.cdfg.dfg(block);
        let writes: Vec<(OpId, SymbolId, ValueId)> = dfg
            .ops()
            .filter_map(|o| {
                o.writes_symbol
                    .map(|s| (o.id, s, o.result.expect("writers have results")))
            })
            .collect();
        for (op_id, s, v) in writes {
            let home = match self.homes.get(&s) {
                Some(&h) => h,
                None => {
                    // First touch is a write: pin at the producer's tile.
                    let site = self
                        .ops
                        .iter()
                        .find(|po| po.op == op_id)
                        .map(|po| po.tile)
                        .expect("producer was placed");
                    match self.pin_home(ctx, s, site) {
                        Some(h) => h,
                        None => return false,
                    }
                }
            };
            let lhr = self.last_home_read.get(&s).copied().unwrap_or(0);
            // Commit-move elision: a producer instance on the home tile
            // whose write happens no earlier than the last old-value read.
            if let Some(idx) = self
                .ops
                .iter()
                .position(|po| po.op == op_id && po.tile == home && po.cycle >= lhr)
            {
                self.ops[idx].direct_symbol_write = true;
                continue;
            }
            // Commit move on the home tile.
            let mut committed = false;
            for c in lhr..ctx.options.max_schedule {
                if !self.slot_free(home, c) {
                    continue;
                }
                {
                    let mut trial = self.clone();
                    if let Some(src) = trial.acquire_read(ctx, v, home, c) {
                        trial.occupy(home, c);
                        trial.moves.push(PlacedMove {
                            value: v,
                            src_tile: src,
                            tile: home,
                            cycle: c,
                            commit_symbol: Some(s),
                        });
                        *self = trial;
                        committed = true;
                        break;
                    }
                }
                // Try routing the value into the home neighbourhood first.
                let mut trial = self.clone();
                if let Some(src) = trial.route_value(ctx, v, home, c) {
                    if trial.slot_free(home, c) && trial.try_extend_use(ctx, src, v, c) {
                        trial.occupy(home, c);
                        trial.moves.push(PlacedMove {
                            value: v,
                            src_tile: src,
                            tile: home,
                            cycle: c,
                            commit_symbol: Some(s),
                        });
                        *self = trial;
                        committed = true;
                        break;
                    }
                }
            }
            if !committed {
                return false;
            }
        }
        self.length = self.frontier.max(1);
        if ctx.options.memory_aware() {
            for t in ctx.config.geometry().tiles() {
                if self.exact_words(t, self.length) > ctx.capacity(t) {
                    return false;
                }
            }
        }
        true
    }

    /// Search cost: `(schedule extent, move count + commit debt)` —
    /// lexicographically
    /// smaller is better. Deliberately **context-memory unaware**, like the
    /// basic flow of the paper: the cost drives latency and routing effort
    /// only, so placements cluster around the operand sources (the
    /// load/store tiles become the hot spots of Fig 2) and the memory
    /// constraints enter exclusively through the ACMAP/ECMAP/CAB pruning
    /// steps.
    pub fn cost(&self) -> (usize, usize) {
        (self.frontier, self.moves.len() + self.commit_debt)
    }

    /// Converts the finished partial into its [`BlockMapping`].
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`finalize`](Partial::finalize).
    pub fn into_block_mapping(self) -> BlockMapping {
        assert!(self.length > 0, "finalize the partial first");
        BlockMapping {
            length: self.length,
            ops: self.ops,
            moves: self.moves,
        }
    }

    /// Commits this partial's kernel-wide state into `state` (called for
    /// the selected winner of a block).
    pub fn commit_into(&self, state: &mut FlowState) {
        for i in 0..state.base_words.len() {
            let t = TileId(i);
            state.base_words[i] = self.exact_words(t, self.length);
            state.rf_pressure[i] = state.rf_pressure[i].max(self.max_overlap(t));
        }
        state.crf = self.crf.clone();
        state.homes = self.homes.clone();
        state.persistent_count = self.persistent_count.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::MapperOptions;
    use cmam_cdfg::{CdfgBuilder, Opcode};

    fn ctx_objects() -> (Cdfg, CgraConfig, MapperOptions) {
        let mut b = CdfgBuilder::new("t");
        let bb = b.block("b");
        b.select(bb);
        let a0 = b.constant(0);
        let x = b.load_name(a0, "m");
        let y = b.op(Opcode::Add, &[x, x]);
        let a1 = b.constant(1);
        b.store(a1, y, "m");
        b.ret();
        (
            b.finish().unwrap(),
            CgraConfig::hom64(),
            MapperOptions::basic(),
        )
    }

    #[test]
    fn place_and_read_same_tile() {
        let (cdfg, config, options) = ctx_objects();
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0)); // load
        assert!(p.try_place_op(&ctx, ops[1], TileId(0), 1)); // add reads r
        assert!(p.try_place_op(&ctx, ops[2], TileId(0), 2)); // store
        assert_eq!(p.placed_moves().len(), 0);
        assert_eq!(p.frontier(), 3);
        // Occupied slots cannot be reused.
        assert!(!p.clone().try_place_op(&ctx, ops[1], TileId(0), 0));
    }

    #[test]
    fn distant_read_inserts_moves() {
        let (cdfg, config, options) = ctx_objects();
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        // Load at T1.
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0));
        // Add placed on tile 10 (distance 4): needs a 3-move chain arriving
        // by cycle 4 at a neighbour of tile 10.
        assert!(p.try_place_op(&ctx, ops[1], TileId(10), 4));
        assert_eq!(p.placed_moves().len(), 3);
        // Store back on an LSU tile.
        assert!(p.try_place_op(&ctx, ops[2], TileId(6), 6));
    }

    #[test]
    fn memory_ops_rejected_on_compute_tiles() {
        let (cdfg, config, options) = ctx_objects();
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(!p.try_place_op(&ctx, ops[0], TileId(12), 0));
    }

    #[test]
    fn too_early_read_fails_even_with_routing() {
        let (cdfg, config, options) = ctx_objects();
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0));
        // Result ready at cycle 1; reading it at distance 4 at cycle 1 is
        // impossible (and the add is not recomputable since its operand is
        // a load result).
        assert!(!p.clone().try_place_op(&ctx, ops[1], TileId(10), 1));
    }

    #[test]
    fn words_metrics_track_runs() {
        let (cdfg, config, options) = ctx_objects();
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0));
        assert!(p.try_place_op(&ctx, ops[1], TileId(0), 3)); // gap 1-2
        let t0 = TileId(0);
        // 2 instructions + 1 interior run.
        assert_eq!(p.acmap_words(t0), 3);
        // No leading/trailing at frontier 4... interior only.
        assert_eq!(p.ecmap_words(t0), 3);
        // An idle tile costs one leading run under ECMAP but zero under
        // ACMAP.
        let t5 = TileId(5);
        assert_eq!(p.acmap_words(t5), 0);
        assert_eq!(p.ecmap_words(t5), 1);
        let _ = ctx;
    }

    #[test]
    fn symbol_write_elision_and_commit() {
        // Block reading and writing symbol i: i2 = i + 1.
        let mut b = CdfgBuilder::new("sym");
        let bb = b.block("b");
        let s = b.symbol("i");
        b.select(bb);
        let iv = b.use_symbol(s);
        let one = b.constant(1);
        let i2 = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(i2, s);
        b.ret();
        let cdfg = b.finish().unwrap();
        let config = CgraConfig::hom64();
        let options = MapperOptions::basic();
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state);
        let ops: Vec<OpId> = cdfg.dfg(bb).op_ids().to_vec();
        // Place the add on tile 3: the unpinned symbol gets pinned there.
        assert!(p.try_place_op(&ctx, ops[0], TileId(3), 0));
        assert_eq!(p.homes()[&s], TileId(3));
        assert!(p.finalize(&ctx, bb));
        // Producer sits on the home tile: the write is elided into a
        // direct write, no commit move.
        let bm = p.into_block_mapping();
        assert_eq!(bm.moves.len(), 0);
        assert!(bm.ops.iter().any(|o| o.direct_symbol_write));
    }

    #[test]
    fn commit_move_inserted_when_producer_far_from_home() {
        let mut b = CdfgBuilder::new("sym2");
        let bb = b.block("b");
        let s = b.symbol("x");
        b.select(bb);
        let xv = b.use_symbol(s);
        let one = b.constant(1);
        let x2 = b.op(Opcode::Add, &[xv, one]);
        b.write_symbol(x2, s);
        b.ret();
        let cdfg = b.finish().unwrap();
        let config = CgraConfig::hom64();
        let options = MapperOptions::basic();
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
        };
        let mut state = FlowState::new(16);
        // Pre-pin the home far from where we will place the producer.
        state.homes.insert(s, TileId(0));
        state.persistent_count[0] = 1;
        let mut p = Partial::new(&state);
        let ops: Vec<OpId> = cdfg.dfg(bb).op_ids().to_vec();
        // Producer on tile 10 (distance 4 from home 0); reading the symbol
        // from home needs moves, and committing back needs more.
        assert!(p.try_place_op(&ctx, ops[0], TileId(10), 4));
        assert!(p.finalize(&ctx, bb));
        let bm = p.into_block_mapping();
        let commit = bm
            .moves
            .iter()
            .filter(|m| m.commit_symbol == Some(s))
            .count();
        assert_eq!(commit, 1);
        assert!(bm.moves.len() >= 4, "read route + commit route");
        assert!(!bm.ops.iter().any(|o| o.direct_symbol_write));
    }

    #[test]
    fn ecmap_is_lower_bound_of_final_words() {
        let (cdfg, config, options) = ctx_objects();
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0));
        let before: Vec<usize> = (0..16).map(|i| p.ecmap_words(TileId(i))).collect();
        assert!(p.try_place_op(&ctx, ops[1], TileId(1), 3));
        assert!(p.try_place_op(&ctx, ops[2], TileId(1), 5));
        assert!(p.finalize(&ctx, cmam_cdfg::BlockId(0)));
        for i in 0..16 {
            let t = TileId(i);
            assert!(
                before[i] <= p.exact_words(t, p.length()),
                "tile {t}: {} > {}",
                before[i],
                p.exact_words(t, p.length())
            );
        }
    }
}
