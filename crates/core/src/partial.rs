//! Partial mappings: the unit of the population-based search.
//!
//! A [`Partial`] is one in-progress mapping of the *current* basic block on
//! top of the committed state of previously mapped blocks (context words
//! already used per tile, CRF contents, symbol homes). It owns every
//! architectural feasibility rule of the binding:
//!
//! * one instruction per `(tile, cycle)` slot;
//! * memory operations only on LSU tiles;
//! * operands readable from the executing tile's own RF or a direct torus
//!   neighbour's RF, at a cycle after the value copy was written;
//! * register-file capacity via **live intervals**: a copy occupies a
//!   register from its write until its last read (every read extends the
//!   interval, and the extension must not push the overlap over the RF
//!   size); symbols occupy a persistent register at their home tile for
//!   the whole kernel, and pinning a home also respects the peak RF
//!   pressure of previously committed blocks;
//! * constant-register-file capacity (distinct constants per tile);
//! * **re-routing**: when no copy is reachable, a shortest chain of `move`
//!   instructions over free slots is inserted (the paper's first graph
//!   transformation);
//! * **re-computing**: when even routing fails, a producer whose operands
//!   are constants or symbol reads is duplicated next to the consumer (the
//!   paper's second graph transformation);
//! * symbol-variable location constraints: every symbol lives in one
//!   register of its home tile; old-value reads and the new-value commit
//!   are ordered so the home register is never overwritten early.
//!
//! The same struct computes the two context-memory metrics that drive the
//! paper's pruning steps: the [`acmap`](Partial::acmap_words) approximation
//! (instructions + interior idle runs) and the
//! [`ecmap`](Partial::ecmap_words) exact lower bound (instructions + all
//! idle runs in the current extent). Because filling an idle cycle can
//! never decrease `instructions + runs`, the ECMAP metric is a true lower
//! bound on the final context words of the tile — pruning on it never
//! discards a partial mapping that could still fit.
//!
//! # Data layout (hot-loop representation)
//!
//! All per-candidate state is **flat and index-keyed** so feasibility
//! checks are O(1) loads, never hashes:
//!
//! * slot occupancy is a per-tile bitset (`occ_bits`, row-major `u64`
//!   words) with **incrementally maintained** per-tile instruction
//!   counts, interior-idle-run counts and first/last occupied cycles, so
//!   `acmap_words`/`ecmap_words`/`exact_words` are table lookups;
//! * value copies live in a dense `ValueId`-indexed table (`avail`);
//! * RF pressure is a row-major per-`(tile, cycle)` live-copy count
//!   (`rf_count`) plus a per-tile running peak, updated on every interval
//!   insertion/extension;
//! * symbol homes and last-home-read cycles are dense
//!   `SymbolId`-indexed tables; the first placed cycle of every op is a
//!   dense `OpId`-indexed table (for O(preds) dependency slack).
//!
//! Candidate evaluation is **clone-free**: every mutation appends an
//! inverse record to an undo journal, so the search tries a binding on
//! the shared parent state ([`Partial::try_place_op`]), records its cost
//! and metrics, and [rolls back](Partial::rollback) to the
//! [checkpoint](Partial::checkpoint) — cloning only the few survivors
//! that enter the next population (see `flow.rs`).

use crate::options::MapperOptions;
use cmam_arch::{CgraConfig, TileId};
use cmam_cdfg::analysis::DepGraph;
use cmam_cdfg::{BlockId, Cdfg, OpId, SymbolId, ValueId, ValueKind};
use cmam_isa::{BlockMapping, OperandSource, PlacedMove, PlacedOp};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Immutable per-`map()` precomputation: the torus neighbourhoods in the
/// two orders the binder consumes, so the hot loop never re-derives (or
/// re-allocates) them per call.
#[derive(Debug, Clone)]
pub struct MapPre {
    /// Per tile: neighbours in `Direction::ALL` (N,E,S,W) order,
    /// deduplicated — the order home pinning and re-computation probe
    /// sites.
    nbr_dir: Vec<Vec<TileId>>,
    /// Per tile: the same neighbours sorted by ascending tile id — the
    /// order the routing BFS expands.
    nbr_sorted: Vec<Vec<TileId>>,
}

impl MapPre {
    /// Precomputes the neighbourhood tables of `config`'s geometry.
    pub fn new(config: &CgraConfig) -> Self {
        let geom = config.geometry();
        let mut nbr_dir = Vec::with_capacity(geom.num_tiles());
        let mut nbr_sorted = Vec::with_capacity(geom.num_tiles());
        for t in geom.tiles() {
            let dir: Vec<TileId> = geom.neighbors(t).into_iter().map(|(_, n)| n).collect();
            let mut sorted = dir.clone();
            sorted.sort_unstable();
            nbr_dir.push(dir);
            nbr_sorted.push(sorted);
        }
        MapPre {
            nbr_dir,
            nbr_sorted,
        }
    }
}

/// Shared, immutable context for one mapping run.
#[derive(Debug, Clone, Copy)]
pub struct MapCtx<'a> {
    /// The kernel being mapped.
    pub cdfg: &'a Cdfg,
    /// The target CGRA.
    pub config: &'a CgraConfig,
    /// Flow options.
    pub options: &'a MapperOptions,
    /// Context words reserved per tile for blocks not yet mapped (every
    /// basic block costs each tile at least one word — an instruction or
    /// one pnop — so the flow must not let earlier blocks spend the whole
    /// budget).
    pub reserve: usize,
    /// Precomputed neighbourhood tables (see [`MapPre`]).
    pub pre: &'a MapPre,
}

impl<'a> MapCtx<'a> {
    /// Effective context capacity of `tile` for the block being mapped.
    pub fn capacity(&self, tile: TileId) -> usize {
        self.config.tile(tile).cm_words.saturating_sub(self.reserve)
    }
}

/// Committed cross-block mapper state (updated after each block).
#[derive(Debug, Clone)]
pub struct FlowState {
    /// Context words already used per tile by previously mapped blocks.
    pub base_words: Vec<usize>,
    /// CRF contents per tile accumulated so far.
    pub crf: Vec<Vec<i32>>,
    /// Pinned symbol homes (sorted by symbol id, so every consumer
    /// observes a deterministic order).
    pub homes: BTreeMap<SymbolId, TileId>,
    /// Persistent (symbol) registers in use per tile.
    pub persistent_count: Vec<usize>,
    /// Peak block-local register pressure per tile over the committed
    /// blocks (pinning a new home must leave room for it).
    pub rf_pressure: Vec<usize>,
}

impl FlowState {
    /// Fresh state for a CGRA with `ntiles` tiles.
    pub fn new(ntiles: usize) -> Self {
        FlowState {
            base_words: vec![0; ntiles],
            crf: vec![Vec::new(); ntiles],
            homes: BTreeMap::new(),
            persistent_count: vec![0; ntiles],
            rf_pressure: vec![0; ntiles],
        }
    }
}

/// A block-local value copy living in a tile's register file during
/// `[start, end]` (write visible at `start`, last read at `end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CopyInterval {
    value: ValueId,
    start: usize,
    end: usize,
}

/// One inverse record of the try/undo journal. Every mutation of a
/// [`Partial`]'s semantic state appends exactly the data needed to undo
/// it; [`Partial::rollback`] pops and applies them in reverse.
#[derive(Debug, Clone, Copy)]
enum UndoOp {
    /// Pop the last placed op.
    PopOp,
    /// Pop the last placed move.
    PopMove,
    /// Restore `first_cycle[op]`.
    FirstCycle {
        /// The op.
        op: u32,
        /// Previous first-instance cycle.
        old: u32,
    },
    /// Clear the occupancy bit of `(tile, cycle)` and restore the tile's
    /// incremental counters and the global frontier.
    Occupy {
        /// The tile.
        tile: u32,
        /// The occupied cycle.
        cycle: u32,
        /// Previous interior-run count.
        interior: u32,
        /// Previous first occupied cycle.
        occ_min: u32,
        /// Previous last occupied cycle.
        occ_max: u32,
        /// Previous global frontier.
        frontier: u32,
    },
    /// Pop the last CRF word of `tile`.
    PopCrf {
        /// The tile.
        tile: u32,
    },
    /// Pop the last copy of `value` from the avail table.
    PopAvail {
        /// The value.
        value: u32,
    },
    /// Restore the ready cycle of copy `idx` of `value`.
    AvailReady {
        /// The value.
        value: u32,
        /// Copy index in the value's avail list.
        idx: u32,
        /// Previous ready cycle.
        old: u32,
    },
    /// Pop the last live interval of `tile`.
    PopInterval {
        /// The tile.
        tile: u32,
    },
    /// Restore the start of interval `idx` of `tile`.
    IntervalStart {
        /// The tile.
        tile: u32,
        /// Interval index.
        idx: u32,
        /// Previous start cycle.
        old: u32,
    },
    /// Restore the end of interval `idx` of `tile`.
    IntervalEnd {
        /// The tile.
        tile: u32,
        /// Interval index.
        idx: u32,
        /// Previous end cycle.
        old: u32,
    },
    /// Decrement the RF live-copy counts of `tile` over `[from, to]` and
    /// restore the tile's running peak.
    RfDec {
        /// The tile.
        tile: u32,
        /// First incremented cycle.
        from: u32,
        /// Last incremented cycle.
        to: u32,
        /// Previous running peak.
        peak: u16,
    },
    /// Unpin the home of `symbol` and restore the commit debt.
    UnpinHome {
        /// The symbol.
        symbol: u32,
        /// The home tile that was pinned.
        home: u32,
        /// Previous commit debt.
        debt: usize,
    },
    /// Restore the last-home-read cycle of `symbol`.
    LastHomeRead {
        /// The symbol.
        symbol: u32,
        /// Previous last-home-read cycle.
        old: u32,
    },
    /// Restore the commit debt.
    CommitDebt {
        /// Previous commit debt.
        old: usize,
    },
    /// Clear the direct-symbol-write flag of op instance `idx`.
    ClearDirectWrite {
        /// Index into the placed-ops list.
        idx: u32,
    },
}

/// Per-tile scratch entry of the routing BFS (stamped, so clearing it
/// between calls is O(1)).
#[derive(Debug, Clone, Copy, Default)]
struct RouteVisit {
    stamp: u32,
    ready: u32,
    /// Previous hop tile; `u32::MAX` marks a start copy.
    prev_tile: u32,
    /// Cycle of the move from the previous hop.
    prev_cycle: u32,
}

/// One partial mapping of the current block.
///
/// Candidate bindings are evaluated **in place**: take a
/// [`checkpoint`](Partial::checkpoint), call
/// [`try_place_op`](Partial::try_place_op) (which mutates on both success
/// and failure), read off cost and metrics, then
/// [`rollback`](Partial::rollback). Cloning is reserved for the pruned
/// survivors that seed the next binding round.
#[derive(Debug)]
pub struct Partial {
    ops: Vec<PlacedOp>,
    moves: Vec<PlacedMove>,

    // --- flat slot occupancy + incremental context-word counters ---
    /// Row-major per-tile occupancy bitset (`words_per_tile` words each).
    occ_bits: Vec<u64>,
    /// Instructions (ops + moves) of this block per tile.
    instr: Vec<u32>,
    /// Interior idle runs per tile (gaps between consecutive occupied
    /// cycles), maintained on every insertion.
    interior: Vec<u32>,
    /// First occupied cycle per tile (valid when `instr > 0`).
    occ_min: Vec<u32>,
    /// Last occupied cycle per tile (valid when `instr > 0`).
    occ_max: Vec<u32>,
    frontier: usize,

    // --- dense value-copy table ---
    /// Copies of each value: `(tile, ready_cycle)`, insertion-ordered,
    /// indexed by `ValueId`.
    avail: Vec<Vec<(TileId, u32)>>,

    // --- register-file live intervals ---
    /// Live intervals of block-local copies per tile.
    intervals: Vec<Vec<CopyInterval>>,
    /// Row-major live-copy count per `(tile, cycle)`
    /// (`max_schedule + 1` entries per tile).
    rf_count: Vec<u16>,
    /// Running peak of `rf_count` per tile — equals the old
    /// `max_overlap` interval scan because counts only grow (rollback
    /// restores the recorded previous peak).
    rf_peak: Vec<u16>,

    crf: Vec<Vec<i32>>,
    /// Home tile per symbol, indexed by `SymbolId`.
    homes: Vec<Option<TileId>>,
    persistent_count: Vec<usize>,
    /// Peak committed RF pressure per tile (from previous blocks).
    rf_pressure: Vec<usize>,
    /// Latest cycle at which the *old* value of a symbol was read from its
    /// home register in this block, indexed by `SymbolId`.
    last_home_read: Vec<u32>,
    /// Accumulated distance from placed symbol-writing ops to their
    /// symbols' home tiles — the expected commit-routing cost (the
    /// paper's location constraints influencing the binding).
    commit_debt: usize,
    base_words: Vec<usize>,
    /// Earliest placed cycle per `OpId` (`u32::MAX` when unplaced), for
    /// O(preds) dependency-slack queries.
    first_cycle: Vec<u32>,
    length: usize,

    /// Bitset stride (`ceil(max_schedule / 64)`).
    words_per_tile: usize,
    /// RF-count stride minus one (`rf_count` has `max_schedule + 1`
    /// entries per tile: a result written at the last legal cycle is
    /// ready *at* `max_schedule`).
    max_schedule: usize,

    // --- non-semantic state (never cloned, excluded from comparisons) ---
    journal: Vec<UndoOp>,
    route_visited: Vec<RouteVisit>,
    route_stamp: u32,
    route_queue: VecDeque<TileId>,
    read_cands: Vec<(usize, TileId)>,
}

impl Clone for Partial {
    fn clone(&self) -> Self {
        Partial {
            ops: self.ops.clone(),
            moves: self.moves.clone(),
            occ_bits: self.occ_bits.clone(),
            instr: self.instr.clone(),
            interior: self.interior.clone(),
            occ_min: self.occ_min.clone(),
            occ_max: self.occ_max.clone(),
            frontier: self.frontier,
            avail: self.avail.clone(),
            intervals: self.intervals.clone(),
            rf_count: self.rf_count.clone(),
            rf_peak: self.rf_peak.clone(),
            crf: self.crf.clone(),
            homes: self.homes.clone(),
            persistent_count: self.persistent_count.clone(),
            rf_pressure: self.rf_pressure.clone(),
            last_home_read: self.last_home_read.clone(),
            commit_debt: self.commit_debt,
            base_words: self.base_words.clone(),
            first_cycle: self.first_cycle.clone(),
            length: self.length,
            words_per_tile: self.words_per_tile,
            max_schedule: self.max_schedule,
            // Scratch and journal start fresh: a clone is taken only at a
            // consistent point (no trial in flight).
            journal: Vec::new(),
            route_visited: vec![RouteVisit::default(); self.route_visited.len()],
            route_stamp: 0,
            route_queue: VecDeque::new(),
            read_cands: Vec::new(),
        }
    }

    /// Clone into an existing allocation, reusing every buffer the
    /// destination already owns — the survivor-materialisation path pulls
    /// retired partials from a pool and overwrites them with this.
    fn clone_from(&mut self, src: &Self) {
        self.ops.clone_from(&src.ops);
        self.moves.clone_from(&src.moves);
        self.occ_bits.clone_from(&src.occ_bits);
        self.instr.clone_from(&src.instr);
        self.interior.clone_from(&src.interior);
        self.occ_min.clone_from(&src.occ_min);
        self.occ_max.clone_from(&src.occ_max);
        self.frontier = src.frontier;
        clone_nested(&mut self.avail, &src.avail);
        clone_nested(&mut self.intervals, &src.intervals);
        self.rf_count.clone_from(&src.rf_count);
        self.rf_peak.clone_from(&src.rf_peak);
        clone_nested(&mut self.crf, &src.crf);
        self.homes.clone_from(&src.homes);
        self.persistent_count.clone_from(&src.persistent_count);
        self.rf_pressure.clone_from(&src.rf_pressure);
        self.last_home_read.clone_from(&src.last_home_read);
        self.commit_debt = src.commit_debt;
        self.base_words.clone_from(&src.base_words);
        self.first_cycle.clone_from(&src.first_cycle);
        self.length = src.length;
        self.words_per_tile = src.words_per_tile;
        self.max_schedule = src.max_schedule;
        self.journal.clear();
        self.route_visited
            .resize(src.route_visited.len(), RouteVisit::default());
        self.read_cands.clear();
    }
}

/// Clones a `Vec<Vec<T>>` reusing every inner buffer of the destination
/// (plain `Vec::clone_from` would drop and reallocate the inner vectors).
fn clone_nested<T: Clone>(dst: &mut Vec<Vec<T>>, src: &[Vec<T>]) {
    dst.truncate(src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        d.clone_from(s);
    }
    let have = dst.len();
    dst.extend(src[have..].iter().cloned());
}

impl Partial {
    /// Starts an empty partial mapping of a new block on top of `state`.
    pub fn new(state: &FlowState, ctx: &MapCtx<'_>) -> Self {
        let n = state.base_words.len();
        let max_schedule = ctx.options.max_schedule;
        let words_per_tile = max_schedule.div_ceil(64);
        let num_values = ctx.cdfg.num_values();
        let num_symbols = ctx.cdfg.num_symbols();
        let mut homes = vec![None; num_symbols];
        for (&s, &t) in &state.homes {
            homes[s.0 as usize] = Some(t);
        }
        Partial {
            ops: Vec::new(),
            moves: Vec::new(),
            occ_bits: vec![0; n * words_per_tile],
            instr: vec![0; n],
            interior: vec![0; n],
            occ_min: vec![0; n],
            occ_max: vec![0; n],
            frontier: 0,
            avail: vec![Vec::new(); num_values],
            intervals: vec![Vec::new(); n],
            rf_count: vec![0; n * (max_schedule + 1)],
            rf_peak: vec![0; n],
            crf: state.crf.clone(),
            homes,
            persistent_count: state.persistent_count.clone(),
            rf_pressure: state.rf_pressure.clone(),
            last_home_read: vec![0; num_symbols],
            commit_debt: 0,
            base_words: state.base_words.clone(),
            first_cycle: vec![u32::MAX; ctx.cdfg.total_ops()],
            length: 0,
            words_per_tile,
            max_schedule,
            journal: Vec::new(),
            route_visited: vec![RouteVisit::default(); n],
            route_stamp: 0,
            route_queue: VecDeque::new(),
            read_cands: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Try/undo journal
    // ------------------------------------------------------------------

    /// A point of the undo journal to [`rollback`](Partial::rollback) to.
    pub fn checkpoint(&self) -> usize {
        self.journal.len()
    }

    /// Whether any mutation happened since `cp` (a rollback would do
    /// work).
    pub fn dirty_since(&self, cp: usize) -> bool {
        self.journal.len() > cp
    }

    /// Undoes every mutation since `cp`, restoring the exact state the
    /// checkpoint observed.
    pub fn rollback(&mut self, cp: usize) {
        while self.journal.len() > cp {
            let e = self.journal.pop().expect("len > cp");
            match e {
                UndoOp::PopOp => {
                    self.ops.pop();
                }
                UndoOp::PopMove => {
                    self.moves.pop();
                }
                UndoOp::FirstCycle { op, old } => {
                    self.first_cycle[op as usize] = old;
                }
                UndoOp::Occupy {
                    tile,
                    cycle,
                    interior,
                    occ_min,
                    occ_max,
                    frontier,
                } => {
                    let t = tile as usize;
                    self.occ_bits[t * self.words_per_tile + cycle as usize / 64] &=
                        !(1u64 << (cycle % 64));
                    self.instr[t] -= 1;
                    self.interior[t] = interior;
                    self.occ_min[t] = occ_min;
                    self.occ_max[t] = occ_max;
                    self.frontier = frontier as usize;
                }
                UndoOp::PopCrf { tile } => {
                    self.crf[tile as usize].pop();
                }
                UndoOp::PopAvail { value } => {
                    self.avail[value as usize].pop();
                }
                UndoOp::AvailReady { value, idx, old } => {
                    self.avail[value as usize][idx as usize].1 = old;
                }
                UndoOp::PopInterval { tile } => {
                    self.intervals[tile as usize].pop();
                }
                UndoOp::IntervalStart { tile, idx, old } => {
                    self.intervals[tile as usize][idx as usize].start = old as usize;
                }
                UndoOp::IntervalEnd { tile, idx, old } => {
                    self.intervals[tile as usize][idx as usize].end = old as usize;
                }
                UndoOp::RfDec {
                    tile,
                    from,
                    to,
                    peak,
                } => {
                    let base = tile as usize * (self.max_schedule + 1);
                    for c in from..=to {
                        self.rf_count[base + c as usize] -= 1;
                    }
                    self.rf_peak[tile as usize] = peak;
                }
                UndoOp::UnpinHome { symbol, home, debt } => {
                    self.homes[symbol as usize] = None;
                    self.persistent_count[home as usize] -= 1;
                    self.commit_debt = debt;
                }
                UndoOp::LastHomeRead { symbol, old } => {
                    self.last_home_read[symbol as usize] = old;
                }
                UndoOp::CommitDebt { old } => {
                    self.commit_debt = old;
                }
                UndoOp::ClearDirectWrite { idx } => {
                    self.ops[idx as usize].direct_symbol_write = false;
                }
            }
        }
    }

    /// Drops the journal (all mutations become permanent). Called once a
    /// partial is promoted into the next population — nothing ever rolls
    /// back past a promotion.
    pub fn clear_journal(&mut self) {
        self.journal.clear();
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Placed operation instances so far.
    pub fn placed_ops(&self) -> &[PlacedOp] {
        &self.ops
    }

    /// Inserted moves so far.
    pub fn placed_moves(&self) -> &[PlacedMove] {
        &self.moves
    }

    /// Current home of symbol `s` (including homes pinned by this
    /// partial).
    pub fn home_of(&self, s: SymbolId) -> Option<TileId> {
        self.homes[s.0 as usize]
    }

    /// Persistent register counts per tile.
    pub fn persistent_count(&self) -> &[usize] {
        &self.persistent_count
    }

    /// Per-tile CRF contents.
    pub fn crf(&self) -> &[Vec<i32>] {
        &self.crf
    }

    /// Current schedule extent (max occupied cycle + 1).
    pub fn frontier(&self) -> usize {
        self.frontier
    }

    /// Final schedule length; valid after [`finalize`](Partial::finalize).
    pub fn length(&self) -> usize {
        self.length
    }

    // ------------------------------------------------------------------
    // Slot occupancy (bitset + incremental run counters)
    // ------------------------------------------------------------------

    fn slot_free(&self, t: TileId, c: usize) -> bool {
        self.occ_bits[t.0 * self.words_per_tile + c / 64] & (1u64 << (c % 64)) == 0
    }

    /// Last occupied cycle of `t` strictly below `c`, if any.
    fn prev_occupied(&self, t: TileId, c: usize) -> Option<usize> {
        if self.instr[t.0] == 0 || c <= self.occ_min[t.0] as usize {
            return None;
        }
        let base = t.0 * self.words_per_tile;
        let mut w = (c - 1) / 64;
        let mut bits = self.occ_bits[base + w] & (!0u64 >> (63 - (c - 1) % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + 63 - bits.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            bits = self.occ_bits[base + w];
        }
    }

    /// First occupied cycle of `t` strictly above `c`, if any.
    fn next_occupied(&self, t: TileId, c: usize) -> Option<usize> {
        if self.instr[t.0] == 0 || c >= self.occ_max[t.0] as usize {
            return None;
        }
        let base = t.0 * self.words_per_tile;
        let mut w = (c + 1) / 64;
        let mut bits = self.occ_bits[base + w] & (!0u64 << ((c + 1) % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words_per_tile {
                return None;
            }
            bits = self.occ_bits[base + w];
        }
    }

    /// Marks `(t, c)` occupied, maintaining the per-tile instruction
    /// count, interior-run count, occupied range and the global frontier
    /// incrementally (journaled).
    fn occupy(&mut self, t: TileId, c: usize) {
        debug_assert!(self.slot_free(t, c), "occupying a taken slot");
        self.journal.push(UndoOp::Occupy {
            tile: t.0 as u32,
            cycle: c as u32,
            interior: self.interior[t.0],
            occ_min: self.occ_min[t.0],
            occ_max: self.occ_max[t.0],
            frontier: self.frontier as u32,
        });
        let prev = self.prev_occupied(t, c);
        let next = self.next_occupied(t, c);
        self.occ_bits[t.0 * self.words_per_tile + c / 64] |= 1u64 << (c % 64);
        // Interior runs change only around the inserted cycle: the old
        // (prev, next) gap is split into (prev, c) and (c, next).
        let gap = |a: usize, b: usize| u32::from(b - a > 1);
        match (prev, next) {
            (Some(p), Some(n)) => {
                self.interior[t.0] = self.interior[t.0] - gap(p, n) + gap(p, c) + gap(c, n);
            }
            (Some(p), None) => self.interior[t.0] += gap(p, c),
            (None, Some(n)) => self.interior[t.0] += gap(c, n),
            (None, None) => {}
        }
        if self.instr[t.0] == 0 {
            self.occ_min[t.0] = c as u32;
            self.occ_max[t.0] = c as u32;
        } else {
            self.occ_min[t.0] = self.occ_min[t.0].min(c as u32);
            self.occ_max[t.0] = self.occ_max[t.0].max(c as u32);
        }
        self.instr[t.0] += 1;
        self.frontier = self.frontier.max(c + 1);
    }

    /// Mapped instructions (ops + moves) of this block on `tile`.
    pub fn instr_count(&self, tile: TileId) -> usize {
        self.instr[tile.0] as usize
    }

    /// Idle runs of `tile` within `[0, extent)`: `(interior, leading,
    /// trailing)` run counts — O(1) from the incremental counters.
    fn runs(&self, tile: TileId, extent: usize) -> (usize, usize, usize) {
        if extent == 0 {
            return (0, 0, 0);
        }
        if self.instr[tile.0] == 0 {
            return (0, 1, 0); // one big leading run
        }
        let leading = usize::from(self.occ_min[tile.0] > 0);
        let trailing = usize::from(self.occ_max[tile.0] as usize + 1 < extent);
        (self.interior[tile.0] as usize, leading, trailing)
    }

    /// ACMAP metric (Section III-D.2): committed words + instructions +
    /// *interior* idle runs only. An approximation — leading/trailing runs
    /// are ignored, so infeasible partials can survive this filter.
    pub fn acmap_words(&self, tile: TileId) -> usize {
        self.base_words[tile.0] + (self.instr[tile.0] + self.interior[tile.0]) as usize
    }

    /// ECMAP metric (Section III-D.3): committed words + instructions +
    /// all idle runs in the current extent. A true lower bound of the
    /// tile's final context words.
    pub fn ecmap_words(&self, tile: TileId) -> usize {
        let (i, l, t) = self.runs(tile, self.frontier);
        self.base_words[tile.0] + self.instr_count(tile) + i + l + t
    }

    /// Exact context words of `tile` for a finished block of `length`
    /// cycles (matches `BlockMapping::context_words` plus the committed
    /// base).
    pub fn exact_words(&self, tile: TileId, length: usize) -> usize {
        let (i, l, t) = self.runs(tile, length);
        self.base_words[tile.0] + self.instr_count(tile) + i + l + t
    }

    /// CAB blacklist test (Section III-D.4): the tile cannot take any
    /// further instruction without overflowing its context memory.
    pub fn blacklisted(&self, ctx: &MapCtx<'_>, tile: TileId) -> bool {
        self.ecmap_words(tile) >= ctx.capacity(tile)
    }

    // ------------------------------------------------------------------
    // Register-file intervals (flat per-cycle live-copy counts)
    // ------------------------------------------------------------------

    /// Block-local registers available on `tile` (RF minus persistent
    /// symbol registers).
    fn local_cap(&self, ctx: &MapCtx<'_>, tile: TileId) -> usize {
        ctx.config
            .tile(tile)
            .rf_words
            .saturating_sub(self.persistent_count[tile.0])
    }

    /// Peak occupancy of `tile` over the whole block so far.
    fn max_overlap(&self, tile: TileId) -> usize {
        self.rf_peak[tile.0] as usize
    }

    /// Whether one more copy can be live on `tile` across `[from, to]`.
    fn range_has_room(&self, ctx: &MapCtx<'_>, tile: TileId, from: usize, to: usize) -> bool {
        let cap = self.local_cap(ctx, tile);
        let base = tile.0 * (self.max_schedule + 1);
        self.rf_count[base + from..=base + to]
            .iter()
            .all(|&c| (c as usize) < cap)
    }

    /// Increments the live-copy counts of `tile` over `[from, to]`,
    /// maintaining the running peak (journaled).
    fn rf_inc(&mut self, tile: TileId, from: usize, to: usize) {
        self.journal.push(UndoOp::RfDec {
            tile: tile.0 as u32,
            from: from as u32,
            to: to as u32,
            peak: self.rf_peak[tile.0],
        });
        let base = tile.0 * (self.max_schedule + 1);
        let mut peak = self.rf_peak[tile.0];
        for c in &mut self.rf_count[base + from..=base + to] {
            *c += 1;
            peak = peak.max(*c);
        }
        self.rf_peak[tile.0] = peak;
    }

    /// Registers a copy of `v` on `tile` written at the end of cycle
    /// `ready - 1` (readable from `ready`). Fails when the RF is full at
    /// that point.
    fn try_add_copy(&mut self, ctx: &MapCtx<'_>, tile: TileId, v: ValueId, ready: usize) -> bool {
        if let Some(pos) = self.intervals[tile.0].iter().position(|iv| iv.value == v) {
            // Re-computed duplicate: widen the interval start if needed.
            let old_start = self.intervals[tile.0][pos].start;
            if ready < old_start {
                if !self.range_has_room(ctx, tile, ready, old_start - 1) {
                    return false;
                }
                self.journal.push(UndoOp::IntervalStart {
                    tile: tile.0 as u32,
                    idx: pos as u32,
                    old: old_start as u32,
                });
                self.intervals[tile.0][pos].start = ready;
                self.rf_inc(tile, ready, old_start - 1);
                if let Some(idx) = self.avail[v.0 as usize]
                    .iter()
                    .position(|&(t, _)| t == tile)
                {
                    self.journal.push(UndoOp::AvailReady {
                        value: v.0,
                        idx: idx as u32,
                        old: self.avail[v.0 as usize][idx].1,
                    });
                    self.avail[v.0 as usize][idx].1 = ready as u32;
                }
            }
            return true;
        }
        if !self.range_has_room(ctx, tile, ready, ready) {
            return false;
        }
        self.journal.push(UndoOp::PopInterval {
            tile: tile.0 as u32,
        });
        self.intervals[tile.0].push(CopyInterval {
            value: v,
            start: ready,
            end: ready,
        });
        self.rf_inc(tile, ready, ready);
        self.journal.push(UndoOp::PopAvail { value: v.0 });
        self.avail[v.0 as usize].push((tile, ready as u32));
        true
    }

    /// Whether the copy of `v` on `tile` is the persistent home register
    /// of a symbol (not subject to interval accounting).
    fn is_home_copy(&self, ctx: &MapCtx<'_>, v: ValueId, tile: TileId) -> bool {
        matches!(
            ctx.cdfg.value(v).kind,
            ValueKind::SymbolUse(s) if self.homes[s.0 as usize] == Some(tile)
        )
    }

    /// Extends the live interval of the copy of `v` on `tile` to cover a
    /// read at `cycle`; fails when the extension would overflow the RF.
    fn try_extend_use(&mut self, ctx: &MapCtx<'_>, tile: TileId, v: ValueId, cycle: usize) -> bool {
        if self.is_home_copy(ctx, v, tile) {
            return true;
        }
        let Some(pos) = self.intervals[tile.0].iter().position(|iv| iv.value == v) else {
            return false;
        };
        let end = self.intervals[tile.0][pos].end;
        if cycle <= end {
            return true;
        }
        if !self.range_has_room(ctx, tile, end + 1, cycle) {
            return false;
        }
        self.journal.push(UndoOp::IntervalEnd {
            tile: tile.0 as u32,
            idx: pos as u32,
            old: end as u32,
        });
        self.intervals[tile.0][pos].end = cycle;
        self.rf_inc(tile, end + 1, cycle);
        true
    }

    /// Finds a copy of `v` readable by an instruction on `tile` at `cycle`
    /// (the tile itself or a direct neighbour), extending its live
    /// interval. Prefers the tile itself, then the lowest-id neighbour.
    fn acquire_read(
        &mut self,
        ctx: &MapCtx<'_>,
        v: ValueId,
        tile: TileId,
        cycle: usize,
    ) -> Option<TileId> {
        let geom = ctx.config.geometry();
        let mut cands = std::mem::take(&mut self.read_cands);
        cands.clear();
        for &(t, ready) in &self.avail[v.0 as usize] {
            if ready as usize <= cycle {
                let d = geom.distance(t, tile);
                if d <= 1 {
                    cands.push((d, t));
                }
            }
        }
        // At most 5 entries (the tile + its torus neighbours); total
        // order, so the sort is deterministic.
        cands.sort_unstable();
        let mut found = None;
        for &(_, src) in &cands {
            if self.try_extend_use(ctx, src, v, cycle) {
                found = Some(src);
                break;
            }
        }
        self.read_cands = cands;
        let src = found?;
        self.note_home_read(ctx, v, src, cycle);
        Some(src)
    }

    fn note_home_read(&mut self, ctx: &MapCtx<'_>, v: ValueId, src: TileId, cycle: usize) {
        if let ValueKind::SymbolUse(s) = ctx.cdfg.value(v).kind {
            if self.homes[s.0 as usize] == Some(src) {
                let old = self.last_home_read[s.0 as usize];
                if cycle as u32 > old {
                    self.journal.push(UndoOp::LastHomeRead { symbol: s.0, old });
                    self.last_home_read[s.0 as usize] = cycle as u32;
                }
            }
        }
    }

    /// Pins a home for symbol `s` near `preferred`; returns the home tile.
    ///
    /// The chosen tile must fit one more persistent register next to both
    /// the current block's peak local pressure *and* the peak pressure of
    /// every previously committed block.
    fn pin_home(&mut self, ctx: &MapCtx<'_>, s: SymbolId, preferred: TileId) -> Option<TileId> {
        let geom = ctx.config.geometry();
        let ntiles = geom.num_tiles();
        let mut candidates: Vec<TileId> = Vec::with_capacity(ntiles);
        candidates.push(preferred);
        candidates.extend_from_slice(&ctx.pre.nbr_dir[preferred.0]);
        // Fall back to every tile by distance, then id — membership via a
        // tile mask instead of a linear `contains` scan per tile.
        let mut in_cand = vec![false; ntiles];
        for &t in &candidates {
            in_cand[t.0] = true;
        }
        let mut rest: Vec<TileId> = geom.tiles().filter(|t| !in_cand[t.0]).collect();
        rest.sort_by_key(|&t| (geom.distance(t, preferred), t));
        candidates.extend(rest);
        for home in candidates {
            let cap = ctx.config.tile(home).rf_words;
            let pressure = self.rf_pressure[home.0].max(self.max_overlap(home));
            if self.persistent_count[home.0] + pressure + 1 <= cap {
                self.journal.push(UndoOp::UnpinHome {
                    symbol: s.0,
                    home: home.0 as u32,
                    debt: self.commit_debt,
                });
                self.persistent_count[home.0] += 1;
                self.homes[s.0 as usize] = Some(home);
                // Writers of `s` placed before the home was known now have
                // a definite commit distance.
                let writer_debt: usize = self
                    .ops
                    .iter()
                    .filter(|po| ctx.cdfg.op(po.op).writes_symbol == Some(s))
                    .map(|po| geom.distance(po.tile, home))
                    .sum();
                self.commit_debt += writer_debt;
                return Some(home);
            }
        }
        None
    }

    /// Makes `v` readable at `(tile, cycle)`: ensures a copy of `v` exists
    /// on `tile` or one of its neighbours, ready by `cycle`, inserting
    /// `move` instructions if needed. Returns the source tile.
    ///
    /// Mutates `self` on both success and failure: callers must take a
    /// [`checkpoint`](Partial::checkpoint) and
    /// [`rollback`](Partial::rollback) when this returns `None`.
    fn ensure_readable(
        &mut self,
        ctx: &MapCtx<'_>,
        v: ValueId,
        tile: TileId,
        cycle: usize,
    ) -> Option<TileId> {
        // Symbol reads come from the home register: seed the home copy on
        // first encounter in this block, pinning an unpinned home at the
        // consumer.
        if let ValueKind::SymbolUse(s) = ctx.cdfg.value(v).kind {
            let home = match self.homes[s.0 as usize] {
                Some(h) => h,
                None => self.pin_home(ctx, s, tile)?,
            };
            let seeded = self.avail[v.0 as usize].iter().any(|&(t, _)| t == home);
            if !seeded {
                // The home copy lives in a persistent register, not a
                // block-local one, so it carries no live interval.
                self.journal.push(UndoOp::PopAvail { value: v.0 });
                self.avail[v.0 as usize].push((home, 0));
            }
        }
        if let Some(src) = self.acquire_read(ctx, v, tile, cycle) {
            return Some(src);
        }
        let src = self.route_value(ctx, v, tile, cycle)?;
        // The consumer's read at `cycle` must keep the routed copy alive.
        if !self.try_extend_use(ctx, src, v, cycle) {
            return None;
        }
        self.note_home_read(ctx, v, src, cycle);
        Some(src)
    }

    /// Re-routing transformation: inserts a shortest chain of moves over
    /// free slots so that a copy of `v` is readable by `(dest, need)`.
    /// Returns the tile the consumer should read from.
    fn route_value(
        &mut self,
        ctx: &MapCtx<'_>,
        v: ValueId,
        dest: TileId,
        need: usize,
    ) -> Option<TileId> {
        let geom = ctx.config.geometry();
        // BFS by move count over tiles; per tile keep the earliest ready.
        // The visited table is a stamped per-tile scratch array — no
        // hashing, no per-call allocation.
        self.route_stamp += 1;
        let stamp = self.route_stamp;
        let mut queue = std::mem::take(&mut self.route_queue);
        queue.clear();
        let mut any_start = false;
        for i in 0..self.avail[v.0 as usize].len() {
            let (t, ready) = self.avail[v.0 as usize][i];
            if (ready as usize) < need {
                any_start = true;
                let vis = &mut self.route_visited[t.0];
                if vis.stamp != stamp || ready < vis.ready {
                    *vis = RouteVisit {
                        stamp,
                        ready,
                        prev_tile: u32::MAX,
                        prev_cycle: 0,
                    };
                    queue.push_back(t);
                }
            }
        }
        if !any_start {
            self.route_queue = queue;
            return None;
        }
        let mut goal: Option<TileId> = None;
        'bfs: while let Some(x) = queue.pop_front() {
            let ready = self.route_visited[x.0].ready as usize;
            for i in 0..ctx.pre.nbr_sorted[x.0].len() {
                let y = ctx.pre.nbr_sorted[x.0][i];
                if self.route_visited[y.0].stamp == stamp {
                    continue;
                }
                if ctx.options.cab && self.blacklisted(ctx, y) {
                    continue;
                }
                // Earliest free slot m on y with ready <= m < need whose
                // destination RF has room for the new copy.
                let mut m = ready;
                let slot = loop {
                    if m >= need {
                        break None;
                    }
                    if m >= ctx.options.max_schedule {
                        break None;
                    }
                    if self.slot_free(y, m) && self.range_has_room(ctx, y, m + 1, m + 1) {
                        break Some(m);
                    }
                    m += 1;
                };
                let Some(m) = slot else { continue };
                self.route_visited[y.0] = RouteVisit {
                    stamp,
                    ready: (m + 1) as u32,
                    prev_tile: x.0 as u32,
                    prev_cycle: m as u32,
                };
                if geom.distance(y, dest) <= 1 {
                    goal = Some(y);
                    break 'bfs;
                }
                queue.push_back(y);
            }
        }
        self.route_queue = queue;
        let goal = goal?;
        // Reconstruct and apply the move chain from the start copy.
        let mut chain: Vec<(TileId, TileId, usize)> = Vec::new(); // (src, dst, cycle)
        let mut cur = goal;
        while self.route_visited[cur.0].prev_tile != u32::MAX {
            let vis = self.route_visited[cur.0];
            let prev = TileId(vis.prev_tile as usize);
            chain.push((prev, cur, vis.prev_cycle as usize));
            cur = prev;
        }
        chain.reverse();
        for &(src, dst, m) in &chain {
            // Each hop reads the previous copy at cycle m (extending its
            // interval) and writes a new copy on dst.
            if !self.try_extend_use(ctx, src, v, m) {
                return None;
            }
            self.note_home_read(ctx, v, src, m);
            if !self.try_add_copy(ctx, dst, v, m + 1) {
                return None;
            }
            self.occupy(dst, m);
            self.journal.push(UndoOp::PopMove);
            self.moves.push(PlacedMove {
                value: v,
                src_tile: src,
                tile: dst,
                cycle: m,
                commit_symbol: None,
            });
        }
        // The consumer's read extends the goal copy via the caller.
        Some(goal)
    }

    /// Re-computing transformation: duplicates `producer` (a non-memory op
    /// whose operands are constants or symbol reads) on `tile` or one of
    /// its neighbours before `before`, making its result locally
    /// available.
    fn try_recompute(
        &mut self,
        ctx: &MapCtx<'_>,
        producer: OpId,
        tile: TileId,
        before: usize,
    ) -> bool {
        let op = ctx.cdfg.op(producer);
        if op.opcode.is_memory()
            || op.opcode.is_branch()
            || op.result.is_none()
            || op.writes_symbol.is_some()
        {
            return false;
        }
        // Depth-1 only: every operand must be a constant or a pinned
        // symbol whose home is adjacent to the duplicate's tile.
        let geom = ctx.config.geometry();
        let mut sites: Vec<TileId> = Vec::with_capacity(5);
        sites.push(tile);
        sites.extend_from_slice(&ctx.pre.nbr_dir[tile.0]);
        'site: for t2 in sites {
            if ctx.options.cab && self.blacklisted(ctx, t2) {
                continue;
            }
            // Check operands are resolvable at t2 without routing.
            let mut sources = Vec::with_capacity(op.args.len());
            for &a in &op.args {
                match ctx.cdfg.value(a).kind {
                    ValueKind::Const(c) => {
                        let in_crf = self.crf[t2.0].contains(&c);
                        if !in_crf && self.crf[t2.0].len() >= ctx.config.tile(t2).crf_words {
                            continue 'site;
                        }
                        sources.push(OperandSource::Const(c));
                    }
                    ValueKind::SymbolUse(s) => {
                        let Some(home) = self.homes[s.0 as usize] else {
                            continue 'site;
                        };
                        if geom.distance(home, t2) > 1 {
                            continue 'site;
                        }
                        sources.push(OperandSource::Rf {
                            tile: home,
                            value: a,
                        });
                    }
                    ValueKind::Def(_) => continue 'site,
                }
            }
            // Earliest free slot before `before` with RF room for the
            // duplicated result.
            let mut c2 = 0;
            let slot = loop {
                if c2 >= before {
                    break None;
                }
                if self.slot_free(t2, c2) && self.range_has_room(ctx, t2, c2 + 1, c2 + 1) {
                    break Some(c2);
                }
                c2 += 1;
            };
            let Some(c2) = slot else { continue };
            // Apply.
            for src in &sources {
                match *src {
                    OperandSource::Const(c) => {
                        if !self.crf[t2.0].contains(&c) {
                            self.journal.push(UndoOp::PopCrf { tile: t2.0 as u32 });
                            self.crf[t2.0].push(c);
                        }
                    }
                    OperandSource::Rf { tile: home, value } => {
                        self.note_home_read(ctx, value, home, c2);
                    }
                }
            }
            let result = op.result.expect("checked above");
            if !self.try_add_copy(ctx, t2, result, c2 + 1) {
                continue;
            }
            self.occupy(t2, c2);
            self.push_op(PlacedOp {
                op: producer,
                tile: t2,
                cycle: c2,
                operands: sources,
                direct_symbol_write: false,
            });
            return true;
        }
        false
    }

    /// Appends a placed op, maintaining the dense first-instance-cycle
    /// table (journaled).
    fn push_op(&mut self, po: PlacedOp) {
        let op = po.op.0;
        let old = self.first_cycle[op as usize];
        if (po.cycle as u32) < old {
            self.journal.push(UndoOp::FirstCycle { op, old });
            self.first_cycle[op as usize] = po.cycle as u32;
        }
        self.journal.push(UndoOp::PopOp);
        self.ops.push(po);
    }

    /// Attempts to bind `op` on `(tile, cycle)`, resolving all operands
    /// (inserting moves / re-computations as needed). Returns `false` on
    /// infeasibility; the state is then dirty, so callers must
    /// [`rollback`](Partial::rollback) to their
    /// [`checkpoint`](Partial::checkpoint).
    pub fn try_place_op(
        &mut self,
        ctx: &MapCtx<'_>,
        op_id: OpId,
        tile: TileId,
        cycle: usize,
    ) -> bool {
        let op = ctx.cdfg.op(op_id);
        if cycle >= ctx.options.max_schedule {
            return false;
        }
        if !self.slot_free(tile, cycle) {
            return false;
        }
        if op.opcode.is_memory() && !ctx.config.tile(tile).has_lsu {
            return false;
        }
        if ctx.options.cab && self.blacklisted(ctx, tile) {
            return false;
        }
        let mut sources = Vec::with_capacity(op.args.len());
        for &a in &op.args {
            match ctx.cdfg.value(a).kind {
                ValueKind::Const(c) => {
                    let in_crf = self.crf[tile.0].contains(&c);
                    if !in_crf {
                        if self.crf[tile.0].len() >= ctx.config.tile(tile).crf_words {
                            return false;
                        }
                        self.journal.push(UndoOp::PopCrf {
                            tile: tile.0 as u32,
                        });
                        self.crf[tile.0].push(c);
                    }
                    sources.push(OperandSource::Const(c));
                }
                _ => {
                    let src = match self.ensure_readable(ctx, a, tile, cycle) {
                        Some(s) => s,
                        None => {
                            // Re-computing transformation, then retry.
                            let producer = match ctx.cdfg.value(a).kind {
                                ValueKind::Def(p) => p,
                                _ => return false,
                            };
                            if !self.try_recompute(ctx, producer, tile, cycle) {
                                return false;
                            }
                            match self.acquire_read(ctx, a, tile, cycle) {
                                Some(s) => s,
                                None => return false,
                            }
                        }
                    };
                    sources.push(OperandSource::Rf {
                        tile: src,
                        value: a,
                    });
                }
            }
        }
        if let Some(r) = op.result {
            if !self.try_add_copy(ctx, tile, r, cycle + 1) {
                return false;
            }
        }
        self.occupy(tile, cycle);
        if let Some(s) = op.writes_symbol {
            if let Some(home) = self.homes[s.0 as usize] {
                self.journal.push(UndoOp::CommitDebt {
                    old: self.commit_debt,
                });
                self.commit_debt += ctx.config.geometry().distance(tile, home);
            }
        }
        self.push_op(PlacedOp {
            op: op_id,
            tile,
            cycle,
            operands: sources,
            direct_symbol_write: false,
        });
        true
    }

    /// Earliest feasible cycle for `op` given its placed dependency
    /// predecessors (their first-instance cycles + 1) — O(preds) via the
    /// dense first-cycle table.
    pub fn earliest_cycle(&self, deps: &DepGraph, op: OpId) -> usize {
        deps.preds_of(op)
            .iter()
            .map(|p| match self.first_cycle[p.0 as usize] {
                u32::MAX => 0,
                c => c as usize + 1,
            })
            .max()
            .unwrap_or(0)
    }

    /// Completes the block: resolves symbol writes (direct-write elision
    /// or commit moves), fixes the final schedule length, and — when the
    /// flow is memory-aware — verifies the exact per-tile context words
    /// against the configuration. Returns `false` when the partial cannot
    /// be completed; the state is then dirty.
    pub fn finalize(&mut self, ctx: &MapCtx<'_>, block: BlockId) -> bool {
        let dfg = ctx.cdfg.dfg(block);
        let writes: Vec<(OpId, SymbolId, ValueId)> = dfg
            .ops()
            .filter_map(|o| {
                o.writes_symbol
                    .map(|s| (o.id, s, o.result.expect("writers have results")))
            })
            .collect();
        for (op_id, s, v) in writes {
            let home = match self.homes[s.0 as usize] {
                Some(h) => h,
                None => {
                    // First touch is a write: pin at the producer's tile.
                    let site = self
                        .ops
                        .iter()
                        .find(|po| po.op == op_id)
                        .map(|po| po.tile)
                        .expect("producer was placed");
                    match self.pin_home(ctx, s, site) {
                        Some(h) => h,
                        None => return false,
                    }
                }
            };
            let lhr = self.last_home_read[s.0 as usize] as usize;
            // Commit-move elision: a producer instance on the home tile
            // whose write happens no earlier than the last old-value read.
            if let Some(idx) = self
                .ops
                .iter()
                .position(|po| po.op == op_id && po.tile == home && po.cycle >= lhr)
            {
                self.journal
                    .push(UndoOp::ClearDirectWrite { idx: idx as u32 });
                self.ops[idx].direct_symbol_write = true;
                continue;
            }
            // Commit move on the home tile. Each trial mutates in place
            // and rolls back on failure (the pre-optimization mapper
            // cloned the whole partial per trial cycle).
            let mut committed = false;
            for c in lhr..ctx.options.max_schedule {
                if !self.slot_free(home, c) {
                    continue;
                }
                let cp = self.checkpoint();
                if let Some(src) = self.acquire_read(ctx, v, home, c) {
                    self.occupy(home, c);
                    self.journal.push(UndoOp::PopMove);
                    self.moves.push(PlacedMove {
                        value: v,
                        src_tile: src,
                        tile: home,
                        cycle: c,
                        commit_symbol: Some(s),
                    });
                    committed = true;
                    break;
                }
                self.rollback(cp);
                // Try routing the value into the home neighbourhood first.
                let cp = self.checkpoint();
                if let Some(src) = self.route_value(ctx, v, home, c) {
                    if self.slot_free(home, c) && self.try_extend_use(ctx, src, v, c) {
                        self.occupy(home, c);
                        self.journal.push(UndoOp::PopMove);
                        self.moves.push(PlacedMove {
                            value: v,
                            src_tile: src,
                            tile: home,
                            cycle: c,
                            commit_symbol: Some(s),
                        });
                        committed = true;
                        break;
                    }
                }
                self.rollback(cp);
            }
            if !committed {
                return false;
            }
        }
        self.length = self.frontier.max(1);
        if ctx.options.memory_aware() {
            for t in ctx.config.geometry().tiles() {
                if self.exact_words(t, self.length) > ctx.capacity(t) {
                    return false;
                }
            }
        }
        true
    }

    /// Search cost: `(schedule extent, move count + commit debt)` —
    /// lexicographically
    /// smaller is better. Deliberately **context-memory unaware**, like the
    /// basic flow of the paper: the cost drives latency and routing effort
    /// only, so placements cluster around the operand sources (the
    /// load/store tiles become the hot spots of Fig 2) and the memory
    /// constraints enter exclusively through the ACMAP/ECMAP/CAB pruning
    /// steps.
    pub fn cost(&self) -> (usize, usize) {
        (self.frontier, self.moves.len() + self.commit_debt)
    }

    /// Converts the finished partial into its [`BlockMapping`].
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`finalize`](Partial::finalize).
    pub fn into_block_mapping(self) -> BlockMapping {
        assert!(self.length > 0, "finalize the partial first");
        BlockMapping {
            length: self.length,
            ops: self.ops,
            moves: self.moves,
        }
    }

    /// Commits this partial's kernel-wide state into `state` (called for
    /// the selected winner of a block).
    pub fn commit_into(&self, state: &mut FlowState) {
        for i in 0..state.base_words.len() {
            let t = TileId(i);
            state.base_words[i] = self.exact_words(t, self.length);
            state.rf_pressure[i] = state.rf_pressure[i].max(self.max_overlap(t));
        }
        state.crf = self.crf.clone();
        state.homes = self
            .homes
            .iter()
            .enumerate()
            .filter_map(|(s, h)| h.map(|t| (SymbolId(s as u32), t)))
            .collect();
        state.persistent_count = self.persistent_count.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::MapperOptions;
    use cmam_cdfg::{CdfgBuilder, Opcode};

    fn ctx_objects() -> (Cdfg, CgraConfig, MapperOptions) {
        let mut b = CdfgBuilder::new("t");
        let bb = b.block("b");
        b.select(bb);
        let a0 = b.constant(0);
        let x = b.load_name(a0, "m");
        let y = b.op(Opcode::Add, &[x, x]);
        let a1 = b.constant(1);
        b.store(a1, y, "m");
        b.ret();
        (
            b.finish().unwrap(),
            CgraConfig::hom64(),
            MapperOptions::basic(),
        )
    }

    #[test]
    fn place_and_read_same_tile() {
        let (cdfg, config, options) = ctx_objects();
        let pre = MapPre::new(&config);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state, &ctx);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0)); // load
        assert!(p.try_place_op(&ctx, ops[1], TileId(0), 1)); // add reads r
        assert!(p.try_place_op(&ctx, ops[2], TileId(0), 2)); // store
        assert_eq!(p.placed_moves().len(), 0);
        assert_eq!(p.frontier(), 3);
        // Occupied slots cannot be reused.
        assert!(!p.clone().try_place_op(&ctx, ops[1], TileId(0), 0));
    }

    #[test]
    fn distant_read_inserts_moves() {
        let (cdfg, config, options) = ctx_objects();
        let pre = MapPre::new(&config);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state, &ctx);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        // Load at T1.
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0));
        // Add placed on tile 10 (distance 4): needs a 3-move chain arriving
        // by cycle 4 at a neighbour of tile 10.
        assert!(p.try_place_op(&ctx, ops[1], TileId(10), 4));
        assert_eq!(p.placed_moves().len(), 3);
        // Store back on an LSU tile.
        assert!(p.try_place_op(&ctx, ops[2], TileId(6), 6));
    }

    #[test]
    fn memory_ops_rejected_on_compute_tiles() {
        let (cdfg, config, options) = ctx_objects();
        let pre = MapPre::new(&config);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state, &ctx);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(!p.try_place_op(&ctx, ops[0], TileId(12), 0));
    }

    #[test]
    fn too_early_read_fails_even_with_routing() {
        let (cdfg, config, options) = ctx_objects();
        let pre = MapPre::new(&config);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state, &ctx);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0));
        // Result ready at cycle 1; reading it at distance 4 at cycle 1 is
        // impossible (and the add is not recomputable since its operand is
        // a load result).
        assert!(!p.clone().try_place_op(&ctx, ops[1], TileId(10), 1));
    }

    #[test]
    fn words_metrics_track_runs() {
        let (cdfg, config, options) = ctx_objects();
        let pre = MapPre::new(&config);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state, &ctx);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0));
        assert!(p.try_place_op(&ctx, ops[1], TileId(0), 3)); // gap 1-2
        let t0 = TileId(0);
        // 2 instructions + 1 interior run.
        assert_eq!(p.acmap_words(t0), 3);
        // No leading/trailing at frontier 4... interior only.
        assert_eq!(p.ecmap_words(t0), 3);
        // An idle tile costs one leading run under ECMAP but zero under
        // ACMAP.
        let t5 = TileId(5);
        assert_eq!(p.acmap_words(t5), 0);
        assert_eq!(p.ecmap_words(t5), 1);
        let _ = ctx;
    }

    #[test]
    fn symbol_write_elision_and_commit() {
        // Block reading and writing symbol i: i2 = i + 1.
        let mut b = CdfgBuilder::new("sym");
        let bb = b.block("b");
        let s = b.symbol("i");
        b.select(bb);
        let iv = b.use_symbol(s);
        let one = b.constant(1);
        let i2 = b.op(Opcode::Add, &[iv, one]);
        b.write_symbol(i2, s);
        b.ret();
        let cdfg = b.finish().unwrap();
        let config = CgraConfig::hom64();
        let options = MapperOptions::basic();
        let pre = MapPre::new(&config);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state, &ctx);
        let ops: Vec<OpId> = cdfg.dfg(bb).op_ids().to_vec();
        // Place the add on tile 3: the unpinned symbol gets pinned there.
        assert!(p.try_place_op(&ctx, ops[0], TileId(3), 0));
        assert_eq!(p.home_of(s), Some(TileId(3)));
        assert!(p.finalize(&ctx, bb));
        // Producer sits on the home tile: the write is elided into a
        // direct write, no commit move.
        let bm = p.into_block_mapping();
        assert_eq!(bm.moves.len(), 0);
        assert!(bm.ops.iter().any(|o| o.direct_symbol_write));
    }

    #[test]
    fn commit_move_inserted_when_producer_far_from_home() {
        let mut b = CdfgBuilder::new("sym2");
        let bb = b.block("b");
        let s = b.symbol("x");
        b.select(bb);
        let xv = b.use_symbol(s);
        let one = b.constant(1);
        let x2 = b.op(Opcode::Add, &[xv, one]);
        b.write_symbol(x2, s);
        b.ret();
        let cdfg = b.finish().unwrap();
        let config = CgraConfig::hom64();
        let options = MapperOptions::basic();
        let pre = MapPre::new(&config);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        let mut state = FlowState::new(16);
        // Pre-pin the home far from where we will place the producer.
        state.homes.insert(s, TileId(0));
        state.persistent_count[0] = 1;
        let mut p = Partial::new(&state, &ctx);
        let ops: Vec<OpId> = cdfg.dfg(bb).op_ids().to_vec();
        // Producer on tile 10 (distance 4 from home 0); reading the symbol
        // from home needs moves, and committing back needs more.
        assert!(p.try_place_op(&ctx, ops[0], TileId(10), 4));
        assert!(p.finalize(&ctx, bb));
        let bm = p.into_block_mapping();
        let commit = bm
            .moves
            .iter()
            .filter(|m| m.commit_symbol == Some(s))
            .count();
        assert_eq!(commit, 1);
        assert!(bm.moves.len() >= 4, "read route + commit route");
        assert!(!bm.ops.iter().any(|o| o.direct_symbol_write));
    }

    #[test]
    fn ecmap_is_lower_bound_of_final_words() {
        let (cdfg, config, options) = ctx_objects();
        let pre = MapPre::new(&config);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state, &ctx);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0));
        let before: Vec<usize> = (0..16).map(|i| p.ecmap_words(TileId(i))).collect();
        assert!(p.try_place_op(&ctx, ops[1], TileId(1), 3));
        assert!(p.try_place_op(&ctx, ops[2], TileId(1), 5));
        assert!(p.finalize(&ctx, cmam_cdfg::BlockId(0)));
        for i in 0..16 {
            let t = TileId(i);
            assert!(
                before[i] <= p.exact_words(t, p.length()),
                "tile {t}: {} > {}",
                before[i],
                p.exact_words(t, p.length())
            );
        }
    }

    /// Compares every semantic field (everything but journal/scratch).
    fn assert_semantically_equal(a: &Partial, b: &Partial) {
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.occ_bits, b.occ_bits);
        assert_eq!(a.instr, b.instr);
        assert_eq!(a.interior, b.interior);
        assert_eq!(a.occ_min, b.occ_min);
        assert_eq!(a.occ_max, b.occ_max);
        assert_eq!(a.frontier, b.frontier);
        assert_eq!(a.avail, b.avail);
        assert_eq!(a.intervals, b.intervals);
        assert_eq!(a.rf_count, b.rf_count);
        assert_eq!(a.rf_peak, b.rf_peak);
        assert_eq!(a.crf, b.crf);
        assert_eq!(a.homes, b.homes);
        assert_eq!(a.persistent_count, b.persistent_count);
        assert_eq!(a.last_home_read, b.last_home_read);
        assert_eq!(a.commit_debt, b.commit_debt);
        assert_eq!(a.first_cycle, b.first_cycle);
    }

    #[test]
    fn rollback_restores_the_exact_pre_trial_state() {
        let (cdfg, config, options) = ctx_objects();
        let pre = MapPre::new(&config);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state, &ctx);
        let ops: Vec<OpId> = cdfg.dfg(cmam_cdfg::BlockId(0)).op_ids().to_vec();
        assert!(p.try_place_op(&ctx, ops[0], TileId(0), 0));
        p.clear_journal();

        let snapshot = p.clone();
        // A successful trial with routing (mutates heavily), rolled back.
        let cp = p.checkpoint();
        assert!(p.try_place_op(&ctx, ops[1], TileId(10), 4));
        assert!(p.dirty_since(cp));
        p.rollback(cp);
        assert_semantically_equal(&p, &snapshot);

        // A failing trial (leaves residue), rolled back.
        let cp = p.checkpoint();
        assert!(!p.try_place_op(&ctx, ops[1], TileId(10), 1));
        p.rollback(cp);
        assert_semantically_equal(&p, &snapshot);

        // After rollback the original bindings must still work, and the
        // partial must finish exactly as an untouched one would.
        assert!(p.try_place_op(&ctx, ops[1], TileId(0), 1));
        assert!(p.try_place_op(&ctx, ops[2], TileId(0), 2));
        assert!(p.finalize(&ctx, cmam_cdfg::BlockId(0)));
    }

    #[test]
    fn incremental_run_counters_match_a_rescan() {
        let (cdfg, config, options) = ctx_objects();
        let pre = MapPre::new(&config);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &config,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        let state = FlowState::new(16);
        let mut p = Partial::new(&state, &ctx);
        // Occupy a scattered pattern on one tile and check the counters
        // against a from-scratch recount at every step.
        let t = TileId(2);
        for &c in &[7usize, 2, 9, 3, 15, 0, 8] {
            p.occupy(t, c);
            let occ: Vec<usize> = (0..p.max_schedule)
                .filter(|&c| !p.slot_free(t, c))
                .collect();
            let interior = occ.windows(2).filter(|w| w[1] - w[0] > 1).count();
            assert_eq!(p.interior[t.0] as usize, interior, "after cycle {c}");
            assert_eq!(p.occ_min[t.0] as usize, *occ.first().unwrap());
            assert_eq!(p.occ_max[t.0] as usize, *occ.last().unwrap());
            assert_eq!(p.instr_count(t), occ.len());
        }
        // exact_words against the definition: instr + idle runs.
        // occ = {0,2,3,7,8,9,15}: gaps 3->7 and 9->15 are interior runs,
        // plus the single-cycle gap at 1.
        assert_eq!(p.interior[t.0], 3);
        assert_eq!(p.exact_words(t, 16), 7 + 3);
        assert_eq!(p.exact_words(t, 20), 7 + 3 + 1); // trailing run
    }
}
