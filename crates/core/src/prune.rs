//! Pruning of the partial-mapping population.
//!
//! Three filters, applied in the paper's order after every binding round:
//!
//! 1. [`acmap_filter`] — approximate context-memory aware pruning
//!    (Section III-D.2), cheap but approximate;
//! 2. [`ecmap_filter`] — exact context-memory aware pruning
//!    (Section III-D.3) on the exact lower bound of each tile's context
//!    words;
//! 3. [`stochastic_prune`] — the basic flow's stochastic pruning: keeps
//!    an elite by cost, fills the rest of the population by seeded random
//!    sampling below a cost threshold.

use crate::partial::{MapCtx, Partial};
use rand::rngs::StdRng;
use rand::RngExt;

// The flow driver itself evaluates the ACMAP/ECMAP verdicts per
// candidate while the trial delta is applied (see `flow.rs`); the filter
// functions below remain the reference formulation over materialised
// partials (and are what the filter unit tests exercise).

/// Drops partials whose ACMAP word estimate exceeds any tile's context
/// memory. Returns the number of dropped partials.
pub fn acmap_filter(pool: &mut Vec<Partial>, ctx: &MapCtx<'_>) -> usize {
    let before = pool.len();
    pool.retain(|p| {
        ctx.config
            .geometry()
            .tiles()
            .all(|t| p.acmap_words(t) <= ctx.capacity(t))
    });
    before - pool.len()
}

/// Drops partials whose exact context-word lower bound exceeds any tile's
/// context memory. Returns the number of dropped partials.
pub fn ecmap_filter(pool: &mut Vec<Partial>, ctx: &MapCtx<'_>) -> usize {
    let before = pool.len();
    pool.retain(|p| {
        ctx.config
            .geometry()
            .tiles()
            .all(|t| p.ecmap_words(t) <= ctx.capacity(t))
    });
    before - pool.len()
}

/// The basic flow's stochastic pruning. Sorts the pool by cost, always
/// keeps the best `cap / 2` (the elite), and fills the remaining
/// population by uniform random sampling (seeded, deterministic) from the
/// partials below the cost threshold set by rank `4 * cap`.
///
/// Returns the surviving population (at most `cap` partials).
pub fn stochastic_prune(pool: Vec<Partial>, cap: usize, rng: &mut StdRng) -> Vec<Partial> {
    stochastic_prune_by(pool, cap, rng, Partial::cost)
}

/// [`stochastic_prune`] generalised over the pruned element type.
///
/// The mapper's clone-free candidate expansion prunes lightweight
/// *candidate descriptors* (parent index + placement + cached cost)
/// instead of materialised [`Partial`]s; because the sort is stable and
/// the RNG consumption depends only on pool length and order, pruning
/// descriptors selects exactly the candidates pruning partials would.
pub fn stochastic_prune_by<T, K, F>(
    mut pool: Vec<T>,
    cap: usize,
    rng: &mut StdRng,
    cost: F,
) -> Vec<T>
where
    K: Ord,
    F: Fn(&T) -> K,
{
    assert!(cap > 0, "population cap must be positive");
    pool.sort_by_key(&cost);
    if pool.len() <= cap {
        return pool;
    }
    // Threshold function: everything ranked worse than 4*cap is discarded
    // outright; the elite survives; the middle is sampled.
    pool.truncate(4 * cap);
    let elite = cap / 2;
    let mut survivors: Vec<T> = Vec::with_capacity(cap);
    let mut rest: Vec<T> = Vec::new();
    for (i, p) in pool.into_iter().enumerate() {
        if i < elite {
            survivors.push(p);
        } else {
            rest.push(p);
        }
    }
    // Reservoir-style sampling of the remaining slots.
    let slots = cap - survivors.len();
    let mut chosen: Vec<T> = Vec::with_capacity(slots);
    for (i, p) in rest.into_iter().enumerate() {
        if chosen.len() < slots {
            chosen.push(p);
        } else {
            let j = rng.random_range(0..=i);
            if j < slots {
                chosen[j] = p;
            }
        }
    }
    survivors.extend(chosen);
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::MapperOptions;
    use crate::partial::FlowState;
    use cmam_arch::{CgraConfig, TileId};
    use cmam_cdfg::{CdfgBuilder, Opcode};
    use rand::SeedableRng;

    fn make_pool(n: usize) -> (Vec<Partial>, cmam_cdfg::Cdfg, CgraConfig, MapperOptions) {
        let mut b = CdfgBuilder::new("t");
        let bb = b.block("b");
        b.select(bb);
        let c1 = b.constant(1);
        let c2 = b.constant(2);
        let v = b.op(Opcode::Add, &[c1, c2]);
        let a = b.constant(0);
        b.store(a, v, "m");
        b.ret();
        let cdfg = b.finish().unwrap();
        let config = CgraConfig::hom64();
        let options = MapperOptions::basic();
        let state = FlowState::new(16);
        let mut pool = Vec::new();
        {
            let pre = crate::partial::MapPre::new(&config);
            let ctx = MapCtx {
                cdfg: &cdfg,
                config: &config,
                options: &options,
                reserve: 0,
                pre: &pre,
            };
            let ops: Vec<_> = cdfg.dfg(bb).op_ids().to_vec();
            for i in 0..n {
                let mut p = Partial::new(&state, &ctx);
                // Spread over different cycles to vary cost.
                assert!(p.try_place_op(&ctx, ops[0], TileId(8 + (i % 8)), i % 5));
                pool.push(p);
            }
        }
        (pool, cdfg, config, options)
    }

    #[test]
    fn stochastic_prune_caps_population_and_keeps_elite() {
        let (pool, _c, _g, _o) = make_pool(100);
        let best_cost = pool.iter().map(Partial::cost).min().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let out = stochastic_prune(pool, 10, &mut rng);
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].cost(), best_cost);
        // Elite is sorted by cost at the front.
        for w in out[..5].windows(2) {
            assert!(w[0].cost() <= w[1].cost());
        }
    }

    #[test]
    fn stochastic_prune_is_deterministic_for_a_seed() {
        let (pool, _c, _g, _o) = make_pool(60);
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = stochastic_prune(pool.clone(), 8, &mut r1);
        let b = stochastic_prune(pool, 8, &mut r2);
        let ca: Vec<_> = a.iter().map(Partial::cost).collect();
        let cb: Vec<_> = b.iter().map(Partial::cost).collect();
        assert_eq!(ca, cb);
    }

    #[test]
    fn small_pools_pass_through() {
        let (pool, _c, _g, _o) = make_pool(5);
        let mut rng = StdRng::seed_from_u64(1);
        let out = stochastic_prune(pool, 10, &mut rng);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn memory_filters_drop_overfull_partials() {
        let (pool, cdfg, _config, options) = make_pool(6);
        // A 1-word CM per tile makes everything infeasible under ECMAP
        // (every tile pays at least one word).
        let tiny = CgraConfig::builder(4, 4).uniform_cm(1).build().unwrap();
        let pre = crate::partial::MapPre::new(&tiny);
        let ctx = MapCtx {
            cdfg: &cdfg,
            config: &tiny,
            options: &options,
            reserve: 0,
            pre: &pre,
        };
        // Placements at cycle 0 fit (one instruction, no idle run); every
        // placement at a later cycle also needs a leading pnop -> 2 words.
        // The pool cycles are i % 5 for i in 0..6: cycles 1..=4 overflow.
        let mut p2 = pool.clone();
        let dropped = ecmap_filter(&mut p2, &ctx);
        assert_eq!(dropped, 4);
        // ACMAP (interior runs only) is weaker: a single placed op with no
        // interior gap still passes a 1-word CM.
        let mut p3 = pool.clone();
        let dropped_a = acmap_filter(&mut p3, &ctx);
        assert!(dropped_a <= dropped);
    }
}
