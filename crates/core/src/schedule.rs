//! Static list-scheduling order for one block.
//!
//! The paper's list scheduler selects, among *ready* operations, the one
//! with the best priority — mobility first (critical operations have
//! mobility 0), then the number of fan-outs ("the schedulable operations
//! are listed by priority order, which is defined by their mobility and
//! number of fan-outs"). Readiness follows the dependency graph (data
//! edges plus memory-order edges), so the produced order is topological.

use cmam_cdfg::analysis::{mobility, DepGraph};
use cmam_cdfg::{Dfg, OpId};
use std::collections::HashMap;

/// Computes the binding order of a block's operations: ready-driven
/// selection by `(mobility asc, fan-out desc, id asc)`.
pub fn priority_order(dfg: &Dfg<'_>, deps: &DepGraph) -> Vec<OpId> {
    let mob = mobility(dfg, deps);
    let mut pending: HashMap<OpId, usize> = dfg
        .op_ids()
        .iter()
        .map(|&id| (id, deps.preds_of(id).len()))
        .collect();
    let mut order = Vec::with_capacity(dfg.num_ops());
    while !pending.is_empty() {
        let mut ready: Vec<OpId> = pending
            .iter()
            .filter(|&(_, &cnt)| cnt == 0)
            .map(|(&id, _)| id)
            .collect();
        assert!(!ready.is_empty(), "dependency cycle in block DFG");
        ready.sort_by_key(|&id| (mob[&id], std::cmp::Reverse(dfg.fanout(id)), id));
        let chosen = ready[0];
        pending.remove(&chosen);
        for &s in deps.succs_of(chosen) {
            if let Some(c) = pending.get_mut(&s) {
                *c -= 1;
            }
        }
        order.push(chosen);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmam_cdfg::{CdfgBuilder, Opcode};

    #[test]
    fn order_is_topological_and_prioritised() {
        let mut b = CdfgBuilder::new("t");
        let bb = b.block("b");
        b.select(bb);
        let a0 = b.constant(0);
        // Critical chain: load -> mul -> add; independent side op: xor.
        let x = b.load_name(a0, "m");
        let m = b.op(Opcode::Mul, &[x, x]);
        let s = b.op(Opcode::Add, &[m, m]);
        let c7 = b.constant(7);
        let c9 = b.constant(9);
        let _side = b.op(Opcode::Xor, &[c7, c9]);
        let a1 = b.constant(1);
        b.store(a1, s, "m");
        b.ret();
        let cdfg = b.finish().unwrap();
        let dfg = cdfg.dfg(bb);
        let deps = DepGraph::build(&dfg);
        let order = priority_order(&dfg, &deps);
        assert_eq!(order.len(), dfg.num_ops());
        // Topological: each op after its preds.
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        for &o in dfg.op_ids() {
            for &p in deps.preds_of(o) {
                assert!(pos[&p] < pos[&o]);
            }
        }
        // The critical load is selected before the high-mobility xor.
        let load = dfg.op_ids()[0];
        let xor = dfg.op_ids()[3];
        assert!(pos[&load] < pos[&xor]);
    }
}
