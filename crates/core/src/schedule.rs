//! Static list-scheduling order for one block.
//!
//! The paper's list scheduler selects, among *ready* operations, the one
//! with the best priority — mobility first (critical operations have
//! mobility 0), then the number of fan-outs ("the schedulable operations
//! are listed by priority order, which is defined by their mobility and
//! number of fan-outs"). Readiness follows the dependency graph (data
//! edges plus memory-order edges), so the produced order is topological.
//!
//! Selection runs on a binary min-heap over `(mobility, fan-out desc,
//! id)` with dense op-indexed pending counts — O(n log n) instead of the
//! former rebuild-the-ready-list-per-pick O(n²) with hashed lookups. The
//! key is a total order (the id breaks every tie), so the produced
//! sequence is identical to the old selection.

use cmam_cdfg::analysis::{mobility, DepGraph};
use cmam_cdfg::{Dfg, OpId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes the binding order of a block's operations: ready-driven
/// selection by `(mobility asc, fan-out desc, id asc)`.
pub fn priority_order(dfg: &Dfg<'_>, deps: &DepGraph) -> Vec<OpId> {
    let mob = mobility(dfg, deps);
    // Dense tables over the global op-id space (op ids are arena indices
    // of the whole CDFG; a block's ids are a subset).
    let max_id = dfg.op_ids().iter().map(|o| o.0).max().map_or(0, |m| m + 1);
    // Pending predecessor counts; `usize::MAX` marks "not in this block".
    let mut pending = vec![usize::MAX; max_id as usize];
    for &id in dfg.op_ids() {
        pending[id.0 as usize] = deps.preds_of(id).len();
    }
    type Key = (usize, Reverse<usize>, OpId);
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::with_capacity(dfg.num_ops());
    let key = |id: OpId| (mob[&id], Reverse(dfg.fanout(id)), id);
    for &id in dfg.op_ids() {
        if pending[id.0 as usize] == 0 {
            heap.push(Reverse(key(id)));
        }
    }
    let mut order = Vec::with_capacity(dfg.num_ops());
    while let Some(Reverse((_, _, chosen))) = heap.pop() {
        order.push(chosen);
        for &s in deps.succs_of(chosen) {
            let cnt = &mut pending[s.0 as usize];
            if *cnt != usize::MAX {
                *cnt -= 1;
                if *cnt == 0 {
                    heap.push(Reverse(key(s)));
                }
            }
        }
    }
    assert_eq!(order.len(), dfg.num_ops(), "dependency cycle in block DFG");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmam_cdfg::{CdfgBuilder, Opcode};

    #[test]
    fn order_is_topological_and_prioritised() {
        let mut b = CdfgBuilder::new("t");
        let bb = b.block("b");
        b.select(bb);
        let a0 = b.constant(0);
        // Critical chain: load -> mul -> add; independent side op: xor.
        let x = b.load_name(a0, "m");
        let m = b.op(Opcode::Mul, &[x, x]);
        let s = b.op(Opcode::Add, &[m, m]);
        let c7 = b.constant(7);
        let c9 = b.constant(9);
        let _side = b.op(Opcode::Xor, &[c7, c9]);
        let a1 = b.constant(1);
        b.store(a1, s, "m");
        b.ret();
        let cdfg = b.finish().unwrap();
        let dfg = cdfg.dfg(bb);
        let deps = DepGraph::build(&dfg);
        let order = priority_order(&dfg, &deps);
        assert_eq!(order.len(), dfg.num_ops());
        // Topological: each op after its preds.
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        for &o in dfg.op_ids() {
            for &p in deps.preds_of(o) {
                assert!(pos[&p] < pos[&o]);
            }
        }
        // The critical load is selected before the high-mobility xor.
        let load = dfg.op_ids()[0];
        let xor = dfg.op_ids()[3];
        assert!(pos[&load] < pos[&xor]);
    }

    #[test]
    fn heap_selection_matches_the_reference_rebuild() {
        // A denser block with mixed mobilities and fan-outs: the heap
        // selection must reproduce the former sort-the-ready-list pick
        // exactly (same key, total order).
        let mut b = CdfgBuilder::new("dense");
        let bb = b.block("b");
        b.select(bb);
        let a0 = b.constant(0);
        let x = b.load_name(a0, "m");
        let y = b.op(Opcode::Add, &[x, x]);
        let z = b.op(Opcode::Mul, &[y, x]);
        let w = b.op(Opcode::Sub, &[z, y]);
        let c1 = b.constant(5);
        let s1 = b.op(Opcode::Xor, &[c1, c1]);
        let s2 = b.op(Opcode::Or, &[s1, c1]);
        let a1 = b.constant(1);
        b.store(a1, w, "m");
        let a2 = b.constant(2);
        b.store(a2, s2, "m");
        b.ret();
        let cdfg = b.finish().unwrap();
        let dfg = cdfg.dfg(bb);
        let deps = DepGraph::build(&dfg);
        let order = priority_order(&dfg, &deps);

        // Reference implementation (the pre-optimization algorithm).
        let mob = mobility(&dfg, &deps);
        let mut pending: std::collections::HashMap<OpId, usize> = dfg
            .op_ids()
            .iter()
            .map(|&id| (id, deps.preds_of(id).len()))
            .collect();
        let mut reference = Vec::new();
        while !pending.is_empty() {
            let mut ready: Vec<OpId> = pending
                .iter()
                .filter(|&(_, &cnt)| cnt == 0)
                .map(|(&id, _)| id)
                .collect();
            ready.sort_by_key(|&id| (mob[&id], Reverse(dfg.fanout(id)), id));
            let chosen = ready[0];
            pending.remove(&chosen);
            for &s in deps.succs_of(chosen) {
                if let Some(c) = pending.get_mut(&s) {
                    *c -= 1;
                }
            }
            reference.push(chosen);
        }
        assert_eq!(order, reference);
    }
}
