//! Area model (Fig 11).
//!
//! Both designs embed the same 32 kB data memory; the CPU additionally has
//! a 1 kB instruction cache and a 4 kB program memory ("equivalent to the
//! design parameters of the CGRAs used in the experiments", Section IV-C),
//! while the CGRA has per-tile context memories, the global context
//! memory/controller and the point-to-point torus interconnect.

use cmam_arch::CgraConfig;

/// Component areas in µm² (synthetic 28nm-scale constants; see the crate
/// docs for the substitution rationale).
#[derive(Debug, Clone, PartialEq)]
pub struct AreaParams {
    /// PE datapath + decoder + controller (per tile).
    pub pe_logic: f64,
    /// Regular register file (per tile).
    pub rf: f64,
    /// Constant register file (per tile).
    pub crf: f64,
    /// Load/store unit (per LSU tile).
    pub lsu: f64,
    /// Context memory, per instruction word.
    pub cm_per_word: f64,
    /// Torus interconnect (whole array).
    pub interconnect: f64,
    /// CGRA global controller + global context memory.
    pub global_ctrl: f64,
    /// Shared 32 kB data memory (TCDM).
    pub dmem: f64,
    /// CPU core (or1k-class, pipeline + control).
    pub cpu_core: f64,
    /// CPU 1 kB instruction cache.
    pub cpu_icache: f64,
    /// CPU 4 kB program memory.
    pub cpu_progmem: f64,
}

impl Default for AreaParams {
    fn default() -> Self {
        AreaParams {
            pe_logic: 3000.0,
            rf: 700.0,
            crf: 600.0,
            lsu: 500.0,
            // 64 words -> 3328 µm²: ~41% of a full LSU PE (8128 µm²),
            // matching the paper's "a 64-word context memory typically
            // represents 40% of a processing element area".
            cm_per_word: 52.0,
            interconnect: 10000.0,
            global_ctrl: 15000.0,
            dmem: 120000.0,
            cpu_core: 15000.0,
            cpu_icache: 6000.0,
            cpu_progmem: 18000.0,
        }
    }
}

/// An area breakdown in µm² (the Fig 11 bars).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AreaBreakdown {
    /// PE logic, register files, LSUs (CGRA) or CPU core (CPU).
    pub logic: f64,
    /// Context memories (CGRA) or icache + program memory (CPU).
    pub instruction_memory: f64,
    /// Interconnect + global control (CGRA only).
    pub interconnect: f64,
    /// Shared data memory.
    pub data_memory: f64,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total(&self) -> f64 {
        self.logic + self.instruction_memory + self.interconnect + self.data_memory
    }
}

/// Area of a CGRA configuration.
pub fn cgra_area(params: &AreaParams, config: &CgraConfig) -> AreaBreakdown {
    let mut logic = 0.0;
    let mut cm = 0.0;
    for (_, tile) in config.tiles() {
        logic += params.pe_logic + params.rf + params.crf;
        if tile.has_lsu {
            logic += params.lsu;
        }
        cm += params.cm_per_word * tile.cm_words as f64;
    }
    AreaBreakdown {
        logic,
        instruction_memory: cm,
        interconnect: params.interconnect + params.global_ctrl,
        data_memory: params.dmem,
    }
}

/// Area of the or1k-class CPU with equivalent memories.
pub fn cpu_area(params: &AreaParams) -> AreaBreakdown {
    AreaBreakdown {
        logic: params.cpu_core,
        instruction_memory: params.cpu_icache + params.cpu_progmem,
        interconnect: 0.0,
        data_memory: params.dmem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm_is_about_forty_percent_of_pe() {
        let p = AreaParams::default();
        let pe = p.pe_logic + p.rf + p.crf + p.lsu;
        let cm64 = 64.0 * p.cm_per_word;
        let share = cm64 / (pe + cm64);
        assert!((0.35..=0.45).contains(&share), "share {share}");
    }

    #[test]
    fn hom64_is_largest_and_hets_sit_between() {
        let p = AreaParams::default();
        let cpu = cpu_area(&p).total();
        let hom64 = cgra_area(&p, &CgraConfig::hom64()).total();
        let het1 = cgra_area(&p, &CgraConfig::het1()).total();
        let het2 = cgra_area(&p, &CgraConfig::het2()).total();
        assert!(hom64 > het1 && het1 > het2, "{hom64} {het1} {het2}");
        // Fig 11 shape: HOM64 ~2x CPU, HET ~1.5x CPU.
        let r64 = hom64 / cpu;
        let r1 = het1 / cpu;
        assert!((1.5..=2.3).contains(&r64), "HOM64/CPU {r64}");
        assert!((1.3..=1.8).contains(&r1), "HET1/CPU {r1}");
        assert!(r1 < r64);
    }

    #[test]
    fn area_scales_with_cm_words() {
        let p = AreaParams::default();
        let hom64 = cgra_area(&p, &CgraConfig::hom64());
        let hom32 = cgra_area(&p, &CgraConfig::hom32());
        assert!((hom64.instruction_memory - 2.0 * hom32.instruction_memory).abs() < 1e-9);
        assert_eq!(hom64.logic, hom32.logic);
    }
}
