//! Energy model (Table II).
//!
//! Event energies in pJ at the paper's 0.6 V near-threshold operating
//! point. The key structural property, mirrored from the paper's premise,
//! is that the **context memory dominates the PE energy**: every active
//! cycle fetches one CM word, the fetch energy grows with the CM size
//! (longer bitlines), and leakage grows with CM area — while a `pnop`
//! keeps the tile clock-gated with a single fetch for the whole idle run.
//! Shrinking HOM64 to the HET configurations therefore cuts both the
//! per-fetch and the leakage terms, which is exactly the effect Table II
//! quantifies.

use cmam_arch::{CgraConfig, TileId};
use cmam_cpu::CpuStats;
use cmam_sim::SimStats;

/// Event energies (pJ) and leakage powers (pJ/cycle).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    // --- CGRA ---
    /// ALU operation (add/sub/logic/compare).
    pub alu_op: f64,
    /// Multiply surcharge on top of `alu_op`.
    pub mul_extra: f64,
    /// A `move` instruction.
    pub mov_op: f64,
    /// Register-file read / write.
    pub rf_read: f64,
    /// Register-file write.
    pub rf_write: f64,
    /// Constant-register-file read.
    pub crf_read: f64,
    /// Neighbour RF read through the point-to-point interconnect.
    pub neighbor_read: f64,
    /// Context-memory fetch:
    /// `cm_fetch_base + cm_fetch_per_word * words + cm_fetch_per_word2 * words²`.
    /// The superlinear term reflects that small context memories are
    /// latch/register arrays while larger ones are compiled SRAM macros
    /// with disproportionately higher near-threshold access energy.
    pub cm_fetch_base: f64,
    /// Linear per-word slope of the CM fetch energy.
    pub cm_fetch_per_word: f64,
    /// Quadratic per-word² term of the CM fetch energy.
    pub cm_fetch_per_word2: f64,
    /// TCDM access (load or store) including the logarithmic interconnect.
    pub tcdm_access: f64,
    /// Tile leakage (pJ/cycle):
    /// `tile_leak_base + tile_leak_per_word * words + tile_leak_per_word2 * words²`;
    /// clock-gated tiles still leak, and the superlinear term mirrors the
    /// fetch energy's memory-implementation argument.
    pub tile_leak_base: f64,
    /// Linear per-CM-word slope of tile leakage.
    pub tile_leak_per_word: f64,
    /// Quadratic per-word² term of tile leakage.
    pub tile_leak_per_word2: f64,
    /// Global leakage (controller, interconnect, TCDM) per cycle.
    pub global_leak: f64,
    // --- CPU ---
    /// Instruction fetch: the or1k reads each instruction from its 4 kB
    /// program memory / 1 kB I-cache — a far larger (and costlier) array
    /// than any per-tile context memory.
    pub cpu_ifetch: f64,
    /// Per-cycle pipeline/clock-tree energy of the active core.
    pub cpu_pipeline: f64,
    /// CPU register-file read.
    pub cpu_rf_read: f64,
    /// CPU register-file write.
    pub cpu_rf_write: f64,
    /// CPU ALU operation.
    pub cpu_alu: f64,
    /// CPU multiply surcharge.
    pub cpu_mul_extra: f64,
    /// CPU data-memory access.
    pub cpu_dmem: f64,
    /// CPU leakage per cycle (core + caches).
    pub cpu_leak: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            alu_op: 0.5,
            mul_extra: 0.4,
            mov_op: 0.3,
            rf_read: 0.08,
            rf_write: 0.10,
            crf_read: 0.06,
            neighbor_read: 0.15,
            cm_fetch_base: 0.30,
            cm_fetch_per_word: 0.025,
            cm_fetch_per_word2: 4.5e-4,
            tcdm_access: 1.5,
            tile_leak_base: 0.10,
            tile_leak_per_word: 0.008,
            tile_leak_per_word2: 5.5e-4,
            global_leak: 1.0,
            cpu_ifetch: 12.0,
            cpu_pipeline: 12.0,
            cpu_rf_read: 0.8,
            cpu_rf_write: 0.9,
            cpu_alu: 1.5,
            cpu_mul_extra: 2.0,
            cpu_dmem: 5.0,
            cpu_leak: 12.0,
        }
    }
}

impl EnergyParams {
    /// CM fetch energy for a context memory of `words` words.
    pub fn cm_fetch(&self, words: usize) -> f64 {
        let w = words as f64;
        self.cm_fetch_base + self.cm_fetch_per_word * w + self.cm_fetch_per_word2 * w * w
    }

    /// Tile leakage (pJ/cycle) for a context memory of `words` words.
    pub fn tile_leak(&self, words: usize) -> f64 {
        let w = words as f64;
        self.tile_leak_base + self.tile_leak_per_word * w + self.tile_leak_per_word2 * w * w
    }
}

/// An energy breakdown; all terms in µJ.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Datapath (ALU + moves + multiplies).
    pub compute: f64,
    /// Register files (RF + CRF + neighbour reads / CPU RF).
    pub registers: f64,
    /// Instruction supply (CM fetches / CPU ifetch + pipeline).
    pub instruction_supply: f64,
    /// Data memory.
    pub data_memory: f64,
    /// Leakage over the run time.
    pub leakage: f64,
}

impl EnergyBreakdown {
    /// Total energy in µJ.
    pub fn total(&self) -> f64 {
        self.compute + self.registers + self.instruction_supply + self.data_memory + self.leakage
    }
}

const PJ_TO_UJ: f64 = 1e-6;

/// Energy of one CGRA run.
///
/// `mul_fraction` of ALU operations are charged the multiply surcharge;
/// the simulator does not distinguish multiplies, so the caller provides
/// the kernel's static mul share (the harness derives it from the CDFG).
pub fn cgra_energy(
    params: &EnergyParams,
    config: &CgraConfig,
    stats: &SimStats,
    mul_fraction: f64,
) -> EnergyBreakdown {
    let mut compute = 0.0;
    let mut registers = 0.0;
    let mut instruction_supply = 0.0;
    let mut data_memory = 0.0;
    let mut leakage = 0.0;

    for (i, t) in stats.tiles.iter().enumerate() {
        let tile = TileId(i);
        let words = config.tile(tile).cm_words;
        let alu = t.alu_ops as f64;
        compute += alu * (params.alu_op + mul_fraction * params.mul_extra);
        compute += t.moves as f64 * params.mov_op;
        registers += t.rf_reads as f64 * params.rf_read
            + t.rf_writes as f64 * params.rf_write
            + t.crf_reads as f64 * params.crf_read
            + t.neighbor_reads as f64 * params.neighbor_read;
        instruction_supply += t.cm_fetches as f64 * params.cm_fetch(words);
        data_memory += (t.loads + t.stores) as f64 * params.tcdm_access;
        leakage += stats.cycles as f64 * params.tile_leak(words);
    }
    leakage += stats.cycles as f64 * params.global_leak;

    EnergyBreakdown {
        compute: compute * PJ_TO_UJ,
        registers: registers * PJ_TO_UJ,
        instruction_supply: instruction_supply * PJ_TO_UJ,
        data_memory: data_memory * PJ_TO_UJ,
        leakage: leakage * PJ_TO_UJ,
    }
}

/// Energy of one CPU run.
pub fn cpu_energy(params: &EnergyParams, stats: &CpuStats) -> EnergyBreakdown {
    let instr = stats.instructions as f64;
    let cycles = stats.cycles as f64;
    EnergyBreakdown {
        compute: (instr * params.cpu_alu + stats.muls as f64 * params.cpu_mul_extra) * PJ_TO_UJ,
        registers: (stats.rf_reads as f64 * params.cpu_rf_read
            + stats.rf_writes as f64 * params.cpu_rf_write)
            * PJ_TO_UJ,
        instruction_supply: (stats.imem_reads as f64 * params.cpu_ifetch
            + cycles * params.cpu_pipeline)
            * PJ_TO_UJ,
        data_memory: stats.dmem_accesses as f64 * params.cpu_dmem * PJ_TO_UJ,
        leakage: cycles * params.cpu_leak * PJ_TO_UJ,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmam_sim::TileStats;

    fn synthetic_stats(cycles: u64, per_tile_ops: u64, ntiles: usize) -> SimStats {
        let mut s = SimStats {
            cycles,
            stall_cycles: 0,
            block_execs: Default::default(),
            tiles: vec![TileStats::default(); ntiles],
        };
        for t in &mut s.tiles {
            t.alu_ops = per_tile_ops;
            t.active_cycles = per_tile_ops;
            t.idle_cycles = cycles - per_tile_ops;
            t.cm_fetches = per_tile_ops + 1;
            t.rf_reads = 2 * per_tile_ops;
            t.rf_writes = per_tile_ops;
            t.loads = per_tile_ops / 4;
        }
        s
    }

    #[test]
    fn smaller_cm_means_less_energy_at_equal_activity() {
        let p = EnergyParams::default();
        let stats = synthetic_stats(100, 50, 16);
        let hom64 = cgra_energy(&p, &CgraConfig::hom64(), &stats, 0.2).total();
        let het2 = cgra_energy(&p, &CgraConfig::het2(), &stats, 0.2).total();
        let hom32 = cgra_energy(&p, &CgraConfig::hom32(), &stats, 0.2).total();
        // Any halved-CM configuration beats HOM64 at equal activity. (HET2
        // can cost slightly more than HOM32 under *uniform* activity since
        // it keeps four 64-word memories; real mappings concentrate work
        // on those tiles.)
        assert!(het2 < hom64 && hom32 < hom64, "{het2} {hom32} {hom64}");
        // The gain from halving the total CM must be material (the paper's
        // smallest per-kernel gain is 1.4x overall).
        assert!(hom64 / het2 > 1.3, "gain {}", hom64 / het2);
    }

    #[test]
    fn cm_fetch_and_leak_scale_superlinearly() {
        let p = EnergyParams::default();
        // Per-word cost grows with memory size (latch array -> SRAM macro).
        let per64 = (p.cm_fetch(64) - p.cm_fetch_base) / 64.0;
        let per16 = (p.cm_fetch(16) - p.cm_fetch_base) / 16.0;
        assert!(per64 > per16, "{per64} {per16}");
        let l64 = (p.tile_leak(64) - p.tile_leak_base) / 64.0;
        let l16 = (p.tile_leak(16) - p.tile_leak_base) / 16.0;
        assert!(l64 > 2.0 * l16, "{l64} {l16}");
        // Absolute anchors: a 64-word CM leaks ~2.8 pJ/cycle.
        assert!((2.0..4.0).contains(&p.tile_leak(64)));
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let p = EnergyParams::default();
        let stats = synthetic_stats(200, 80, 16);
        let b = cgra_energy(&p, &CgraConfig::het1(), &stats, 0.3);
        let sum = b.compute + b.registers + b.instruction_supply + b.data_memory + b.leakage;
        assert!((b.total() - sum).abs() < 1e-15);
    }

    #[test]
    fn cpu_energy_counts_all_terms() {
        let p = EnergyParams::default();
        let stats = cmam_cpu::CpuStats {
            cycles: 1000,
            instructions: 600,
            imem_reads: 600,
            dmem_accesses: 100,
            rf_reads: 1100,
            rf_writes: 500,
            muls: 50,
        };
        let b = cpu_energy(&p, &stats);
        assert!(b.total() > 0.0);
        assert!(b.instruction_supply > b.compute, "ifetch+pipeline dominate");
        assert!(b.leakage > 0.0);
    }
}
