//! # cmam-energy — area and energy models (Fig 11, Table II)
//!
//! The paper's area/energy numbers come from Synopsys Design Compiler and
//! PrimePower runs at 28nm UTBB FD-SOI, 0.6 V, 25°C. Those tools and
//! libraries are not reproducible here, so this crate substitutes a
//! **component-level analytical model** with synthetic but
//! near-threshold-plausible constants (documented on [`EnergyParams`] and
//! [`AreaParams`]). The substitution preserves what the paper actually
//! reports — *ratios* between configurations — because every configuration
//! is evaluated with the same constants and the first-order effect the
//! paper exploits is kept: **context memory fetch energy and leakage scale
//! with the CM word count**, and a 64-word CM is ~40% of a PE's area.
//!
//! Inputs are the activity counters of the CGRA simulator
//! (`cmam_sim::SimStats`) and the CPU baseline (`cmam_cpu::CpuStats`);
//! outputs are energy breakdowns in µJ and area breakdowns in µm².

pub mod area;
pub mod model;

pub use area::{cgra_area, cpu_area, AreaBreakdown, AreaParams};
pub use model::{cgra_energy, cpu_energy, EnergyBreakdown, EnergyParams};
