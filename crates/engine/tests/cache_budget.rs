//! The `CMAM_CACHE_BYTES` byte budget: eviction trims oldest-first on
//! write and must never corrupt surviving entries.

use cmam_core::FlowVariant;
use cmam_engine::cache::DiskCache;
use cmam_engine::job::{execute, JobRequest};
use std::path::PathBuf;

fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmam-budget-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Comparable view of a job result: content digest for successes, the
/// full failure rendering otherwise.
fn digest_of(result: &cmam_engine::JobResult) -> String {
    match result {
        Ok(out) => format!("ok:{:016x}", out.content_digest()),
        Err(fail) => format!("err:{fail:?}"),
    }
}

fn cache_dir_bytes(dir: &PathBuf) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.metadata().ok())
                .filter(|m| m.is_file())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// Store real job artifacts through a tiny budget: the directory must
/// stay within it, the newest entry must survive, and every surviving
/// file must still parse back to its original result bit-for-bit.
#[test]
fn eviction_keeps_the_store_within_budget_without_corrupting_survivors() {
    let dir = temp_cache_dir("trim");
    let specs = cmam_kernels::all();
    let config = cmam_arch::CgraConfig::hom64();

    // Measure one artifact so the budget forces evictions but always
    // fits the newest write.
    let probe_req = JobRequest::flow(&specs[0], FlowVariant::Basic, &config);
    let probe = execute(&probe_req);
    let artifact = cmam_engine::cache::serialize_result(&probe);
    let budget = (artifact.len() as u64) * 2 + 64;

    let cache = DiskCache::new(Some(dir.clone()), Some(budget));
    let mut stored: Vec<(u64, cmam_engine::JobResult)> = Vec::new();
    for spec in specs.iter() {
        for variant in [FlowVariant::Basic, FlowVariant::Cab] {
            let req = JobRequest::flow(spec, variant, &config);
            let result = execute(&req);
            cache.store(req.key(), &result);
            stored.push((req.key(), result));
            // Eviction happens on write: the store must already be
            // back under budget here, not just at the end.
            assert!(
                cache_dir_bytes(&dir) <= budget,
                "store exceeded budget after writing {}",
                req.label()
            );
        }
    }

    // The newest entry always survives its own write.
    let (last_key, last_result) = stored.last().expect("stored jobs");
    let reloaded = cache
        .load(*last_key)
        .expect("most recent artifact must survive eviction");
    assert_eq!(digest_of(&reloaded), digest_of(last_result));

    // Every key either round-trips bit-identically or is a clean miss;
    // eviction must never leave a corrupt readable entry.
    let mut survivors = 0usize;
    for (key, result) in &stored {
        match cache.load(*key) {
            Some(found) => {
                assert_eq!(
                    digest_of(&found),
                    digest_of(result),
                    "surviving artifact corrupted"
                );
                survivors += 1;
            }
            None => {}
        }
    }
    assert!(survivors >= 1, "budget fits at least the newest artifact");
    assert!(
        survivors < stored.len(),
        "budget of {budget} bytes should have evicted something"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// An unbounded cache (no `CMAM_CACHE_BYTES`) never evicts.
#[test]
fn unbounded_cache_keeps_everything() {
    let dir = temp_cache_dir("unbounded");
    let specs = cmam_kernels::all();
    let config = cmam_arch::CgraConfig::hom64();
    let cache = DiskCache::new(Some(dir.clone()), None);

    let mut keys = Vec::new();
    for spec in specs.iter().take(3) {
        let req = JobRequest::flow(spec, FlowVariant::Basic, &config);
        cache.store(req.key(), &execute(&req));
        keys.push(req.key());
    }
    for key in keys {
        assert!(
            cache.load(key).is_some(),
            "unbounded cache evicted {key:#x}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
