//! Corruption fuzz: every truncation and every byte-level bit-flip of a
//! valid on-disk artifact must be a **clean miss** — never a panic,
//! never a plausible-but-wrong parse. The trailing FNV-64 seal makes
//! this provable (its byte update is a bijection on the hash state, so
//! any single-byte difference changes the checksum), and this suite
//! checks the proof against real artifacts byte by byte.

use cmam_arch::CgraConfig;
use cmam_core::FlowVariant;
use cmam_engine::cache::{
    parse_batch_outcome, parse_result, serialize_batch_outcome, serialize_result,
};
use cmam_engine::{BatchSimOutcome, Engine, EngineOptions, FailStage, JobFailure, JobRequest};
use cmam_sim::{SimStats, TileStats};
use std::time::Duration;

/// A real success artifact: the smallest paper kernel compiled through
/// the actual pipeline, so the fuzz covers every section of the format
/// (stats, report, map counters, binary, instruction stream).
fn real_run_artifact() -> Vec<u8> {
    let spec = cmam_kernels::dc::spec();
    let config = CgraConfig::hom64();
    let req = JobRequest::flow(&spec, FlowVariant::Basic, &config);
    serialize_result(&cmam_engine::execute(&req))
}

fn failure_artifact() -> Vec<u8> {
    serialize_result(&Err(JobFailure::pipeline(
        FailStage::Assemble,
        "tile T3 needs 99 words\nbut has 16".into(),
        Duration::from_nanos(123_456_789),
    )))
}

fn bsim_artifact() -> Vec<u8> {
    serialize_batch_outcome(&BatchSimOutcome {
        lanes: vec![
            Ok(SimStats {
                cycles: 123,
                stall_cycles: 4,
                block_execs: vec![1, 7, 0],
                tiles: vec![TileStats {
                    active_cycles: 9,
                    ..TileStats::default()
                }],
            }),
            Err("address -3 out of bounds".into()),
        ],
        mem_digests: vec![0xDEAD, 0xBEEF],
        agg_cycles: 123,
        decode_time: Duration::from_nanos(5_000),
        sim_time: Duration::from_nanos(987_654_321),
    })
}

/// Exhaustive truncation: every strict prefix of the artifact is a miss;
/// only the full byte string parses.
fn assert_all_truncations_miss<T>(bytes: &[u8], parse: impl Fn(&[u8]) -> Option<T>, what: &str) {
    assert!(parse(bytes).is_some(), "{what}: the intact artifact parses");
    for cut in 0..bytes.len() {
        assert!(
            parse(&bytes[..cut]).is_none(),
            "{what}: truncation to {cut}/{} bytes parsed",
            bytes.len()
        );
    }
}

/// Single-bit corruption in every byte (the rotating bit position covers
/// all eight lanes across the file): every variant is a miss.
fn assert_all_bitflips_miss<T>(bytes: &[u8], parse: impl Fn(&[u8]) -> Option<T>, what: &str) {
    let mut work = bytes.to_vec();
    for i in 0..work.len() {
        let mask = 1u8 << (i % 8);
        work[i] ^= mask;
        assert!(
            parse(&work).is_none(),
            "{what}: flipping bit {} of byte {i} parsed",
            i % 8
        );
        work[i] ^= mask;
    }
    assert_eq!(work, bytes, "fuzz must restore the artifact");
}

#[test]
fn every_truncation_of_a_run_artifact_is_a_clean_miss() {
    assert_all_truncations_miss(&real_run_artifact(), parse_result, "run(ok)");
    assert_all_truncations_miss(&failure_artifact(), parse_result, "run(err)");
}

#[test]
fn every_bitflip_of_a_run_artifact_is_a_clean_miss() {
    assert_all_bitflips_miss(&real_run_artifact(), parse_result, "run(ok)");
    // The failure artifact is small enough to flip every bit of every
    // byte, not just one per byte.
    let bytes = failure_artifact();
    let mut work = bytes.clone();
    for i in 0..work.len() {
        for bit in 0..8 {
            work[i] ^= 1 << bit;
            assert!(
                parse_result(&work).is_none(),
                "run(err): flipping bit {bit} of byte {i} parsed"
            );
            work[i] ^= 1 << bit;
        }
    }
    assert_eq!(work, bytes);
}

#[test]
fn every_truncation_and_bitflip_of_a_bsim_artifact_is_a_clean_miss() {
    let bytes = bsim_artifact();
    assert_all_truncations_miss(&bytes, parse_batch_outcome, "bsim");
    let mut work = bytes.clone();
    for i in 0..work.len() {
        for bit in 0..8 {
            work[i] ^= 1 << bit;
            assert!(
                parse_batch_outcome(&work).is_none(),
                "bsim: flipping bit {bit} of byte {i} parsed"
            );
            work[i] ^= 1 << bit;
        }
    }
    assert_eq!(work, bytes);
}

/// End-to-end self-heal: corrupt the artifact a real engine wrote, and a
/// fresh engine over the same store must treat it as a miss, delete it,
/// recompute the identical result and rewrite a good artifact in place.
#[test]
fn engine_self_heals_a_corrupted_artifact_end_to_end() {
    let dir = std::env::temp_dir().join(format!("cmam-fuzz-heal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine_over = |d: &std::path::Path| {
        Engine::new(EngineOptions {
            jobs: 2,
            cache_dir: Some(d.to_path_buf()),
            cache_bytes: None,
        })
    };
    let spec = cmam_kernels::dc::spec();
    let config = CgraConfig::hom64();
    let req = JobRequest::flow(&spec, FlowVariant::Basic, &config);

    let want = engine_over(&dir)
        .run_one(&req)
        .expect("DC maps on HOM64")
        .content_digest();
    let path = dir.join(format!("{:016x}.run", req.key()));
    assert!(path.exists(), "the first run persists an artifact");

    // Corrupt one payload byte on disk (past the magic, inside the data).
    let healed_before = cmam_obs::metrics::registry()
        .counter("engine.cache.corrupt_healed")
        .get();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let healer = engine_over(&dir);
    let got = healer
        .run_one(&req)
        .expect("DC still maps")
        .content_digest();
    assert_eq!(got, want, "the recomputed result must be bit-identical");
    assert_eq!(
        healer.stats().executed,
        1,
        "the corrupt artifact must recompute, not hit"
    );
    let healed_after = cmam_obs::metrics::registry()
        .counter("engine.cache.corrupt_healed")
        .get();
    assert_eq!(healed_after, healed_before + 1, "the heal must be counted");

    // The rewrite is the heal: the artifact on disk is good again.
    let rewritten = std::fs::read(&path).expect("artifact rewritten");
    assert!(parse_result(&rewritten).is_some());
    let third = engine_over(&dir);
    assert_eq!(third.run_one(&req).expect("hit").content_digest(), want);
    assert_eq!(third.stats().disk_hits, 1, "the healed artifact now hits");
    let _ = std::fs::remove_dir_all(&dir);
}
