//! The engine's two core guarantees, asserted over the full smoke sweep:
//!
//! 1. **Determinism** — a parallel run is bit-identical to a sequential
//!    (`jobs = 1`) run. Mapping is a pure seeded function, so thread
//!    count must never leak into results.
//! 2. **Memoisation** — a second engine over the same disk cache answers
//!    the whole sweep without executing anything, and returns identical
//!    `RunOutcome`s (including the originally measured compile times).

use cmam_arch::CgraConfig;
use cmam_core::FlowVariant;
use cmam_engine::{Engine, EngineOptions, JobRequest, JobResult};
use cmam_kernels::KernelSpec;
use std::path::PathBuf;

/// The full smoke sweep: every kernel crossed with the canonical
/// [`cmam_engine::smoke_matrix`] combinations — the same job set the
/// `smoke` binary submits and CI diffs.
fn smoke_sweep() -> Vec<(KernelSpec, FlowVariant, CgraConfig)> {
    let mut out = Vec::new();
    for spec in cmam_kernels::all() {
        for (variant, config) in cmam_engine::smoke_matrix() {
            out.push((spec.clone(), variant, config));
        }
    }
    out
}

fn run_matrix(engine: &Engine, matrix: &[(KernelSpec, FlowVariant, CgraConfig)]) -> Vec<JobResult> {
    let requests: Vec<JobRequest> = matrix
        .iter()
        .map(|(spec, variant, config)| JobRequest::flow(spec, *variant, config))
        .collect();
    engine.run_batch(&requests)
}

/// Digest of a whole result vector; failures hash their display text.
fn digests(results: &[JobResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| match r {
            Ok(out) => format!("ok:{:016x}", out.content_digest()),
            Err(e) => format!("err:{e}"),
        })
        .collect()
}

fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmam-engine-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn parallel_run_is_bit_identical_to_sequential() {
    let matrix = smoke_sweep();
    let sequential = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: None,
        cache_bytes: None,
    });
    let parallel = Engine::new(EngineOptions {
        jobs: 4,
        cache_dir: None,
        cache_bytes: None,
    });
    let seq = run_matrix(&sequential, &matrix);
    let par = run_matrix(&parallel, &matrix);
    assert_eq!(sequential.stats().executed, parallel.stats().executed);
    assert_eq!(
        digests(&seq),
        digests(&par),
        "thread count changed a mapping outcome — the flow is not pure"
    );
}

#[test]
fn second_run_hits_the_disk_cache_with_identical_outcomes() {
    let dir = temp_cache_dir("cache");
    let matrix = smoke_sweep();

    let first_engine = Engine::new(EngineOptions {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        cache_bytes: None,
    });
    let first = run_matrix(&first_engine, &matrix);
    let first_stats = first_engine.stats();
    assert!(first_stats.executed > 0, "cold run must execute jobs");
    assert_eq!(first_stats.disk_hits, 0, "cold cache cannot hit");

    // A fresh engine — empty memo table — over the same directory must
    // answer everything from disk.
    let second_engine = Engine::new(EngineOptions {
        jobs: 2,
        cache_dir: Some(dir.clone()),
        cache_bytes: None,
    });
    let second = run_matrix(&second_engine, &matrix);
    let second_stats = second_engine.stats();
    assert_eq!(second_stats.executed, 0, "warm run must not execute");
    assert_eq!(
        second_stats.disk_hits, first_stats.executed,
        "every unique job must come back from disk"
    );
    assert_eq!(digests(&first), digests(&second));
    // The memoised artifacts preserve even the measured compile times.
    for (a, b) in first.iter().zip(&second) {
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_eq!(a.compile_time, b.compile_time);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
