//! The metrics layer's determinism contract: for the semantic counter
//! namespaces (`mapper.*`, `sim.*`, `engine.*`), the counter deltas of a
//! batch are a pure function of the submitted jobs — the engine worker
//! count must not leak into them. The scheduling-shaped namespaces
//! (`pool.*`, the `phase.*`/`batch.*` latency histograms and
//! `obs.warnings`) are documented as nondeterministic and excluded.
//!
//! This file deliberately holds a single `#[test]`: the metrics registry
//! is process-global, so a sibling test feeding counters concurrently
//! would corrupt the deltas.

use cmam_engine::{Engine, EngineOptions, JobRequest};
use std::collections::BTreeMap;

/// Counters in the namespaces whose totals are promised deterministic.
fn semantic_counters() -> BTreeMap<&'static str, u64> {
    cmam_obs::metrics::registry()
        .counter_snapshot()
        .into_iter()
        .filter(|(name, _)| {
            name.starts_with("mapper.") || name.starts_with("sim.") || name.starts_with("engine.")
        })
        .collect()
}

/// Per-counter delta across a closure, as `name -> increment`.
fn counter_delta(run: impl FnOnce()) -> BTreeMap<&'static str, u64> {
    let before = semantic_counters();
    run();
    semantic_counters()
        .into_iter()
        .map(|(name, v)| (name, v - before.get(name).copied().unwrap_or(0)))
        .collect()
}

#[test]
fn counter_deltas_are_identical_across_worker_counts() {
    let specs = cmam_kernels::all();
    let matrix = cmam_engine::smoke_matrix();
    let requests: Vec<JobRequest> = specs
        .iter()
        .flat_map(|s| matrix.iter().map(move |(v, c)| JobRequest::flow(s, *v, c)))
        .collect();

    // Fresh engines, no disk cache: both runs execute every job, so the
    // deltas measure the full pipeline and not a cache short-circuit.
    let sequential = counter_delta(|| {
        let engine = Engine::new(EngineOptions {
            jobs: 1,
            cache_dir: None,
            cache_bytes: None,
        });
        engine.run_batch(&requests);
    });
    let parallel = counter_delta(|| {
        let engine = Engine::new(EngineOptions {
            jobs: 4,
            cache_dir: None,
            cache_bytes: None,
        });
        engine.run_batch(&requests);
    });

    assert!(
        sequential.get("engine.executed").copied().unwrap_or(0) >= requests.len() as u64,
        "sequential run was supposed to execute the whole batch: {sequential:?}"
    );
    assert!(
        sequential.get("mapper.maps").copied().unwrap_or(0) > 0,
        "mapper counters were supposed to be fed: {sequential:?}"
    );

    let mut diffs = Vec::new();
    for (name, seq) in &sequential {
        let par = parallel.get(name).copied().unwrap_or(0);
        if *seq != par {
            diffs.push(format!("  {name}: jobs=1 -> {seq}, jobs=4 -> {par}"));
        }
    }
    for name in parallel.keys() {
        if !sequential.contains_key(name) {
            diffs.push(format!("  {name}: only appeared in the jobs=4 run"));
        }
    }
    assert!(
        diffs.is_empty(),
        "semantic counter deltas diverged across worker counts:\n{}",
        diffs.join("\n")
    );
}
