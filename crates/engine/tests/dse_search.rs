//! Search correctness: the successive-halving scheduler must recover
//! the exact exhaustive Pareto frontier on the legacy validation space,
//! bit-identically at any thread count, and a killed search resumed
//! over the same artifact store must not re-execute finished jobs.

use cmam_arch::CgraConfig;
use cmam_core::FlowVariant;
use cmam_engine::search::{pareto_frontier, run_search, ConfigStatus, SearchOptions};
use cmam_engine::{Engine, EngineOptions, JobRequest, RunOutcome};
use cmam_kernels::KernelSpec;
use std::path::PathBuf;

/// A deterministic stand-in for the paper's energy model (the engine
/// crate has no energy model; `cmam_bench` injects the real one). Any
/// strictly positive function of (config, outcome) works for frontier
/// recovery, as long as search and exhaustive use the same one. Scaling
/// cycles by the CM provisioning creates a genuine energy/latency
/// trade-off across the space.
fn test_energy(configs: &[CgraConfig]) -> impl Fn(usize, usize, &RunOutcome) -> f64 + '_ {
    |ci, _ki, out| {
        let words = configs[ci].total_cm_words() as f64;
        out.cycles as f64 * (1.0 + words / 256.0)
    }
}

/// Three cheapest paper kernels: plenty for a frontier, cheap in debug.
fn test_specs() -> Vec<KernelSpec> {
    let mut specs = cmam_kernels::all();
    specs.sort_by_key(|s| s.cdfg.total_ops());
    specs.truncate(3);
    specs
}

fn uncached_engine(jobs: usize) -> Engine {
    Engine::new(EngineOptions {
        jobs,
        cache_dir: None,
        cache_bytes: None,
    })
}

/// Exhaustive sweep: every (config, kernel) job, full sums in kernel
/// index order, frontier over feasible configs — mirrors `dse_pareto
/// --exhaustive`.
fn exhaustive(
    engine: &Engine,
    specs: &[KernelSpec],
    configs: &[CgraConfig],
    energy_of: &dyn Fn(usize, usize, &RunOutcome) -> f64,
) -> (Vec<Option<(f64, u64)>>, Vec<usize>) {
    let mut totals: Vec<Option<(f64, u64)>> = Vec::new();
    for (ci, config) in configs.iter().enumerate() {
        let requests: Vec<JobRequest<'_>> = specs
            .iter()
            .map(|spec| JobRequest::flow(spec, FlowVariant::Cab, config))
            .collect();
        let results = engine.run_batch(&requests);
        let mut energy = 0.0;
        let mut cycles = 0u64;
        let mut feasible = true;
        for (ki, result) in results.iter().enumerate() {
            match result {
                Ok(out) => {
                    energy += energy_of(ci, ki, out);
                    cycles += out.cycles;
                }
                Err(_) => feasible = false,
            }
        }
        totals.push(feasible.then_some((energy, cycles)));
    }
    let points: Vec<(usize, f64, u64)> = totals
        .iter()
        .enumerate()
        .filter_map(|(ci, t)| t.map(|(e, c)| (ci, e, c)))
        .collect();
    let frontier = pareto_frontier(&points);
    (totals, frontier)
}

#[test]
fn search_recovers_the_exact_exhaustive_frontier() {
    let specs = test_specs();
    let configs = cmam_engine::dse::validation_space();
    let energy = test_energy(&configs);

    let (totals, want_frontier) = exhaustive(&uncached_engine(1), &specs, &configs, &energy);
    assert!(
        want_frontier.len() >= 2,
        "validation space should have a non-trivial frontier"
    );

    for threads in [1usize, 4] {
        let engine = uncached_engine(threads);
        let result = run_search(
            &engine,
            &specs,
            &configs,
            FlowVariant::Cab,
            &energy,
            &SearchOptions::default(),
        );
        assert!(!result.aborted);
        assert_eq!(
            result.frontier, want_frontier,
            "frontier mismatch at jobs={threads}"
        );
        // Frontier members are fully evaluated and bit-identical to the
        // exhaustive sums (same per-kernel values, same addition order).
        for &ci in &result.frontier {
            let eval = &result.evaluated[ci];
            assert_eq!(eval.status, ConfigStatus::Completed);
            let (we, wc) = totals[ci].expect("frontier members are feasible");
            assert_eq!(eval.energy.to_bits(), we.to_bits(), "config {ci}");
            assert_eq!(eval.cycles, wc, "config {ci}");
        }
        // The search must actually search: strictly fewer executions
        // than the exhaustive job count.
        assert!(
            (result.stats.engine.executed as usize) < specs.len() * configs.len(),
            "search executed everything at jobs={threads}"
        );
    }
}

#[test]
fn search_is_bit_identical_across_thread_counts() {
    let specs = test_specs();
    let configs = cmam_engine::dse::validation_space();
    let energy = test_energy(&configs);

    let run = |jobs: usize| {
        run_search(
            &uncached_engine(jobs),
            &specs,
            &configs,
            FlowVariant::Cab,
            &energy,
            &SearchOptions::default(),
        )
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.frontier, b.frontier);
    assert_eq!(a.stats.jobs_scheduled, b.stats.jobs_scheduled);
    for (x, y) in a.evaluated.iter().zip(&b.evaluated) {
        assert_eq!(x.status, y.status, "config {}", x.config_index);
        assert_eq!(x.energy.to_bits(), y.energy.to_bits());
        assert_eq!(x.cycles, y.cycles);
        assert_eq!(x.kernels_evaluated, y.kernels_evaluated);
    }
}

#[test]
fn killed_search_resumes_without_reexecuting_finished_jobs() {
    let specs = test_specs();
    let configs = cmam_engine::dse::validation_space();
    let energy = test_energy(&configs);
    let dir: PathBuf = std::env::temp_dir().join(format!("cmam-dse-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cached = |jobs: usize| {
        Engine::new(EngineOptions {
            jobs,
            cache_dir: Some(dir.clone()),
            cache_bytes: None,
        })
    };

    // Kill the sweep partway through: enough budget for the first rung
    // plus a little, then abort.
    let killed = run_search(
        &cached(2),
        &specs,
        &configs,
        FlowVariant::Cab,
        &energy,
        &SearchOptions {
            max_jobs: Some(configs.len() + 5),
            ..SearchOptions::default()
        },
    );
    assert!(killed.aborted);
    let first_executed = killed.stats.engine.executed;
    assert!(first_executed > 0);

    // Resume: a fresh engine (empty memo) over the same artifact store
    // replays the same deterministic schedule. Every job finished
    // before the kill must be a disk hit, not an execution.
    let resumed = run_search(
        &cached(2),
        &specs,
        &configs,
        FlowVariant::Cab,
        &energy,
        &SearchOptions::default(),
    );
    assert!(!resumed.aborted);
    assert_eq!(
        resumed.stats.engine.disk_hits, first_executed,
        "every pre-kill job must be answered from the artifact store"
    );

    // Together the two runs did exactly an uninterrupted run's work.
    let fresh = run_search(
        &uncached_engine(2),
        &specs,
        &configs,
        FlowVariant::Cab,
        &energy,
        &SearchOptions::default(),
    );
    assert_eq!(
        first_executed + resumed.stats.engine.executed,
        fresh.stats.engine.executed,
        "resume re-executed finished jobs"
    );
    assert_eq!(resumed.frontier, fresh.frontier);

    let _ = std::fs::remove_dir_all(&dir);
}
