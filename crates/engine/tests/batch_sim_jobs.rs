//! The batched-simulate job kind: per-lane results must match solo
//! simulation of the same images, outcomes must be bit-identical across
//! cache states, and `.bsim` artifacts must answer a second engine.

use cmam_arch::CgraConfig;
use cmam_core::FlowVariant;
use cmam_engine::{BatchSimRequest, Engine, EngineOptions};
use cmam_sim::{DecodedProgram, SimOptions};
use std::path::PathBuf;

fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmam-batchsim-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn engine_batch_sim_matches_solo_simulation_per_lane() {
    let engine = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: None,
        cache_bytes: None,
    });
    let spec = cmam_kernels::fir::spec();
    let config = CgraConfig::hom64();
    let req = BatchSimRequest::flow(&spec, FlowVariant::Basic, &config, 0xFEED, 16);
    let outcome = engine.run_batch_sim(&req).expect("FIR maps on HOM64");
    assert_eq!(outcome.lanes.len(), 16);
    assert_eq!(outcome.ok_lanes(), 16);

    let compiled = engine.run_one(&req.compile_request()).expect("FIR maps");
    let decoded = DecodedProgram::decode(&compiled.binary, &config).expect("decodes");
    let mut agg = 0u64;
    for (l, image) in req.images().iter().enumerate() {
        let mut mem = image.clone();
        let solo = decoded
            .simulate(&mut mem, SimOptions::default())
            .expect("simulates");
        agg += solo.cycles;
        assert_eq!(
            outcome.lanes[l].as_ref().expect("lane ok"),
            &solo,
            "lane {l}"
        );
    }
    assert_eq!(outcome.agg_cycles, agg);
}

#[test]
fn batch_sim_outcomes_persist_and_round_trip_across_engines() {
    let dir = temp_cache_dir("persist");
    let spec = cmam_kernels::dc::spec();
    let config = CgraConfig::hom64();
    let req = BatchSimRequest::flow(&spec, FlowVariant::Basic, &config, 7, 8);

    let first = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        cache_bytes: None,
    });
    let a = first.run_batch_sim(&req).expect("DC maps");
    // The sweep artifact is on disk under its own extension.
    let bsim_files = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter(|e| {
            e.as_ref()
                .ok()
                .map(|e| e.path().extension() == Some(std::ffi::OsStr::new("bsim")))
                .unwrap_or(false)
        })
        .count();
    assert_eq!(bsim_files, 1, "one .bsim artifact per sweep");

    // A fresh engine answers from disk, bit-identically (including the
    // originally measured wall times).
    let second = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: Some(dir.clone()),
        cache_bytes: None,
    });
    let b = second.run_batch_sim(&req).expect("DC maps");
    assert_eq!(a, b);
    assert_eq!(a.content_digest(), b.content_digest());
    assert_eq!(second.stats().executed, 0, "nothing recompiled");

    // And the in-memory memo answers a repeat on the same engine.
    let c = second.run_batch_sim(&req).expect("DC maps");
    assert_eq!(a.content_digest(), c.content_digest());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compile_failures_surface_as_job_failures() {
    let engine = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: None,
        cache_bytes: None,
    });
    // The FIR does not fit the tiny uniform 16-word context memories
    // with a memory-unaware flow (T1 needs 17 context words).
    let spec = cmam_kernels::fir::spec();
    let tight = CgraConfig::builder(4, 4)
        .uniform_cm(16)
        .name("TIGHT16")
        .build()
        .expect("valid config");
    let req = BatchSimRequest::flow(&spec, FlowVariant::Basic, &tight, 1, 4);
    assert!(engine.run_batch_sim(&req).is_err());
}
