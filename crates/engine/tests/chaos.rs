//! Chaos suite: seeded fault schedules driven through the whole engine.
//!
//! Every test here installs a global [`cmam_fault::FaultPlan`] and
//! asserts the engine's recovery contract: fault-laden runs converge to
//! results **bit-identical** to the fault-free run (transient faults are
//! recoverable by construction — see `cmam_fault`'s transient rule and
//! [`cmam_engine::job::MAX_JOB_ATTEMPTS`]), a permanently-failing job is
//! quarantined as a structured [`JobFailure`] while its siblings finish,
//! and no orphan `.tmp-*` files survive an open-time sweep.
//!
//! The fault plan is process-global state, so the tests serialize on one
//! poison-recovering mutex; other test binaries run in their own
//! processes and are unaffected.

use cmam_arch::CgraConfig;
use cmam_core::FlowVariant;
use cmam_engine::cache::DiskCache;
use cmam_engine::job::MAX_JOB_ATTEMPTS;
use cmam_engine::search::{run_search, SearchOptions};
use cmam_engine::{
    smoke_matrix, Engine, EngineOptions, FailStage, JobRequest, JobResult, RunOutcome,
};
use cmam_fault::FaultPlan;
use cmam_kernels::KernelSpec;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, Once, PoisonError};

/// Serializes the tests in this binary: the installed fault plan is
/// process-global, and the lock recovers from poisoning because panics
/// are this suite's product.
static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_lock() -> MutexGuard<'static, ()> {
    CHAOS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Silences the default panic-hook backtrace spam for *injected* panics
/// only — a chaos run fires hundreds of them by design, and each would
/// otherwise print a "thread panicked" banner. Real panics still report.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains("injected fault") {
                default(info);
            }
        }));
    });
}

/// The transient-only chaos schedule: every failure-prone site in the
/// engine and cache, at rates high enough that an 8-seed sweep exercises
/// all of them many times over. No `:sticky` rules — every injected
/// fault is recoverable within the engine's retry budget, so results
/// must be bit-identical to the fault-free run for *any* seed.
const TRANSIENT_PLAN: &str = "cache.read=0.25,cache.write=0.25,cache.kill=0.2,\
     cache.rename=0.2,cache.corrupt.truncate=0.25,cache.corrupt.bitflip=0.25,\
     job.panic=0.3,job.delay=0.15";

/// Three cheapest paper kernels — the same trim as the DSE search tests,
/// plenty of batch width at debug-profile cost.
fn chaos_specs() -> Vec<KernelSpec> {
    let mut specs = cmam_kernels::all();
    specs.sort_by_key(|s| s.cdfg.total_ops());
    specs.truncate(3);
    specs
}

fn flow_requests<'a>(
    specs: &'a [KernelSpec],
    matrix: &'a [(FlowVariant, CgraConfig)],
) -> Vec<JobRequest<'a>> {
    specs
        .iter()
        .flat_map(|s| matrix.iter().map(move |(v, c)| JobRequest::flow(s, *v, c)))
        .collect()
}

/// Comparable digest of a job result, ignoring only wall-clock noise
/// (compile/sim times and the failure's `compile_time`/`attempts` — a
/// fault-laden run legitimately spends more attempts than a clean one).
fn digest(result: &JobResult) -> String {
    match result {
        Ok(out) => format!("ok:{:016x}", out.content_digest()),
        Err(f) => format!("err:{:?}:{}", f.stage, f.message),
    }
}

fn engine_with(dir: Option<PathBuf>) -> Engine {
    Engine::new(EngineOptions {
        jobs: 4,
        cache_dir: dir,
        cache_bytes: None,
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmam-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tmp_orphans(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with(".tmp-"))
                .collect()
        })
        .unwrap_or_default()
}

/// The headline acceptance test: eight seeded fault schedules over a
/// full batch, each run twice (cold store, then a fresh engine over the
/// surviving store), must produce results bit-identical to the
/// fault-free run — and after a final open-time sweep, no `.tmp-*`
/// orphans (deliberately leaked by the `cache.kill` site) remain.
#[test]
fn eight_seeded_fault_schedules_converge_to_fault_free_results() {
    let _serial = chaos_lock();
    quiet_injected_panics();
    cmam_fault::clear();

    let specs = chaos_specs();
    let matrix = smoke_matrix();
    let requests = flow_requests(&specs, &matrix);
    let baseline: Vec<String> = engine_with(None)
        .run_batch(&requests)
        .iter()
        .map(digest)
        .collect();

    let fired_before = cmam_obs::metrics::registry().counter("fault.fired").get();
    for seed in 1..=8u64 {
        let dir = fresh_dir(&format!("seeds-{seed}"));
        cmam_fault::install(FaultPlan::parse(TRANSIENT_PLAN, seed).expect("valid plan"));

        // Pass A: cold store. Every job executes at least once, through
        // whatever panics, delays and store failures the seed decrees.
        let cold = engine_with(Some(dir.clone()));
        let got: Vec<String> = cold.run_batch(&requests).iter().map(digest).collect();
        assert_eq!(got, baseline, "cold chaos run diverged at seed {seed}");
        assert_eq!(
            cold.stats().quarantined,
            0,
            "transient-only plan must never quarantine (seed {seed})"
        );

        // Pass B: a fresh engine over the surviving artifacts. Reads hit
        // the injected read-error and corruption sites; self-healing and
        // recompute must still converge to the same bits.
        let warm = engine_with(Some(dir.clone()));
        let got: Vec<String> = warm.run_batch(&requests).iter().map(digest).collect();
        assert_eq!(got, baseline, "warm chaos run diverged at seed {seed}");

        // With the plan gone, a reopen sweeps the `.tmp-*` orphans that
        // `cache.kill` deliberately left behind.
        cmam_fault::clear();
        drop(DiskCache::new(Some(dir.clone()), None));
        assert_eq!(
            tmp_orphans(&dir),
            Vec::<String>::new(),
            "orphan temp files survived the sweep at seed {seed}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let fired_after = cmam_obs::metrics::registry().counter("fault.fired").get();
    assert!(
        fired_after > fired_before,
        "eight seeded schedules should have injected at least one fault"
    );
}

/// A batch with one permanently-failing job (a sticky `job.panic` curse
/// on exactly one key) completes with N-1 successes; the cursed job is
/// quarantined as a structured `Panic` failure after exactly the retry
/// budget, and the engine's stats account for every retry.
#[test]
fn one_permanently_failing_job_is_quarantined_with_structure() {
    let _serial = chaos_lock();
    quiet_injected_panics();
    cmam_fault::clear();

    let specs = chaos_specs();
    let matrix = smoke_matrix();
    let requests = flow_requests(&specs, &matrix);
    let keys: Vec<u64> = requests.iter().map(JobRequest::key).collect();
    let baseline: Vec<String> = engine_with(None)
        .run_batch(&requests)
        .iter()
        .map(digest)
        .collect();

    // Job keys fold in the toolchain hash, so which key a given seed
    // curses changes across builds; scan for a seed cursing exactly one.
    let (plan, cursed) = (0..u64::MAX)
        .find_map(|seed| {
            let plan = FaultPlan::parse("job.panic=0.08:sticky", seed).expect("valid plan");
            let cursed: Vec<usize> = (0..keys.len())
                .filter(|&i| plan.decides("job.panic", keys[i], 1))
                .collect();
            (cursed.len() == 1).then(|| (plan, cursed[0]))
        })
        .expect("some seed curses exactly one job");
    cmam_fault::install(plan);

    let engine = engine_with(None);
    let results = engine.run_batch(&requests);
    cmam_fault::clear();

    for (i, result) in results.iter().enumerate() {
        if i == cursed {
            let failure = result.as_ref().expect_err("cursed job must fail");
            assert_eq!(failure.stage, FailStage::Panic);
            assert_eq!(failure.attempts, MAX_JOB_ATTEMPTS);
            assert!(failure.retriable, "a panic may be environmental");
            assert!(
                failure.message.contains("injected fault: job.panic"),
                "quarantine must carry the panic message, got: {}",
                failure.message
            );
        } else {
            assert_eq!(
                digest(result),
                baseline[i],
                "sibling job {i} was disturbed by the quarantine"
            );
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.quarantined, 1);
    assert_eq!(
        stats.retries,
        u64::from(MAX_JOB_ATTEMPTS - 1),
        "the cursed job alone should account for every retry"
    );
}

/// A DSE search killed partway and resumed over the same artifact store,
/// with transient faults injected throughout both halves, must land on
/// the exact fault-free frontier — every per-config status, energy bit
/// pattern and cycle count identical.
#[test]
fn resumed_dse_search_under_faults_matches_the_fault_free_frontier() {
    let _serial = chaos_lock();
    quiet_injected_panics();
    cmam_fault::clear();

    let specs = chaos_specs();
    let configs = cmam_engine::dse::validation_space();
    // Same stand-in energy model as the search tests: strictly positive,
    // provisioning-sensitive, identical for fault-free and faulted runs.
    let energy = |ci: usize, _ki: usize, out: &RunOutcome| {
        let words = configs[ci].total_cm_words() as f64;
        out.cycles as f64 * (1.0 + words / 256.0)
    };

    let fault_free = run_search(
        &engine_with(None),
        &specs,
        &configs,
        FlowVariant::Cab,
        &energy,
        &SearchOptions::default(),
    );
    assert!(!fault_free.aborted);

    let dir = fresh_dir("dse");
    cmam_fault::install(FaultPlan::parse(TRANSIENT_PLAN, 0xD5E).expect("valid plan"));

    // Kill the faulted sweep partway through (same budget shape as the
    // resume test), then resume it to completion — still under faults.
    let killed = run_search(
        &engine_with(Some(dir.clone())),
        &specs,
        &configs,
        FlowVariant::Cab,
        &energy,
        &SearchOptions {
            max_jobs: Some(configs.len() + 5),
            ..SearchOptions::default()
        },
    );
    assert!(killed.aborted);
    let resumed = run_search(
        &engine_with(Some(dir.clone())),
        &specs,
        &configs,
        FlowVariant::Cab,
        &energy,
        &SearchOptions::default(),
    );
    cmam_fault::clear();
    assert!(!resumed.aborted);

    assert_eq!(resumed.frontier, fault_free.frontier);
    for (got, want) in resumed.evaluated.iter().zip(&fault_free.evaluated) {
        assert_eq!(got.status, want.status, "config {}", want.config_index);
        assert_eq!(
            got.energy.to_bits(),
            want.energy.to_bits(),
            "config {}",
            want.config_index
        );
        assert_eq!(got.cycles, want.cycles, "config {}", want.config_index);
        assert_eq!(got.kernels_evaluated, want.kernels_evaluated);
    }

    drop(DiskCache::new(Some(dir.clone()), None));
    assert_eq!(
        tmp_orphans(&dir),
        Vec::<String>::new(),
        "orphan temp files survived the post-search sweep"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
