//! Design-space generation for the `dse_pareto` workload.
//!
//! The paper evaluates four hand-picked configurations (Table I). This
//! module generates a *space* of configurations spanning three axes —
//! context-memory depth, heterogeneity pattern, and array geometry /
//! LSU placement — so the engine can sweep them all and report the
//! energy/latency Pareto frontier per kernel mix, a scenario beyond the
//! paper's fixed table.

use cmam_arch::{CgraConfig, TileId};

fn build(
    name: String,
    rows: usize,
    cols: usize,
    lsu_rows: usize,
    cm_for: impl Fn(usize, usize) -> usize,
) -> CgraConfig {
    let mut b = CgraConfig::builder(rows, cols)
        .name(name)
        .lsu_rows(lsu_rows);
    for r in 0..rows {
        for c in 0..cols {
            b = b.cm_for(TileId(r * cols + c), cm_for(r, c));
        }
    }
    b.build().expect("generated configuration is valid")
}

/// The generated configuration space: 24 configurations spanning CM depth
/// (16/32/48/64 words), heterogeneity (uniform, row-graded, LSU-biased,
/// checkerboard) and geometry/LSU placement (4x4 with 1 or 2 LSU rows,
/// plus a wide 4x8 and a tall 8x2 variant).
///
/// Names encode the axes: `U<d>` uniform depth, `G…` graded rows,
/// `B<l>/<c>` LSU-biased, `C<a>/<b>` checkerboard; an `-L<n>` suffix gives
/// the number of LSU rows and `-<r>x<c>` the geometry when not 4x4.
pub fn config_space() -> Vec<CgraConfig> {
    let mut out = Vec::new();
    // Axis 1: uniform CM depth x LSU placement (8 configs). U64-L2 is the
    // paper's HOM64 shape, so the space contains Table I's corners.
    for depth in [16usize, 32, 48, 64] {
        for lsu_rows in [1usize, 2] {
            out.push(build(
                format!("U{depth}-L{lsu_rows}"),
                4,
                4,
                lsu_rows,
                |_, _| depth,
            ));
        }
    }
    // Axis 2a: row-graded heterogeneity — deeper CMs on the LSU rows,
    // shallow on the far rows (6 configs).
    for (tag, profile) in [
        ("G64", [64usize, 48, 32, 16]),
        ("G48", [48, 32, 32, 16]),
        ("G32", [32, 32, 16, 16]),
    ] {
        for lsu_rows in [1usize, 2] {
            out.push(build(
                format!("{tag}-L{lsu_rows}"),
                4,
                4,
                lsu_rows,
                move |r, _| profile[r],
            ));
        }
    }
    // Axis 2b: LSU-biased — deep CMs only where the load/store pressure
    // concentrates (4 configs).
    for (lsu_depth, compute_depth) in [(64usize, 16usize), (64, 32)] {
        for lsu_rows in [1usize, 2] {
            out.push(build(
                format!("B{lsu_depth}/{compute_depth}-L{lsu_rows}"),
                4,
                4,
                lsu_rows,
                move |r, _| {
                    if r < lsu_rows {
                        lsu_depth
                    } else {
                        compute_depth
                    }
                },
            ));
        }
    }
    // Axis 2c: checkerboard heterogeneity (2 configs).
    for (a, b) in [(64usize, 16usize), (48, 32)] {
        out.push(build(format!("C{a}/{b}-L2"), 4, 4, 2, move |r, c| {
            if (r + c) % 2 == 0 {
                a
            } else {
                b
            }
        }));
    }
    // Axis 3: geometry — a wide 4x8 array (more tiles, shallow CMs) and a
    // tall 8x2 array (long routes, the stress case) (4 configs).
    for depth in [16usize, 32] {
        out.push(build(format!("U{depth}-L1-4x8"), 4, 8, 1, move |_, _| {
            depth
        }));
    }
    for depth in [32usize, 64] {
        out.push(build(format!("U{depth}-L2-8x2"), 8, 2, 2, move |_, _| {
            depth
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn space_has_at_least_twenty_distinct_configs() {
        let space = config_space();
        assert!(space.len() >= 20, "only {} configs", space.len());
        let names: HashSet<&str> = space.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), space.len(), "duplicate config names");
    }

    #[test]
    fn every_config_validates_and_has_lsus() {
        for c in config_space() {
            assert!(!c.lsu_tiles().is_empty(), "{}", c.name());
            assert!(c.total_cm_words() > 0, "{}", c.name());
        }
    }
}
