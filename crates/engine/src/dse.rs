//! Design-space generation for the `dse_pareto` workload.
//!
//! Two spaces live here. [`validation_space`] is the legacy hand-written
//! 24-configuration sweep (CM depth x heterogeneity x geometry) kept as
//! the ground-truth space the search scheduler is validated against.
//! [`generate_space`] is the scalable replacement: a seeded,
//! provisioning-aware sampler that co-varies array geometry, LSU
//! placement, context-memory depth profile, and register-file sizing
//! under a total-context-words budget, producing thousands of distinct,
//! valid-by-construction configurations. Candidates are deduplicated by
//! structural fingerprint (names excluded), and collisions are counted
//! and reported through [`cmam_obs::warn!`].

use crate::fingerprint::{Fingerprint, Fnv64};
use cmam_arch::{CgraConfig, Geometry, TileConfig, TileId};
use std::collections::HashSet;

/// Default seed for [`generate_space`]; echoes the paper year.
pub const DEFAULT_SPACE_SEED: u64 = 0xD5E_2019;

/// Parameters for [`generate_space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceParams {
    /// Number of distinct configurations to emit.
    pub target: usize,
    /// RNG seed; the space is a pure function of `(target, seed)`.
    pub seed: u64,
}

impl Default for SpaceParams {
    fn default() -> Self {
        SpaceParams {
            target: 1000,
            seed: DEFAULT_SPACE_SEED,
        }
    }
}

/// splitmix64 — the same tiny generator the CDFG workload generator
/// uses (kept local: it is private there and not worth a dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick<T: Copy>(state: &mut u64, options: &[T]) -> T {
    options[(splitmix64(state) % options.len() as u64) as usize]
}

/// Structural identity of a configuration: geometry plus the full tile
/// list, with the name deliberately excluded — two samples that build
/// the same array must collapse to one entry regardless of labels.
fn structural_key(geometry: Geometry, tiles: &[TileConfig]) -> u64 {
    let mut h = Fnv64::new();
    geometry.fingerprint(&mut h);
    h.feed_usize(tiles.len());
    for t in tiles {
        t.fingerprint(&mut h);
    }
    h.finish()
}

/// Rounds a context-memory depth to the next multiple of 8, clamped to
/// the hardware-plausible 8..=128 word range.
fn snap_depth(words: usize) -> usize {
    words.div_ceil(8).clamp(1, 16) * 8
}

/// How the per-tile CM depth varies across the array.
#[derive(Debug, Clone, Copy)]
enum DepthProfile {
    /// Every tile at the base depth.
    Uniform,
    /// Depth halves per row away from row 0 (never below 8 words).
    RowGraded,
    /// LSU rows at the base depth, compute rows at a fixed fraction.
    LsuBiased,
    /// Alternating base / half-base in a checkerboard.
    Checkerboard,
}

/// One sampled candidate, before dedup.
fn sample(state: &mut u64) -> (Geometry, Vec<TileConfig>) {
    // Geometry: 4x4 is weighted (the paper's shape) but the sampler
    // roams from narrow 2-column strips to wide 4x8 / tall 8x4 arrays.
    // Tile counts stay in 8..=32 so a single mapping remains cheap.
    let (rows, cols) = pick(
        state,
        &[
            (2usize, 4usize),
            (2, 8),
            (3, 3),
            (3, 4),
            (3, 6),
            (4, 2),
            (4, 4),
            (4, 4),
            (4, 6),
            (4, 8),
            (5, 4),
            (6, 4),
            (8, 2),
            (8, 4),
        ],
    );
    let tiles_n = rows * cols;

    // LSU provisioning: between one row and half the array, so memory
    // bandwidth co-varies with compute instead of being fixed.
    let lsu_rows = 1 + (splitmix64(state) % (rows / 2).max(1) as u64) as usize;

    // Context-memory provisioning: a whole-array word budget, spread by
    // the tile count — bigger arrays get shallower memories, which is
    // exactly the compute-vs-storage trade the paper's Table I probes.
    let budget_words = pick(state, &[256usize, 384, 512, 768, 1024, 1536]);
    let base_depth = snap_depth(budget_words / tiles_n);
    let profile = pick(
        state,
        &[
            DepthProfile::Uniform,
            DepthProfile::Uniform,
            DepthProfile::RowGraded,
            DepthProfile::LsuBiased,
            DepthProfile::Checkerboard,
        ],
    );
    // Register-file provisioning co-varies with CM depth: deep context
    // memories pair with more live values and immediates.
    let rf_words = if base_depth >= 48 {
        pick(state, &[8usize, 16])
    } else {
        pick(state, &[4usize, 8, 16])
    };
    let crf_words = pick(state, &[8usize, 16, 32]);

    let depth_for = |r: usize, c: usize| -> usize {
        match profile {
            DepthProfile::Uniform => base_depth,
            DepthProfile::RowGraded => snap_depth(base_depth >> r.min(3)),
            DepthProfile::LsuBiased => {
                if r < lsu_rows {
                    base_depth
                } else {
                    snap_depth(base_depth / 2)
                }
            }
            DepthProfile::Checkerboard => {
                if (r + c) % 2 == 0 {
                    base_depth
                } else {
                    snap_depth(base_depth / 2)
                }
            }
        }
    };

    let tiles = (0..tiles_n)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            TileConfig {
                has_lsu: r < lsu_rows,
                cm_words: depth_for(r, c),
                rf_words,
                crf_words,
            }
        })
        .collect();
    (Geometry::new(rows, cols), tiles)
}

/// Generates `params.target` distinct configurations from the seed.
///
/// Determinism: the result is a pure function of `params` — the same
/// seed reproduces the same space in the same order on any machine or
/// thread count, which is what makes killed sweeps resumable. Every
/// configuration is validated by construction ([`CgraConfig::new`]
/// checks it) and named after its structural hash (`g<hash>-<r>x<c>`),
/// so names — which participate in job fingerprints — are stable across
/// runs and cache entries stay warm.
///
/// Duplicate samples (same geometry and tile list) are dropped; the
/// collision count is recorded on the `dse.generator_collisions`
/// counter and surfaced once per call through [`cmam_obs::warn!`].
pub fn generate_space(params: &SpaceParams) -> Vec<CgraConfig> {
    let mut state = params.seed;
    let mut seen: HashSet<u64> = HashSet::new();
    let mut out = Vec::with_capacity(params.target);
    let mut collisions: u64 = 0;
    // The sampler's support is far larger than any realistic target,
    // but cap the attempts so a pathological request terminates.
    let max_attempts = params.target.saturating_mul(64).max(4096);
    for _ in 0..max_attempts {
        if out.len() >= params.target {
            break;
        }
        let (geometry, tiles) = sample(&mut state);
        let key = structural_key(geometry, &tiles);
        if !seen.insert(key) {
            collisions += 1;
            continue;
        }
        let name = format!("g{key:016x}-{}x{}", geometry.rows(), geometry.cols());
        let config = CgraConfig::new(name, geometry, tiles)
            .expect("sampled configuration is valid by construction");
        out.push(config);
    }
    if collisions > 0 {
        cmam_obs::counter!("dse.generator_collisions").add(collisions);
        cmam_obs::warn!(
            "dse generator deduped {collisions} structural collisions \
             while producing {} configs (seed {:#x})",
            out.len(),
            params.seed
        );
    }
    if out.len() < params.target {
        cmam_obs::warn!(
            "dse generator exhausted {max_attempts} attempts at {} of {} configs",
            out.len(),
            params.target
        );
    }
    out
}

fn build(
    name: String,
    rows: usize,
    cols: usize,
    lsu_rows: usize,
    cm_for: impl Fn(usize, usize) -> usize,
) -> CgraConfig {
    let mut b = CgraConfig::builder(rows, cols)
        .name(name)
        .lsu_rows(lsu_rows);
    for r in 0..rows {
        for c in 0..cols {
            b = b.cm_for(TileId(r * cols + c), cm_for(r, c));
        }
    }
    b.build().expect("generated configuration is valid")
}

/// The legacy hand-written space: 24 configurations spanning CM depth
/// (16/32/48/64 words), heterogeneity (uniform, row-graded, LSU-biased,
/// checkerboard) and geometry/LSU placement (4x4 with 1 or 2 LSU rows,
/// plus a wide 4x8 and a tall 8x2 variant).
///
/// This is the ground-truth space for search validation: small enough to
/// sweep exhaustively, so `--search` results can be checked against the
/// exact Pareto frontier.
///
/// Names encode the axes: `U<d>` uniform depth, `G…` graded rows,
/// `B<l>/<c>` LSU-biased, `C<a>/<b>` checkerboard; an `-L<n>` suffix gives
/// the number of LSU rows and `-<r>x<c>` the geometry when not 4x4.
pub fn validation_space() -> Vec<CgraConfig> {
    let mut out = Vec::new();
    // Axis 1: uniform CM depth x LSU placement (8 configs). U64-L2 is the
    // paper's HOM64 shape, so the space contains Table I's corners.
    for depth in [16usize, 32, 48, 64] {
        for lsu_rows in [1usize, 2] {
            out.push(build(
                format!("U{depth}-L{lsu_rows}"),
                4,
                4,
                lsu_rows,
                |_, _| depth,
            ));
        }
    }
    // Axis 2a: row-graded heterogeneity — deeper CMs on the LSU rows,
    // shallow on the far rows (6 configs).
    for (tag, profile) in [
        ("G64", [64usize, 48, 32, 16]),
        ("G48", [48, 32, 32, 16]),
        ("G32", [32, 32, 16, 16]),
    ] {
        for lsu_rows in [1usize, 2] {
            out.push(build(
                format!("{tag}-L{lsu_rows}"),
                4,
                4,
                lsu_rows,
                move |r, _| profile[r],
            ));
        }
    }
    // Axis 2b: LSU-biased — deep CMs only where the load/store pressure
    // concentrates (4 configs).
    for (lsu_depth, compute_depth) in [(64usize, 16usize), (64, 32)] {
        for lsu_rows in [1usize, 2] {
            out.push(build(
                format!("B{lsu_depth}/{compute_depth}-L{lsu_rows}"),
                4,
                4,
                lsu_rows,
                move |r, _| {
                    if r < lsu_rows {
                        lsu_depth
                    } else {
                        compute_depth
                    }
                },
            ));
        }
    }
    // Axis 2c: checkerboard heterogeneity (2 configs).
    for (a, b) in [(64usize, 16usize), (48, 32)] {
        out.push(build(format!("C{a}/{b}-L2"), 4, 4, 2, move |r, c| {
            if (r + c) % 2 == 0 {
                a
            } else {
                b
            }
        }));
    }
    // Axis 3: geometry — a wide 4x8 array (more tiles, shallow CMs) and a
    // tall 8x2 array (long routes, the stress case) (4 configs).
    for depth in [16usize, 32] {
        out.push(build(format!("U{depth}-L1-4x8"), 4, 8, 1, move |_, _| {
            depth
        }));
    }
    for depth in [32usize, 64] {
        out.push(build(format!("U{depth}-L2-8x2"), 8, 2, 2, move |_, _| {
            depth
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_space_has_at_least_twenty_distinct_configs() {
        let space = validation_space();
        assert!(space.len() >= 20, "only {} configs", space.len());
        let names: HashSet<&str> = space.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), space.len(), "duplicate config names");
    }

    #[test]
    fn every_validation_config_validates_and_has_lsus() {
        for c in validation_space() {
            assert!(!c.lsu_tiles().is_empty(), "{}", c.name());
            assert!(c.total_cm_words() > 0, "{}", c.name());
        }
    }

    #[test]
    fn generated_space_hits_its_target_and_is_structurally_distinct() {
        let params = SpaceParams {
            target: 500,
            seed: DEFAULT_SPACE_SEED,
        };
        let space = generate_space(&params);
        assert_eq!(space.len(), 500);
        let mut keys = HashSet::new();
        for c in &space {
            let tiles: Vec<TileConfig> = c.tiles().map(|(_, t)| *t).collect();
            assert!(
                keys.insert(structural_key(c.geometry(), &tiles)),
                "structural duplicate {}",
                c.name()
            );
            assert!(!c.lsu_tiles().is_empty(), "{}", c.name());
            assert!(c.total_cm_words() > 0, "{}", c.name());
        }
    }

    #[test]
    fn generated_space_is_a_pure_function_of_its_params() {
        let params = SpaceParams {
            target: 200,
            seed: 42,
        };
        let a = generate_space(&params);
        let b = generate_space(&params);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        // A different seed explores a different space.
        let c = generate_space(&SpaceParams {
            target: 200,
            seed: 43,
        });
        assert!(a.iter().zip(&c).any(|(x, y)| x != y));
    }

    #[test]
    fn generated_names_encode_the_structural_hash() {
        let space = generate_space(&SpaceParams {
            target: 50,
            seed: 7,
        });
        for config in &space {
            let tiles: Vec<TileConfig> = config.tiles().map(|(_, t)| *t).collect();
            let key = structural_key(config.geometry(), &tiles);
            assert!(
                config.name().starts_with(&format!("g{key:016x}-")),
                "name {} does not match structure",
                config.name()
            );
        }
    }
}
