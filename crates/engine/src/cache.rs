//! The two-level artifact cache: an in-process memo table plus an on-disk
//! store of length-prefixed binary artifacts under `target/cmam-cache/`.
//!
//! Artifacts are keyed by the job's content hash (see
//! [`crate::fingerprint`]): any change to the kernel CDFG, the CGRA
//! configuration or the mapper options produces a new key, so entries
//! never need invalidation — stale ones are simply never addressed again.
//!
//! The format is a deliberately boring little-endian binary layout (no
//! serde, the workspace stays offline): a magic + [`FORMAT_VERSION`]
//! header, then fixed-width integers with `u32` length prefixes for every
//! string and sequence. Compared to the earlier line-oriented text format
//! this removes the escape/unescape round-trip and the per-field
//! `to_string`/`parse` churn from every store and load. Any read that
//! does not consume a well-formed artifact — wrong magic, older version,
//! truncated file, out-of-range tag — is treated as a clean cache miss
//! and the entry is rewritten.
//!
//! ## Integrity and self-healing
//!
//! Every artifact ends with a trailing FNV-64 checksum over all the
//! preceding bytes. FNV-1a's update `s' = (s ^ b) * P` is a bijection on
//! `u64` for any fixed byte `b` (the prime is odd), so *any* single-byte
//! difference provably changes the checksum — a bit-flipped integer in
//! the payload can never parse back as a plausible-but-wrong result.
//! A corrupt artifact (bad checksum, bad structure, or a real torn
//! write) is counted, deleted and recomputed — the rewrite is the
//! self-heal. [`DiskCache::new`] also sweeps stale `.tmp-*` files left
//! behind by killed processes, so a SIGKILL mid-store never leaks
//! orphans forever.
//!
//! The failure-prone paths are threaded with `cmam_fault` sites
//! (`cache.read`, `cache.write`, `cache.rename`, `cache.kill`,
//! `cache.corrupt.*`) so the chaos suite can drive every one of these
//! recovery branches deterministically; with no fault plan installed
//! each site check is a single relaxed atomic load.

use crate::batch_sim::BatchSimOutcome;
use crate::fingerprint::FORMAT_VERSION;
use crate::job::{FailStage, JobFailure, JobResult, RunOutcome};
use cmam_arch::Direction;
use cmam_cdfg::Opcode;
use cmam_isa::program::BinTerminator;
use cmam_isa::{AsmReport, CgraBinary, Instr, Operand, TileProgram};
use cmam_sim::{SimStats, TileStats};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Leading bytes of every artifact; anything else is a foreign file (for
/// example a text artifact from a pre-v3 toolchain) and therefore a miss.
const MAGIC: &[u8; 8] = b"cmamrunb";

/// Leading bytes of a batched-simulation artifact (`.bsim` files carry a
/// different payload shape, so they get their own magic).
const BATCH_MAGIC: &[u8; 8] = b"cmambsim";

/// Unsalted FNV-1a over raw bytes: the artifact integrity checksum.
/// (Unsalted on purpose — this is self-integrity of one file, not keyed
/// identity; [`crate::fingerprint::Fnv64`] handles the latter.)
fn artifact_checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends the trailing checksum to a freshly serialized artifact.
fn seal(mut buf: Vec<u8>) -> Vec<u8> {
    let sum = artifact_checksum(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Splits off and verifies the trailing checksum; `None` (a miss) on any
/// mismatch or on inputs too short to carry one.
fn verify_seal(bytes: &[u8]) -> Option<&[u8]> {
    let split = bytes.len().checked_sub(8)?;
    let (payload, tail) = bytes.split_at(split);
    let want = u64::from_le_bytes(tail.try_into().ok()?);
    (artifact_checksum(payload) == want).then_some(payload)
}

/// On-disk artifact store. Construction never fails: if the directory
/// cannot be created the store silently degrades to a no-op (a cache must
/// never turn a working sweep into an error).
#[derive(Debug)]
pub struct DiskCache {
    dir: Option<PathBuf>,
    counter: AtomicU64,
    /// Artifact bytes persisted by this process (feeds the
    /// `engine.disk_evictable_bytes` gauge).
    bytes_written: AtomicU64,
    /// Byte budget for the whole store directory (`CMAM_CACHE_BYTES`);
    /// `None` means unbounded — the pre-budget behaviour.
    budget: Option<u64>,
    /// Approximate directory size used to decide when a write must run
    /// the (comparatively expensive) scan-and-evict pass. `u64::MAX`
    /// means "not yet measured": the first budgeted write scans the
    /// directory so artifacts surviving from earlier processes count
    /// against the budget too.
    approx_bytes: std::sync::Mutex<u64>,
}

impl DiskCache {
    /// Opens (creating if needed) the store under `dir`; `None` disables
    /// persistence entirely. A `budget` bounds the directory to that many
    /// bytes: every write that pushes the store past the budget evicts
    /// artifacts oldest-first (by modification time, then file name)
    /// until it fits again. Eviction only ever deletes whole artifacts —
    /// a surviving entry is always the exact bytes its writer stored.
    pub fn new(dir: Option<PathBuf>, budget: Option<u64>) -> Self {
        let dir = dir.filter(|d| std::fs::create_dir_all(d).is_ok());
        if let Some(d) = &dir {
            sweep_orphans(d);
        }
        DiskCache {
            dir,
            counter: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            budget,
            approx_bytes: std::sync::Mutex::new(u64::MAX),
        }
    }

    /// Whether a backing directory is active.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    fn path_for(&self, key: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key:016x}.run")))
    }

    fn batch_path_for(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.bsim")))
    }

    /// Loads the artifact for `key`. `None` on a plain miss, a (real or
    /// injected) read error, or corruption — and a corrupt artifact is
    /// deleted on the way out, so the caller's recompute-and-store is
    /// the self-heal that replaces it with a good one.
    pub fn load(&self, key: u64) -> Option<JobResult> {
        let path = self.path_for(key)?;
        let mut bytes = std::fs::read(&path).ok()?;
        if cmam_fault::fires("cache.read", key) {
            // Injected read error: the file itself is fine, so it is a
            // plain miss — no healing, the entry stays for next time.
            return None;
        }
        cmam_fault::corrupt_artifact(key, &mut bytes);
        match parse_result(&bytes) {
            Some(result) => Some(result),
            None => {
                self.heal_corrupt(&path);
                None
            }
        }
    }

    /// Loads the batched-simulation artifact for `key`, with the same
    /// miss/corruption/self-heal contract as [`DiskCache::load`].
    pub fn load_batch(&self, key: u64) -> Option<BatchSimOutcome> {
        let path = self.batch_path_for(key)?;
        let mut bytes = std::fs::read(&path).ok()?;
        if cmam_fault::fires("cache.read", key) {
            return None;
        }
        cmam_fault::corrupt_artifact(key, &mut bytes);
        match parse_batch_outcome(&bytes) {
            Some(outcome) => Some(outcome),
            None => {
                self.heal_corrupt(&path);
                None
            }
        }
    }

    /// A readable-but-unparseable artifact: count it and delete it so
    /// the recompute path rewrites a good one in its place.
    fn heal_corrupt(&self, path: &std::path::Path) {
        cmam_obs::counter!("engine.cache.corrupt_healed").add(1);
        cmam_obs::warn!(
            "corrupt cache artifact {}: deleted for recompute",
            path.display()
        );
        let _ = std::fs::remove_file(path);
    }

    /// Persists the batched-simulation artifact for `key`, with the same
    /// best-effort write-then-rename discipline as [`DiskCache::store`].
    pub fn store_batch(&self, key: u64, outcome: &BatchSimOutcome) {
        let Some(path) = self.batch_path_for(key) else {
            return;
        };
        self.store_bytes(key, path, serialize_batch_outcome(outcome));
    }

    /// Persists the artifact for `key`. Best-effort: write errors are
    /// swallowed (the in-memory cache still holds the result). Panic
    /// quarantines are never persisted — a possibly-environmental
    /// failure must not outlive the process that suffered it.
    pub fn store(&self, key: u64, result: &JobResult) {
        if matches!(result, Err(f) if f.stage == FailStage::Panic) {
            return;
        }
        let Some(path) = self.path_for(key) else {
            return;
        };
        self.store_bytes(key, path, serialize_result(result));
    }

    fn store_bytes(&self, key: u64, path: PathBuf, bytes: Vec<u8>) {
        let Some(dir) = path.parent() else { return };
        if cmam_fault::fires("cache.write", key) {
            // Injected write error (disk full before the temp file even
            // lands): the store is skipped wholesale.
            return;
        }
        // Write-then-rename so concurrent engines never observe a torn
        // artifact; the counter keeps temp names unique within a process.
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.counter.fetch_add(1, Ordering::Relaxed)
        ));
        let nbytes = bytes.len() as u64;
        if std::fs::write(&tmp, &bytes).is_err() {
            // A partial write (disk full) must not leave orphan temp
            // files behind.
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if cmam_fault::fires("cache.kill", key) {
            // Injected SIGKILL between write and rename: the temp file
            // is deliberately left behind for the open-time sweep.
            return;
        }
        if cmam_fault::fires("cache.rename", key) || std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        // Everything in the store is evictable by definition (any entry
        // can be deleted and recomputed); the gauge tracks the bytes this
        // process has contributed.
        cmam_obs::counter!("engine.disk_writes").add(1);
        cmam_obs::counter!("engine.disk_bytes_written").add(nbytes);
        let total = self.bytes_written.fetch_add(nbytes, Ordering::Relaxed) + nbytes;
        cmam_obs::gauge!("engine.disk_evictable_bytes").raise(total as i64);
        self.enforce_budget(nbytes, &path);
    }

    /// Applies the byte budget after a successful write of `nbytes` to
    /// `just_written`. Cheap path: bump the approximate directory size
    /// and return while it stays under budget. Over budget: scan the
    /// directory, delete artifacts oldest-first (modification time, file
    /// name as the tie-break — deterministic on filesystems with coarse
    /// mtimes) until the store fits, never deleting the entry that was
    /// just written.
    fn enforce_budget(&self, nbytes: u64, just_written: &std::path::Path) {
        let Some(budget) = self.budget else { return };
        let Some(dir) = self.dir.as_ref() else { return };
        let mut approx = self
            .approx_bytes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if *approx != u64::MAX {
            *approx = approx.saturating_add(nbytes);
            if *approx <= budget {
                return;
            }
        }
        // Scan: every regular file in the store counts against the
        // budget, including temp files orphaned by a crashed process.
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
            .flatten()
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                if !meta.is_file() {
                    return None;
                }
                let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                Some((mtime, e.path(), meta.len()))
            })
            .collect();
        files.sort();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        for (_, path, len) in &files {
            if total <= budget {
                break;
            }
            if path == just_written {
                continue;
            }
            if std::fs::remove_file(path).is_ok() {
                total -= len;
                cmam_obs::counter!("engine.cache_evictions").add(1);
                cmam_obs::counter!("engine.cache_evicted_bytes").add(*len);
            }
        }
        *approx = total;
    }
}

/// Removes stale `.tmp-*` files at open. Temp names are
/// `.tmp-{pid}-{counter}`; a file is stale when its name does not parse,
/// when it was written by this very pid (anything predating this open is
/// garbage by construction — in-flight stores racing an open lose their
/// best-effort store, never their correctness), or when its writer pid
/// is provably dead (`/proc/{pid}` absent). For other-pid files on
/// systems without `/proc`, age is the tie-break: an hour-old temp file
/// has no live writer (the write→rename window is milliseconds).
fn sweep_orphans(dir: &std::path::Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let own_pid = std::process::id();
    let mut swept = 0u64;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(rest) = name.to_str().and_then(|n| n.strip_prefix(".tmp-")) else {
            continue;
        };
        let writer_pid = rest.split('-').next().and_then(|p| p.parse::<u32>().ok());
        let stale = match writer_pid {
            None => true,
            Some(pid) if pid == own_pid => true,
            Some(pid) => {
                let proc_root = std::path::Path::new("/proc");
                if proc_root.is_dir() {
                    !proc_root.join(pid.to_string()).is_dir()
                } else {
                    entry
                        .metadata()
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|mtime| mtime.elapsed().ok())
                        .is_some_and(|age| age > Duration::from_secs(3600))
                }
            }
        };
        if stale && std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    if swept > 0 {
        cmam_obs::counter!("engine.cache.orphans_swept").add(swept);
        cmam_obs::warn!("swept {swept} orphan temp file(s) from {}", dir.display());
    }
}

/// Little-endian byte writer behind [`serialize_result`].
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Sequence lengths are `u32`: artifacts are per-kernel, nothing in
    /// them approaches 4 billion elements.
    fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("artifact sequence fits u32"));
    }

    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn duration(&mut self, d: Duration) {
        self.u64(d.as_secs());
        self.u32(d.subsec_nanos());
    }
}

/// Checked little-endian reader behind [`parse_result`]; every accessor
/// returns `None` past the end, so truncation surfaces as a miss.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn i32(&mut self) -> Option<i32> {
        Some(i32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn len(&mut self) -> Option<usize> {
        Some(self.u32()? as usize)
    }

    fn str(&mut self) -> Option<String> {
        let n = self.len()?;
        Some(std::str::from_utf8(self.take(n)?).ok()?.to_owned())
    }

    fn duration(&mut self) -> Option<Duration> {
        let secs = self.u64()?;
        let nanos = self.u32()?;
        (nanos < 1_000_000_000).then(|| Duration::new(secs, nanos))
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn write_instr(w: &mut Writer, i: &Instr) {
    match i {
        Instr::Pnop { cycles } => {
            w.u8(0);
            w.u32(*cycles);
        }
        Instr::Exec { opcode, dst, srcs } => {
            w.u8(1);
            let idx = Opcode::ALL
                .iter()
                .position(|o| o == opcode)
                .expect("every opcode is in Opcode::ALL");
            w.u8(idx as u8);
            match dst {
                Some(d) => {
                    w.u8(1);
                    w.u8(*d);
                }
                None => w.u8(0),
            }
            w.len(srcs.len());
            for s in srcs {
                match s {
                    Operand::Crf(i) => {
                        w.u8(0);
                        w.u8(*i);
                    }
                    Operand::Reg(i) => {
                        w.u8(1);
                        w.u8(*i);
                    }
                    Operand::Neighbor(d, i) => {
                        w.u8(2);
                        w.u8(match d {
                            Direction::North => 0,
                            Direction::East => 1,
                            Direction::South => 2,
                            Direction::West => 3,
                        });
                        w.u8(*i);
                    }
                }
            }
        }
    }
}

fn read_instr(r: &mut Reader<'_>) -> Option<Instr> {
    match r.u8()? {
        0 => Some(Instr::Pnop { cycles: r.u32()? }),
        1 => {
            let opcode = *Opcode::ALL.get(r.u8()? as usize)?;
            let dst = match r.u8()? {
                0 => None,
                1 => Some(r.u8()?),
                _ => return None,
            };
            let nsrcs = r.len()?;
            let mut srcs = Vec::with_capacity(nsrcs.min(8));
            for _ in 0..nsrcs {
                srcs.push(match r.u8()? {
                    0 => Operand::Crf(r.u8()?),
                    1 => Operand::Reg(r.u8()?),
                    2 => {
                        let d = match r.u8()? {
                            0 => Direction::North,
                            1 => Direction::East,
                            2 => Direction::South,
                            3 => Direction::West,
                            _ => return None,
                        };
                        Operand::Neighbor(d, r.u8()?)
                    }
                    _ => return None,
                });
            }
            Some(Instr::Exec { opcode, dst, srcs })
        }
        _ => None,
    }
}

/// Renders a job result as the on-disk binary artifact.
pub fn serialize_result(result: &JobResult) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u32(FORMAT_VERSION);
    match result {
        Err(f) => {
            w.u8(0);
            w.u8(match f.stage {
                FailStage::Map => 0,
                FailStage::Assemble => 1,
                FailStage::Execution => 2,
                // Serialized for completeness; `DiskCache::store` never
                // persists panic quarantines.
                FailStage::Panic => 3,
            });
            w.duration(f.compile_time);
            w.str(&f.message);
            w.u8(u8::from(f.retriable));
            w.u32(f.attempts);
        }
        Ok(o) => {
            w.u8(1);
            w.duration(o.compile_time);
            w.duration(o.assemble_time);
            w.duration(o.sim_time);
            w.u64(o.cycles);
            w.u64(o.sim.cycles);
            w.u64(o.sim.stall_cycles);
            // Dense per-block execution counts, in block order.
            w.len(o.sim.block_execs.len());
            for &n in &o.sim.block_execs {
                w.u64(n);
            }
            w.len(o.sim.tiles.len());
            for t in &o.sim.tiles {
                for v in [
                    t.active_cycles,
                    t.idle_cycles,
                    t.cm_fetches,
                    t.alu_ops,
                    t.moves,
                    t.loads,
                    t.stores,
                    t.rf_reads,
                    t.neighbor_reads,
                    t.crf_reads,
                    t.rf_writes,
                ] {
                    w.u64(v);
                }
            }
            w.len(o.report.per_tile.len());
            for &(a, m, p) in &o.report.per_tile {
                w.usize(a);
                w.usize(m);
                w.usize(p);
            }
            for s in [
                o.map_stats.candidates,
                o.map_stats.attempts,
                o.map_stats.acmap_pruned,
                o.map_stats.ecmap_pruned,
                o.map_stats.stochastic_pruned,
                o.map_stats.finalize_failures,
                o.map_stats.escalations,
                o.map_stats.peak_population,
                o.map_stats.rollbacks,
            ] {
                w.u64(s);
            }
            w.str(&o.binary.name);
            w.u32(o.binary.entry);
            w.len(o.binary.block_lengths.len());
            for &l in &o.binary.block_lengths {
                w.usize(l);
            }
            w.len(o.binary.terminators.len());
            for t in &o.binary.terminators {
                match t {
                    BinTerminator::Jump(b) => {
                        w.u8(0);
                        w.u32(*b);
                    }
                    BinTerminator::Branch { taken, fallthrough } => {
                        w.u8(1);
                        w.u32(*taken);
                        w.u32(*fallthrough);
                    }
                    BinTerminator::Return => w.u8(2),
                }
            }
            w.len(o.binary.crf.len());
            for crf in &o.binary.crf {
                w.len(crf.len());
                for &c in crf {
                    w.i32(c);
                }
            }
            w.len(o.binary.tiles.len());
            for tile in &o.binary.tiles {
                w.len(tile.blocks.len());
                for block in &tile.blocks {
                    w.len(block.len());
                    for i in block {
                        write_instr(&mut w, i);
                    }
                }
            }
        }
    }
    seal(w.buf)
}

/// Parses an on-disk artifact back into a job result. `None` on any
/// malformed, truncated, checksum-failing or version-mismatched input
/// (treated as a cache miss).
pub fn parse_result(bytes: &[u8]) -> Option<JobResult> {
    let payload = verify_seal(bytes)?;
    let mut r = Reader::new(payload);
    if r.take(MAGIC.len())? != MAGIC || r.u32()? != FORMAT_VERSION {
        return None;
    }
    let result = match r.u8()? {
        0 => {
            let stage = match r.u8()? {
                0 => FailStage::Map,
                1 => FailStage::Assemble,
                2 => FailStage::Execution,
                3 => FailStage::Panic,
                _ => return None,
            };
            let compile_time = r.duration()?;
            let message = r.str()?;
            let retriable = match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let attempts = r.u32()?;
            Err(JobFailure {
                stage,
                message,
                compile_time,
                retriable,
                attempts,
            })
        }
        1 => {
            let compile_time = r.duration()?;
            let assemble_time = r.duration()?;
            let sim_time = r.duration()?;
            let cycles = r.u64()?;
            let sim_cycles = r.u64()?;
            let stall_cycles = r.u64()?;
            let nblocks = r.len()?;
            let mut block_execs = Vec::with_capacity(nblocks.min(1024));
            for _ in 0..nblocks {
                block_execs.push(r.u64()?);
            }
            let ntiles = r.len()?;
            let mut tiles = Vec::with_capacity(ntiles.min(1024));
            for _ in 0..ntiles {
                tiles.push(TileStats {
                    active_cycles: r.u64()?,
                    idle_cycles: r.u64()?,
                    cm_fetches: r.u64()?,
                    alu_ops: r.u64()?,
                    moves: r.u64()?,
                    loads: r.u64()?,
                    stores: r.u64()?,
                    rf_reads: r.u64()?,
                    neighbor_reads: r.u64()?,
                    crf_reads: r.u64()?,
                    rf_writes: r.u64()?,
                });
            }
            let sim = SimStats {
                cycles: sim_cycles,
                stall_cycles,
                block_execs,
                tiles,
            };
            let nreport = r.len()?;
            let mut per_tile = Vec::with_capacity(nreport.min(1024));
            for _ in 0..nreport {
                per_tile.push((r.usize()?, r.usize()?, r.usize()?));
            }
            let report = AsmReport { per_tile };
            let map_stats = cmam_core::MapStats {
                candidates: r.u64()?,
                attempts: r.u64()?,
                acmap_pruned: r.u64()?,
                ecmap_pruned: r.u64()?,
                stochastic_pruned: r.u64()?,
                finalize_failures: r.u64()?,
                escalations: r.u64()?,
                peak_population: r.u64()?,
                rollbacks: r.u64()?,
            };
            let name = r.str()?;
            let entry = r.u32()?;
            let nlengths = r.len()?;
            let mut block_lengths = Vec::with_capacity(nlengths.min(1024));
            for _ in 0..nlengths {
                block_lengths.push(r.usize()?);
            }
            let nterms = r.len()?;
            let mut terminators = Vec::with_capacity(nterms.min(1024));
            for _ in 0..nterms {
                terminators.push(match r.u8()? {
                    0 => BinTerminator::Jump(r.u32()?),
                    1 => BinTerminator::Branch {
                        taken: r.u32()?,
                        fallthrough: r.u32()?,
                    },
                    2 => BinTerminator::Return,
                    _ => return None,
                });
            }
            let ncrf = r.len()?;
            let mut crf = Vec::with_capacity(ncrf.min(1024));
            for _ in 0..ncrf {
                let nwords = r.len()?;
                let mut words = Vec::with_capacity(nwords.min(1024));
                for _ in 0..nwords {
                    words.push(r.i32()?);
                }
                crf.push(words);
            }
            let nprogs = r.len()?;
            let mut prog_tiles = Vec::with_capacity(nprogs.min(1024));
            for _ in 0..nprogs {
                let nblocks = r.len()?;
                let mut blocks = Vec::with_capacity(nblocks.min(1024));
                for _ in 0..nblocks {
                    let ninstr = r.len()?;
                    let mut words = Vec::with_capacity(ninstr.min(1024));
                    for _ in 0..ninstr {
                        words.push(read_instr(&mut r)?);
                    }
                    blocks.push(words);
                }
                prog_tiles.push(TileProgram { blocks });
            }
            let binary = CgraBinary {
                name,
                tiles: prog_tiles,
                crf,
                block_lengths,
                terminators,
                entry,
            };
            Ok(RunOutcome {
                cycles,
                sim,
                report,
                binary,
                compile_time,
                assemble_time,
                sim_time,
                map_stats,
            })
        }
        _ => return None,
    };
    // Trailing garbage means the file is not an artifact this version
    // wrote; treat it as corrupt rather than silently ignoring bytes.
    r.at_end().then_some(result)
}

fn write_stats(w: &mut Writer, s: &SimStats) {
    w.u64(s.cycles);
    w.u64(s.stall_cycles);
    w.len(s.block_execs.len());
    for &n in &s.block_execs {
        w.u64(n);
    }
    w.len(s.tiles.len());
    for t in &s.tiles {
        for v in [
            t.active_cycles,
            t.idle_cycles,
            t.cm_fetches,
            t.alu_ops,
            t.moves,
            t.loads,
            t.stores,
            t.rf_reads,
            t.neighbor_reads,
            t.crf_reads,
            t.rf_writes,
        ] {
            w.u64(v);
        }
    }
}

fn read_stats(r: &mut Reader<'_>) -> Option<SimStats> {
    let cycles = r.u64()?;
    let stall_cycles = r.u64()?;
    let nblocks = r.len()?;
    let mut block_execs = Vec::with_capacity(nblocks.min(1024));
    for _ in 0..nblocks {
        block_execs.push(r.u64()?);
    }
    let ntiles = r.len()?;
    let mut tiles = Vec::with_capacity(ntiles.min(1024));
    for _ in 0..ntiles {
        tiles.push(TileStats {
            active_cycles: r.u64()?,
            idle_cycles: r.u64()?,
            cm_fetches: r.u64()?,
            alu_ops: r.u64()?,
            moves: r.u64()?,
            loads: r.u64()?,
            stores: r.u64()?,
            rf_reads: r.u64()?,
            neighbor_reads: r.u64()?,
            crf_reads: r.u64()?,
            rf_writes: r.u64()?,
        });
    }
    Some(SimStats {
        cycles,
        stall_cycles,
        block_execs,
        tiles,
    })
}

/// Renders a batched-simulation outcome as the on-disk `.bsim` artifact.
pub fn serialize_batch_outcome(o: &BatchSimOutcome) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(BATCH_MAGIC);
    w.u32(FORMAT_VERSION);
    w.duration(o.decode_time);
    w.duration(o.sim_time);
    w.u64(o.agg_cycles);
    w.len(o.lanes.len());
    for lane in &o.lanes {
        match lane {
            Err(e) => {
                w.u8(0);
                w.str(e);
            }
            Ok(s) => {
                w.u8(1);
                write_stats(&mut w, s);
            }
        }
    }
    w.len(o.mem_digests.len());
    for &d in &o.mem_digests {
        w.u64(d);
    }
    seal(w.buf)
}

/// Parses a `.bsim` artifact. `None` on any malformed, truncated,
/// checksum-failing or version-mismatched input (treated as a cache
/// miss).
pub fn parse_batch_outcome(bytes: &[u8]) -> Option<BatchSimOutcome> {
    let payload = verify_seal(bytes)?;
    let mut r = Reader::new(payload);
    if r.take(BATCH_MAGIC.len())? != BATCH_MAGIC || r.u32()? != FORMAT_VERSION {
        return None;
    }
    let decode_time = r.duration()?;
    let sim_time = r.duration()?;
    let agg_cycles = r.u64()?;
    let nlanes = r.len()?;
    let mut lanes = Vec::with_capacity(nlanes.min(65_536));
    for _ in 0..nlanes {
        lanes.push(match r.u8()? {
            0 => Err(r.str()?),
            1 => Ok(read_stats(&mut r)?),
            _ => return None,
        });
    }
    let ndigests = r.len()?;
    let mut mem_digests = Vec::with_capacity(ndigests.min(65_536));
    for _ in 0..ndigests {
        mem_digests.push(r.u64()?);
    }
    let outcome = BatchSimOutcome {
        lanes,
        mem_digests,
        agg_cycles,
        decode_time,
        sim_time,
    };
    r.at_end().then_some(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{execute, JobRequest};
    use cmam_arch::CgraConfig;
    use cmam_core::FlowVariant;

    #[test]
    fn outcome_round_trips_through_binary() {
        let spec = cmam_kernels::fir::spec();
        let config = CgraConfig::hom64();
        let req = JobRequest::flow(&spec, FlowVariant::Basic, &config);
        let result = execute(&req);
        let out = result.as_ref().expect("FIR maps on HOM64");
        let parsed = parse_result(&serialize_result(&result)).expect("parses");
        let back = parsed.expect("still ok");
        assert_eq!(back.cycles, out.cycles);
        assert_eq!(back.sim, out.sim);
        assert_eq!(back.report.per_tile, out.report.per_tile);
        assert_eq!(back.binary, out.binary);
        assert_eq!(back.compile_time, out.compile_time);
        assert_eq!(back.assemble_time, out.assemble_time);
        assert_eq!(back.sim_time, out.sim_time);
        assert_eq!(back.content_digest(), out.content_digest());
    }

    #[test]
    fn failure_round_trips_through_binary() {
        let f = JobFailure::pipeline(
            FailStage::Assemble,
            "tile T3 needs 99 words\nbut has 16".into(),
            Duration::from_nanos(123_456_789),
        );
        let parsed = parse_result(&serialize_result(&Err(f.clone()))).expect("parses");
        let back = parsed.expect_err("still err");
        assert_eq!(back.stage, f.stage);
        assert_eq!(back.message, f.message);
        assert_eq!(back.compile_time, f.compile_time);
        assert_eq!(back.retriable, f.retriable);
        assert_eq!(back.attempts, f.attempts);
    }

    #[test]
    fn corrupt_or_versioned_input_is_a_miss() {
        // Empty, foreign and pre-v3 text artifacts are clean misses.
        assert!(parse_result(b"").is_none());
        assert!(parse_result(b"cmam-run v2\nok\ncompile_ns 12\n").is_none());
        assert!(parse_result(b"cmamrunbXXXX").is_none());
        // A version bump invalidates the artifact even with valid magic.
        let f = JobFailure::pipeline(FailStage::Map, "x".into(), Duration::ZERO);
        let mut bytes = serialize_result(&Err(f));
        assert!(parse_result(&bytes).is_some());
        let bumped = (FORMAT_VERSION + 1).to_le_bytes();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&bumped);
        // The in-place edit trips the checksum...
        assert!(parse_result(&bytes).is_none());
        // ...and even a re-sealed (checksum-valid) wrong version is a miss.
        bytes.truncate(bytes.len() - 8);
        let resealed = seal(bytes);
        assert!(parse_result(&resealed).is_none());
    }

    #[test]
    fn truncated_and_padded_artifacts_are_misses() {
        let spec = cmam_kernels::dc::spec();
        let config = CgraConfig::hom64();
        let req = JobRequest::flow(&spec, FlowVariant::Basic, &config);
        let bytes = serialize_result(&execute(&req));
        assert!(parse_result(&bytes).is_some());
        // Every strict prefix is a miss (no partial parse can succeed).
        for cut in [bytes.len() - 1, bytes.len() / 2, MAGIC.len() + 4, 3] {
            assert!(parse_result(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        // Trailing garbage is a miss, not silently ignored.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(parse_result(&padded).is_none());
    }

    #[test]
    fn instr_binary_round_trips() {
        let instrs = [
            Instr::Pnop { cycles: 17 },
            Instr::Exec {
                opcode: Opcode::Add,
                dst: Some(3),
                srcs: vec![Operand::Reg(1), Operand::Crf(2)],
            },
            Instr::Exec {
                opcode: Opcode::Store,
                dst: None,
                srcs: vec![
                    Operand::Neighbor(Direction::West, 4),
                    Operand::Neighbor(Direction::North, 0),
                ],
            },
        ];
        for i in &instrs {
            let mut w = Writer::new();
            write_instr(&mut w, i);
            let mut r = Reader::new(&w.buf);
            assert_eq!(read_instr(&mut r).as_ref(), Some(i));
            assert!(r.at_end());
        }
    }

    #[test]
    fn batch_outcome_round_trips_through_binary() {
        let outcome = BatchSimOutcome {
            lanes: vec![
                Ok(SimStats {
                    cycles: 123,
                    stall_cycles: 4,
                    block_execs: vec![1, 7, 0],
                    tiles: vec![TileStats {
                        active_cycles: 9,
                        ..TileStats::default()
                    }],
                }),
                Err("address -3 out of bounds".into()),
            ],
            mem_digests: vec![0xDEAD, 0xBEEF],
            agg_cycles: 123,
            decode_time: Duration::from_nanos(5_000),
            sim_time: Duration::from_nanos(987_654_321),
        };
        let bytes = serialize_batch_outcome(&outcome);
        let back = parse_batch_outcome(&bytes).expect("parses");
        assert_eq!(back, outcome);
        assert_eq!(back.content_digest(), outcome.content_digest());
        // Truncations and a run-artifact magic are clean misses.
        for cut in [bytes.len() - 1, bytes.len() / 2, 4] {
            assert!(parse_batch_outcome(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        assert!(parse_batch_outcome(b"cmamrunb").is_none());
    }

    #[test]
    fn disk_cache_survives_a_missing_dir_gracefully() {
        let cache = DiskCache::new(None, None);
        assert!(!cache.enabled());
        assert!(cache.load(42).is_none());
        cache.store(
            42,
            &Err(JobFailure::pipeline(
                FailStage::Map,
                "x".into(),
                Duration::ZERO,
            )),
        );
    }

    fn sweep_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cmam-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn open_sweeps_stale_tmp_orphans_and_keeps_live_files() {
        let dir = sweep_dir("sweep");
        // Stale: unparseable name, provably-dead pid (above Linux's
        // PID_MAX_LIMIT), and this process's own leftovers (anything
        // predating the open is garbage by construction).
        std::fs::write(dir.join(".tmp-garbage"), b"x").unwrap();
        std::fs::write(dir.join(".tmp-4294967294-0"), b"x").unwrap();
        std::fs::write(dir.join(format!(".tmp-{}-7", std::process::id())), b"x").unwrap();
        // Live: pid 1 always exists under /proc, and real artifacts are
        // never touched by the sweep (however corrupt).
        std::fs::write(dir.join(".tmp-1-0"), b"x").unwrap();
        std::fs::write(dir.join("0123456789abcdef.run"), b"not an artifact").unwrap();
        let _cache = DiskCache::new(Some(dir.clone()), None);
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        let mut want = vec!["0123456789abcdef.run".to_string()];
        if std::path::Path::new("/proc").is_dir() {
            // Without /proc the liveness probe falls back to age, and a
            // freshly written file is young enough to keep either way.
            want.insert(0, ".tmp-1-0".to_string());
        } else {
            names.retain(|n| n != ".tmp-1-0");
        }
        assert_eq!(names, want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_on_disk_is_deleted_then_rewritten() {
        let dir = sweep_dir("heal");
        let cache = DiskCache::new(Some(dir.clone()), None);
        let result: JobResult = Err(JobFailure::pipeline(
            FailStage::Map,
            "x".into(),
            Duration::ZERO,
        ));
        cache.store(7, &result);
        let path = dir.join(format!("{:016x}.run", 7u64));
        assert!(cache.load(7).is_some());
        // Flip one payload byte on disk: the checksum makes it a miss,
        // and the miss deletes the file so a recompute heals it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[MAGIC.len() + 6] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load(7).is_none(), "corrupt artifact must be a miss");
        assert!(!path.exists(), "corrupt artifact must be deleted");
        cache.store(7, &result);
        assert!(cache.load(7).is_some(), "the rewrite is the heal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_quarantines_are_never_persisted() {
        let dir = sweep_dir("panic");
        let cache = DiskCache::new(Some(dir.clone()), None);
        cache.store(9, &Err(JobFailure::panicked("boom".into(), 4)));
        assert!(cache.load(9).is_none());
        assert!(!dir.join(format!("{:016x}.run", 9u64)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
