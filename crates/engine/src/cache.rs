//! The two-level artifact cache: an in-process memo table plus an on-disk
//! store of plain serialized text under `target/cmam-cache/`.
//!
//! Artifacts are keyed by the job's content hash (see
//! [`crate::fingerprint`]): any change to the kernel CDFG, the CGRA
//! configuration or the mapper options produces a new key, so entries
//! never need invalidation — stale ones are simply never addressed again.
//! The serialization is a deliberately boring line-oriented text format
//! (no serde, the workspace stays offline); a parse failure of any kind is
//! treated as a cache miss and the entry is rewritten.

use crate::fingerprint::FORMAT_VERSION;
use crate::job::{FailStage, JobResult, RunFailure, RunOutcome};
use cmam_arch::Direction;
use cmam_cdfg::Opcode;
use cmam_isa::program::BinTerminator;
use cmam_isa::{AsmReport, CgraBinary, Instr, Operand, TileProgram};
use cmam_sim::{SimStats, TileStats};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// On-disk artifact store. Construction never fails: if the directory
/// cannot be created the store silently degrades to a no-op (a cache must
/// never turn a working sweep into an error).
#[derive(Debug)]
pub struct DiskCache {
    dir: Option<PathBuf>,
    counter: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) the store under `dir`; `None` disables
    /// persistence entirely.
    pub fn new(dir: Option<PathBuf>) -> Self {
        let dir = dir.filter(|d| std::fs::create_dir_all(d).is_ok());
        DiskCache {
            dir,
            counter: AtomicU64::new(0),
        }
    }

    /// Whether a backing directory is active.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    fn path_for(&self, key: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key:016x}.run")))
    }

    /// Loads the artifact for `key`, or `None` on miss/corruption.
    pub fn load(&self, key: u64) -> Option<JobResult> {
        let text = std::fs::read_to_string(self.path_for(key)?).ok()?;
        parse_result(&text)
    }

    /// Persists the artifact for `key`. Best-effort: write errors are
    /// swallowed (the in-memory cache still holds the result).
    pub fn store(&self, key: u64, result: &JobResult) {
        let Some(path) = self.path_for(key) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        // Write-then-rename so concurrent engines never observe a torn
        // artifact; the counter keeps temp names unique within a process.
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.counter.fetch_add(1, Ordering::Relaxed)
        ));
        let stored = std::fs::write(&tmp, serialize_result(result)).is_ok()
            && std::fs::rename(&tmp, &path).is_ok();
        if !stored {
            // Clean up whether the write or the rename failed — a partial
            // write (disk full) must not leave orphan temp files behind.
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn instr_to_text(i: &Instr) -> String {
    match i {
        Instr::Pnop { cycles } => format!("p{cycles}"),
        Instr::Exec { opcode, dst, srcs } => {
            let dst = dst.map(|d| d.to_string()).unwrap_or_else(|| "-".into());
            let srcs = srcs
                .iter()
                .map(|s| match s {
                    Operand::Crf(i) => format!("c{i}"),
                    Operand::Reg(i) => format!("r{i}"),
                    Operand::Neighbor(d, i) => {
                        let d = match d {
                            Direction::North => 'N',
                            Direction::East => 'E',
                            Direction::South => 'S',
                            Direction::West => 'W',
                        };
                        format!("n{d}{i}")
                    }
                })
                .collect::<Vec<_>>()
                .join(",");
            format!("e:{opcode}:{dst}:{srcs}")
        }
    }
}

fn opcode_from_name(name: &str) -> Option<Opcode> {
    Opcode::ALL.iter().copied().find(|o| o.to_string() == name)
}

fn instr_from_text(s: &str) -> Option<Instr> {
    if let Some(c) = s.strip_prefix('p') {
        return Some(Instr::Pnop {
            cycles: c.parse().ok()?,
        });
    }
    let mut parts = s.splitn(4, ':');
    if parts.next()? != "e" {
        return None;
    }
    let opcode = opcode_from_name(parts.next()?)?;
    let dst_text = parts.next()?;
    let dst = if dst_text == "-" {
        None
    } else {
        Some(dst_text.parse().ok()?)
    };
    let srcs_text = parts.next()?;
    let mut srcs = Vec::new();
    if !srcs_text.is_empty() {
        for tok in srcs_text.split(',') {
            let mut chars = tok.chars();
            let kind = chars.next()?;
            let rest = chars.as_str();
            srcs.push(match kind {
                'c' => Operand::Crf(rest.parse().ok()?),
                'r' => Operand::Reg(rest.parse().ok()?),
                'n' => {
                    let mut chars = rest.chars();
                    let dir = match chars.next()? {
                        'N' => Direction::North,
                        'E' => Direction::East,
                        'S' => Direction::South,
                        'W' => Direction::West,
                        _ => return None,
                    };
                    Operand::Neighbor(dir, chars.as_str().parse().ok()?)
                }
                _ => return None,
            });
        }
    }
    Some(Instr::Exec { opcode, dst, srcs })
}

/// Renders a job result as the on-disk text artifact.
pub fn serialize_result(result: &JobResult) -> String {
    let mut out = format!("cmam-run v{FORMAT_VERSION}\n");
    match result {
        Err(f) => {
            out.push_str("err\n");
            out.push_str(&format!(
                "stage {}\n",
                match f.stage {
                    FailStage::Map => "map",
                    FailStage::Assemble => "assemble",
                    FailStage::Execution => "execution",
                }
            ));
            out.push_str(&format!("compile_ns {}\n", f.compile_time.as_nanos()));
            out.push_str(&format!("message {}\n", escape(&f.message)));
        }
        Ok(o) => {
            out.push_str("ok\n");
            out.push_str(&format!("compile_ns {}\n", o.compile_time.as_nanos()));
            out.push_str(&format!("cycles {}\n", o.cycles));
            out.push_str(&format!("tiles {}\n", o.sim.tiles.len()));
            out.push_str(&format!("sim {} {}\n", o.sim.cycles, o.sim.stall_cycles));
            let mut blocks: Vec<(u32, u64)> =
                o.sim.block_execs.iter().map(|(&b, &n)| (b, n)).collect();
            blocks.sort_unstable();
            let blocks = blocks
                .iter()
                .map(|(b, n)| format!("{b}:{n}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!("sim.blocks {blocks}\n"));
            for t in &o.sim.tiles {
                out.push_str(&format!(
                    "sim.tile {} {} {} {} {} {} {} {} {} {} {}\n",
                    t.active_cycles,
                    t.idle_cycles,
                    t.cm_fetches,
                    t.alu_ops,
                    t.moves,
                    t.loads,
                    t.stores,
                    t.rf_reads,
                    t.neighbor_reads,
                    t.crf_reads,
                    t.rf_writes,
                ));
            }
            let report = o
                .report
                .per_tile
                .iter()
                .map(|(a, m, p)| format!("{a}:{m}:{p}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!("report {report}\n"));
            out.push_str(&format!(
                "map {} {} {} {} {} {} {} {} {}\n",
                o.map_stats.candidates,
                o.map_stats.attempts,
                o.map_stats.acmap_pruned,
                o.map_stats.ecmap_pruned,
                o.map_stats.stochastic_pruned,
                o.map_stats.finalize_failures,
                o.map_stats.escalations,
                o.map_stats.peak_population,
                o.map_stats.rollbacks,
            ));
            out.push_str(&format!("bin.name {}\n", escape(&o.binary.name)));
            out.push_str(&format!("bin.entry {}\n", o.binary.entry));
            let lengths = o
                .binary
                .block_lengths
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!("bin.lengths {lengths}\n"));
            let terms = o
                .binary
                .terminators
                .iter()
                .map(|t| match t {
                    BinTerminator::Jump(b) => format!("j{b}"),
                    BinTerminator::Branch { taken, fallthrough } => {
                        format!("b{taken},{fallthrough}")
                    }
                    BinTerminator::Return => "r".to_owned(),
                })
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!("bin.terms {terms}\n"));
            for crf in &o.binary.crf {
                let words = crf.iter().map(i32::to_string).collect::<Vec<_>>().join(" ");
                out.push_str(&format!("bin.crf {words}\n"));
            }
            for tile in &o.binary.tiles {
                out.push_str(&format!("bin.tile {}\n", tile.blocks.len()));
                for block in &tile.blocks {
                    let words = block
                        .iter()
                        .map(instr_to_text)
                        .collect::<Vec<_>>()
                        .join("|");
                    out.push_str(&format!("bin.block {words}\n"));
                }
            }
        }
    }
    out
}

/// Parses an on-disk artifact back into a job result. `None` on any
/// malformed or version-mismatched input (treated as a cache miss).
pub fn parse_result(text: &str) -> Option<JobResult> {
    let mut lines = text.lines();
    if lines.next()? != format!("cmam-run v{FORMAT_VERSION}") {
        return None;
    }
    let status = lines.next()?;
    // Every subsequent line is "<tag> <payload>"; `field` pops one and
    // checks the tag.
    let mut field = |tag: &str| -> Option<String> {
        let line = lines.next()?;
        let (got, payload) = line.split_once(' ').unwrap_or((line, ""));
        (got == tag).then(|| payload.to_owned())
    };
    match status {
        "err" => {
            let stage = parse_failure_stage(&field("stage")?)?;
            let compile_time = nanos_to_duration(&field("compile_ns")?)?;
            let message = unescape(&field("message")?);
            Some(Err(RunFailure {
                stage,
                message,
                compile_time,
            }))
        }
        "ok" => {
            let compile_time = nanos_to_duration(&field("compile_ns")?)?;
            let cycles: u64 = field("cycles")?.parse().ok()?;
            let ntiles: usize = field("tiles")?.parse().ok()?;
            let sim_line = field("sim")?;
            let mut sim_parts = sim_line.split_whitespace();
            let sim_cycles: u64 = sim_parts.next()?.parse().ok()?;
            let stall_cycles: u64 = sim_parts.next()?.parse().ok()?;
            let mut block_execs = HashMap::new();
            for pair in field("sim.blocks")?.split_whitespace() {
                let (b, n) = pair.split_once(':')?;
                block_execs.insert(b.parse().ok()?, n.parse().ok()?);
            }
            let mut tiles = Vec::with_capacity(ntiles);
            for _ in 0..ntiles {
                let line = field("sim.tile")?;
                let v: Vec<u64> = line
                    .split_whitespace()
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .ok()?;
                if v.len() != 11 {
                    return None;
                }
                tiles.push(TileStats {
                    active_cycles: v[0],
                    idle_cycles: v[1],
                    cm_fetches: v[2],
                    alu_ops: v[3],
                    moves: v[4],
                    loads: v[5],
                    stores: v[6],
                    rf_reads: v[7],
                    neighbor_reads: v[8],
                    crf_reads: v[9],
                    rf_writes: v[10],
                });
            }
            let sim = SimStats {
                cycles: sim_cycles,
                stall_cycles,
                block_execs,
                tiles,
            };
            let mut per_tile = Vec::with_capacity(ntiles);
            for triple in field("report")?.split_whitespace() {
                let mut it = triple.split(':');
                per_tile.push((
                    it.next()?.parse().ok()?,
                    it.next()?.parse().ok()?,
                    it.next()?.parse().ok()?,
                ));
            }
            if per_tile.len() != ntiles {
                return None;
            }
            let report = AsmReport { per_tile };
            let map_line = field("map")?;
            let m: Vec<u64> = map_line
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<_, _>>()
                .ok()?;
            if m.len() != 9 {
                return None;
            }
            let map_stats = cmam_core::MapStats {
                candidates: m[0],
                attempts: m[1],
                acmap_pruned: m[2],
                ecmap_pruned: m[3],
                stochastic_pruned: m[4],
                finalize_failures: m[5],
                escalations: m[6],
                peak_population: m[7],
                rollbacks: m[8],
            };
            let name = unescape(&field("bin.name")?);
            let entry: u32 = field("bin.entry")?.parse().ok()?;
            let block_lengths: Vec<usize> = field("bin.lengths")?
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<_, _>>()
                .ok()?;
            let mut terminators = Vec::new();
            for tok in field("bin.terms")?.split_whitespace() {
                // strip_prefix, not split_at(1): a corrupted artifact whose
                // token starts with a multi-byte character must be a miss,
                // not a char-boundary panic.
                terminators.push(if let Some(b) = tok.strip_prefix('j') {
                    BinTerminator::Jump(b.parse().ok()?)
                } else if let Some(rest) = tok.strip_prefix('b') {
                    let (t, f) = rest.split_once(',')?;
                    BinTerminator::Branch {
                        taken: t.parse().ok()?,
                        fallthrough: f.parse().ok()?,
                    }
                } else if tok == "r" {
                    BinTerminator::Return
                } else {
                    return None;
                });
            }
            let mut crf = Vec::with_capacity(ntiles);
            for _ in 0..ntiles {
                let words: Vec<i32> = field("bin.crf")?
                    .split_whitespace()
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .ok()?;
                crf.push(words);
            }
            let mut tiles = Vec::with_capacity(ntiles);
            for _ in 0..ntiles {
                let nblocks: usize = field("bin.tile")?.parse().ok()?;
                let mut blocks = Vec::with_capacity(nblocks);
                for _ in 0..nblocks {
                    let line = field("bin.block")?;
                    let mut words = Vec::new();
                    if !line.is_empty() {
                        for tok in line.split('|') {
                            words.push(instr_from_text(tok)?);
                        }
                    }
                    blocks.push(words);
                }
                tiles.push(TileProgram { blocks });
            }
            let binary = CgraBinary {
                name,
                tiles,
                crf,
                block_lengths,
                terminators,
                entry,
            };
            Some(Ok(RunOutcome {
                cycles,
                sim,
                report,
                binary,
                compile_time,
                map_stats,
            }))
        }
        _ => None,
    }
}

fn parse_failure_stage(s: &str) -> Option<FailStage> {
    match s {
        "map" => Some(FailStage::Map),
        "assemble" => Some(FailStage::Assemble),
        "execution" => Some(FailStage::Execution),
        _ => None,
    }
}

fn nanos_to_duration(s: &str) -> Option<Duration> {
    let n: u128 = s.parse().ok()?;
    Some(Duration::new(
        (n / 1_000_000_000) as u64,
        (n % 1_000_000_000) as u32,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{execute, JobRequest};
    use cmam_arch::CgraConfig;
    use cmam_core::FlowVariant;

    #[test]
    fn outcome_round_trips_through_text() {
        let spec = cmam_kernels::fir::spec();
        let config = CgraConfig::hom64();
        let req = JobRequest::flow(&spec, FlowVariant::Basic, &config);
        let result = execute(&req);
        let out = result.as_ref().expect("FIR maps on HOM64");
        let parsed = parse_result(&serialize_result(&result)).expect("parses");
        let back = parsed.expect("still ok");
        assert_eq!(back.cycles, out.cycles);
        assert_eq!(back.sim, out.sim);
        assert_eq!(back.report.per_tile, out.report.per_tile);
        assert_eq!(back.binary, out.binary);
        assert_eq!(back.compile_time, out.compile_time);
        assert_eq!(back.content_digest(), out.content_digest());
    }

    #[test]
    fn failure_round_trips_through_text() {
        let f = RunFailure {
            stage: FailStage::Assemble,
            message: "tile T3 needs 99 words\nbut has 16".into(),
            compile_time: Duration::from_nanos(123_456_789),
        };
        let parsed = parse_result(&serialize_result(&Err(f.clone()))).expect("parses");
        let back = parsed.expect_err("still err");
        assert_eq!(back.stage, f.stage);
        assert_eq!(back.message, f.message);
        assert_eq!(back.compile_time, f.compile_time);
    }

    #[test]
    fn corrupt_or_versioned_text_is_a_miss() {
        assert!(parse_result("").is_none());
        assert!(parse_result("cmam-run v999\nok\n").is_none());
        assert!(parse_result("cmam-run v1\nok\ncompile_ns nope\n").is_none());
    }

    #[test]
    fn instr_text_round_trips() {
        let instrs = [
            Instr::Pnop { cycles: 17 },
            Instr::Exec {
                opcode: Opcode::Add,
                dst: Some(3),
                srcs: vec![Operand::Reg(1), Operand::Crf(2)],
            },
            Instr::Exec {
                opcode: Opcode::Store,
                dst: None,
                srcs: vec![
                    Operand::Neighbor(Direction::West, 4),
                    Operand::Neighbor(Direction::North, 0),
                ],
            },
        ];
        for i in &instrs {
            assert_eq!(instr_from_text(&instr_to_text(i)).as_ref(), Some(i));
        }
    }

    #[test]
    fn disk_cache_survives_a_missing_dir_gracefully() {
        let cache = DiskCache::new(None);
        assert!(!cache.enabled());
        assert!(cache.load(42).is_none());
        cache.store(
            42,
            &Err(RunFailure {
                stage: FailStage::Map,
                message: "x".into(),
                compile_time: Duration::ZERO,
            }),
        );
    }
}
