//! Stable content hashing for job keys and outcome digests.
//!
//! The engine addresses every compilation job by a content hash of its
//! inputs `(Cdfg, CgraConfig, MapperOptions)`. [`std::hash::Hash`] is not
//! used because its output is not guaranteed stable across Rust releases,
//! while the hash here names on-disk cache artifacts that must survive
//! recompilation. The implementation is 64-bit FNV-1a, which is stable by
//! construction, dependency-free, and fast enough for graph-sized inputs.

use cmam_arch::{CgraConfig, Geometry, TileConfig};
use cmam_cdfg::{Cdfg, Terminator, ValueKind};
use cmam_core::{MapperOptions, Traversal};
use cmam_kernels::KernelSpec;

/// Bumped whenever the fingerprint coverage or the on-disk artifact format
/// changes, so stale cache entries are never misread.
///
/// v2: `MapStats` gained `peak_population` and `rollbacks` (the `map`
/// artifact line carries 9 counters instead of 7).
///
/// v3: the artifact format switched from line-oriented text to the
/// length-prefixed binary layout of [`crate::cache`]; pre-v3 text
/// artifacts are clean misses.
///
/// v4: `RunOutcome` gained per-phase wall times (`assemble_time`,
/// `sim_time`) and `SimStats::block_execs` became a dense per-block
/// vector (serialized as a plain `u64` list in block order instead of
/// sorted `(block, count)` pairs).
///
/// v5: artifacts gained a trailing FNV-64 integrity checksum (any
/// single-bit corruption is now a provable miss instead of a possible
/// misparse) and failures carry their recovery fields (`retriable`,
/// `attempts`) plus the `Panic` stage tag.
pub const FORMAT_VERSION: u32 = 5;

/// Build-time hash of every toolchain source file whose code influences a
/// job outcome (mapper, assembler, simulator, kernels, arch, and the
/// engine itself — see `build.rs`). Folded into every job key so that
/// editing the toolchain invalidates the on-disk cache: without this, a
/// rebuilt `smoke` would happily answer "did my mapper change help?" from
/// artifacts produced by the *old* mapper.
pub const TOOLCHAIN_HASH: &str = env!("CMAM_TOOLCHAIN_HASH");

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a hasher with typed `feed` helpers.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher, salted with [`FORMAT_VERSION`] and
    /// [`TOOLCHAIN_HASH`].
    pub fn new() -> Self {
        let mut h = Fnv64(FNV_OFFSET);
        h.feed_u64(FORMAT_VERSION as u64);
        h.feed_bytes(TOOLCHAIN_HASH.as_bytes());
        h
    }

    /// Absorbs raw bytes.
    pub fn feed_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn feed_u64(&mut self, v: u64) {
        self.feed_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` (widened so 32- and 64-bit hosts agree).
    pub fn feed_usize(&mut self, v: usize) {
        self.feed_u64(v as u64);
    }

    /// Absorbs an `i64` (two's-complement bit pattern).
    pub fn feed_i64(&mut self, v: i64) {
        self.feed_u64(v as u64);
    }

    /// Absorbs a length-prefixed string.
    pub fn feed_str(&mut self, s: &str) {
        self.feed_usize(s.len());
        self.feed_bytes(s.as_bytes());
    }

    /// Absorbs a boolean.
    pub fn feed_bool(&mut self, v: bool) {
        self.feed_u64(v as u64);
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Types that can absorb themselves into a [`Fnv64`] content hash.
///
/// Implementations must cover every field that influences the outcome of a
/// compilation job; two inputs with equal fingerprints are treated as the
/// same job and deduplicated.
pub trait Fingerprint {
    /// Feeds `self` into the hasher.
    fn fingerprint(&self, h: &mut Fnv64);

    /// Convenience: hashes `self` alone.
    fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        self.fingerprint(&mut h);
        h.finish()
    }
}

impl Fingerprint for Traversal {
    fn fingerprint(&self, h: &mut Fnv64) {
        h.feed_u64(match self {
            Traversal::Forward => 0,
            Traversal::Weighted => 1,
        });
    }
}

impl Fingerprint for MapperOptions {
    fn fingerprint(&self, h: &mut Fnv64) {
        self.traversal.fingerprint(h);
        h.feed_bool(self.acmap);
        h.feed_bool(self.ecmap);
        h.feed_bool(self.cab);
        h.feed_usize(self.population);
        h.feed_usize(self.expansion);
        h.feed_usize(self.slack);
        h.feed_usize(self.max_schedule);
        h.feed_u64(self.seed);
        // `threads` is deliberately NOT hashed: the mapper's beam
        // parallelism is bit-identical for every thread count, so jobs
        // differing only in their thread budget are the same job — a
        // sequential artifact must answer a parallel request and vice
        // versa.
    }
}

impl Fingerprint for Geometry {
    fn fingerprint(&self, h: &mut Fnv64) {
        h.feed_usize(self.rows());
        h.feed_usize(self.cols());
    }
}

impl Fingerprint for TileConfig {
    fn fingerprint(&self, h: &mut Fnv64) {
        h.feed_bool(self.has_lsu);
        h.feed_usize(self.cm_words);
        h.feed_usize(self.rf_words);
        h.feed_usize(self.crf_words);
    }
}

impl Fingerprint for CgraConfig {
    fn fingerprint(&self, h: &mut Fnv64) {
        // The name is part of the identity on purpose: experiment tables
        // key rows by configuration name, and a renamed config should not
        // silently alias a cached artifact produced under another label.
        h.feed_str(self.name());
        self.geometry().fingerprint(h);
        for (_, tile) in self.tiles() {
            tile.fingerprint(h);
        }
    }
}

impl Fingerprint for Cdfg {
    fn fingerprint(&self, h: &mut Fnv64) {
        h.feed_str(self.name());
        h.feed_u64(self.entry().0 as u64);
        h.feed_usize(self.num_blocks());
        for b in self.block_ids() {
            let block = self.block(b);
            h.feed_u64(b.0 as u64);
            h.feed_usize(block.ops.len());
            for &op_id in &block.ops {
                let op = self.op(op_id);
                h.feed_u64(op.opcode as u64);
                h.feed_usize(op.args.len());
                for a in &op.args {
                    h.feed_u64(a.0 as u64);
                }
                match op.result {
                    Some(v) => h.feed_i64(v.0 as i64),
                    None => h.feed_i64(-1),
                }
                match op.writes_symbol {
                    Some(s) => h.feed_i64(s.0 as i64),
                    None => h.feed_i64(-1),
                }
                match op.alias {
                    Some(a) => h.feed_i64(a.0 as i64),
                    None => h.feed_i64(-1),
                }
            }
            match block.terminator {
                None => h.feed_u64(0),
                Some(Terminator::Jump(t)) => {
                    h.feed_u64(1);
                    h.feed_u64(t.0 as u64);
                }
                Some(Terminator::Branch {
                    op,
                    taken,
                    fallthrough,
                }) => {
                    h.feed_u64(2);
                    h.feed_u64(op.0 as u64);
                    h.feed_u64(taken.0 as u64);
                    h.feed_u64(fallthrough.0 as u64);
                }
                Some(Terminator::Return) => h.feed_u64(3),
            }
            // Per-block data nodes: constants feed the CRF allocation,
            // symbol uses feed the home-tile routing, so both are inputs.
            for v in self.dfg(b).values() {
                h.feed_u64(v.id.0 as u64);
                match v.kind {
                    ValueKind::Const(c) => {
                        h.feed_u64(0);
                        h.feed_i64(c as i64);
                    }
                    ValueKind::SymbolUse(s) => {
                        h.feed_u64(1);
                        h.feed_u64(s.0 as u64);
                    }
                    ValueKind::Def(o) => {
                        h.feed_u64(2);
                        h.feed_u64(o.0 as u64);
                    }
                }
            }
        }
        h.feed_usize(self.num_symbols());
        for (_, sym) in self.symbols() {
            h.feed_str(&sym.name);
        }
    }
}

impl Fingerprint for KernelSpec {
    fn fingerprint(&self, h: &mut Fnv64) {
        h.feed_str(&self.name);
        self.cdfg.fingerprint(h);
        // The memory image and expected outputs are simulation inputs: a
        // kernel re-instanced with different data is a different job.
        h.feed_usize(self.mem.len());
        for &w in &self.mem {
            h.feed_i64(w as i64);
        }
        h.feed_usize(self.out.start);
        h.feed_usize(self.out.end);
        h.feed_usize(self.expected.len());
        for &w in &self.expected {
            h.feed_i64(w as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmam_core::FlowVariant;

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        let mut a = Fnv64::new();
        a.feed_str("ab");
        let mut b = Fnv64::new();
        b.feed_str("ab");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.feed_str("ba");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn options_hash_separates_variants() {
        let hashes: Vec<u64> = FlowVariant::ALL
            .iter()
            .map(|v| v.options().content_hash())
            .collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "variants {i} and {j} collide");
            }
        }
    }

    #[test]
    fn config_hash_separates_table_one() {
        let hashes: Vec<u64> = CgraConfig::table_one()
            .iter()
            .map(Fingerprint::content_hash)
            .collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j]);
            }
        }
    }

    #[test]
    fn kernel_hashes_are_distinct_and_reproducible() {
        let first: Vec<u64> = cmam_kernels::all()
            .iter()
            .map(Fingerprint::content_hash)
            .collect();
        let second: Vec<u64> = cmam_kernels::all()
            .iter()
            .map(Fingerprint::content_hash)
            .collect();
        assert_eq!(first, second, "hashing must be a pure function");
        for i in 0..first.len() {
            for j in (i + 1)..first.len() {
                assert_ne!(first[i], first[j]);
            }
        }
    }
}
