//! A dependency-free work-stealing thread pool over `std::thread`.
//!
//! The engine's jobs are independent and known up front, so the pool is a
//! fork-join over a fixed index range: every worker owns a deque seeded
//! round-robin with job indices, pops its own work from the front, and —
//! when empty — steals from the *back* of a sibling's deque. Stealing from
//! the opposite end keeps contention low (owner and thief touch different
//! ends) and is the classic Chase–Lev discipline, implemented here with a
//! plain `Mutex<VecDeque>` per worker since job granularity is whole
//! mapper searches (milliseconds), not microtasks.
//!
//! Job results are returned in index order, so callers observe the same
//! result vector no matter how work was interleaved — parallel execution
//! is observationally identical to sequential execution as long as the
//! job function itself is pure.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Runs `job(i)` for every `i in 0..n` on `threads` workers and returns
/// the results in index order.
///
/// With `threads <= 1` (or fewer than two jobs) everything runs inline on
/// the calling thread — the degenerate case the determinism tests compare
/// the parallel pool against.
///
/// # Panics
///
/// Propagates a panic from any job after the scope unwinds.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let workers = threads.min(n);
    // Round-robin seeding: worker w starts with jobs w, w+workers, ...
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let job = &job;
            scope.spawn(move || loop {
                // Own work first (front of own deque)...
                let mut next = deques[w].lock().expect("pool poisoned").pop_front();
                if next.is_none() {
                    // ...then steal from the back of a sibling's deque.
                    for v in 0..workers {
                        if v == w {
                            continue;
                        }
                        next = deques[v].lock().expect("pool poisoned").pop_back();
                        if next.is_some() {
                            break;
                        }
                    }
                }
                // No queue has work left and none will appear (the job set
                // is fixed), so the worker retires.
                let Some(i) = next else { return };
                let out = job(i);
                if tx.send((i, out)).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        // Collect inside the scope body but assert completeness only
        // after the scope joins: if a worker panicked, its sender drops,
        // the loop below simply ends early, and `thread::scope` itself
        // re-raises the worker's panic — so the job's own panic message
        // surfaces instead of a misleading missing-slot error.
        for (i, out) in rx {
            slots[i] = Some(out);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job index reported a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = run_indexed(25, threads, |i| i * i);
            assert_eq!(out, (0..25).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(100, 4, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 41), vec![41]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_indexed(3, 16, |i| i), vec![0, 1, 2]);
    }
}
