//! Successive-halving DSE search over (configuration × kernel) jobs.
//!
//! [`run_search`] explores a configuration space against a kernel mix
//! without fully evaluating every configuration. Two elimination rules
//! drive the savings. The *sound* one exploits the fact that both
//! objectives — total mix energy and total mix cycles — are sums over
//! kernels, so the partial sums over any evaluated kernel subset are
//! component-wise **lower bounds** on the full values: a
//! partially-evaluated configuration whose lower bounds are already
//! matched-or-beaten in both objectives by a *completed* feasible
//! configuration can never reach the frontier (every remaining kernel
//! adds strictly positive energy and cycles) and is eliminated without
//! spending its remaining evaluations. The *racing* rule (rule 4 below)
//! is a prefix-dominance heuristic that does the heavy lifting on wide
//! spaces; it is validated rather than proved — see its entry.
//!
//! The schedule is successive halving / racing, tuned by two empirical
//! facts about CGRA provisioning spaces: mix cycles depend almost
//! entirely on the array *shape* (configurations differing only in
//! memory provisioning land within a percent of each other, often on
//! exactly the same count), while energy spreads by multiples; and on a
//! generated space more than half the configurations are infeasible,
//! usually failing one or two specific kernels.
//!
//! 1. **Probe**: a stratified sample of configurations (every
//!    `space/divisor`-th, at least four) is fully evaluated up front.
//!    Completed probes become racing/domination eliminators spread
//!    across the provisioning spectrum, and each probe failure counts
//!    against the kernel that caused it — a per-kernel *lethality*
//!    census.
//! 2. **Rungs in lethality order**: the budget is evaluations, not
//!    wall-clock, so the remaining kernels run most-lethal-first (ties:
//!    cheapest by CDFG op count). Infeasible configurations — the bulk
//!    of a generated space — die after one or two evaluations instead
//!    of surviving to whichever late kernel they fail.
//! 3. **Signature groups and representative promotion**: after each
//!    rung the live configurations are grouped by their *prefix cycle
//!    signature* — the exact vector of per-kernel cycle counts over the
//!    evaluated prefix. Cycles are structural: configurations sharing
//!    an array shape produce identical per-kernel counts, so once the
//!    prefix is two kernels deep a signature all but names a shape
//!    class, and the full-mix cycles of every member of a group land on
//!    the same total. Each group lacking a completed member *promotes*
//!    its cheapest pending member (minimum prefix energy, ties by
//!    index), the engine's content-addressed cache answering the
//!    already-evaluated prefix warm. Promotion is *screened*: the
//!    remaining kernels with a recorded kill run first, and only a
//!    representative surviving them gets the rest of the mix — the
//!    cheapest member of a group is its least provisioned, so an
//!    infeasible representative dies within the lethal chunk instead
//!    of paying for the full remainder. The completed representatives
//!    are exactly the per-shape frontier candidates: the number of
//!    full evaluations scales with the number of shape classes, not
//!    with the space size.
//! 4. **Racing**: from the second rung on (one-kernel signatures still
//!    alias distinct shapes), a pending configuration is raced out by
//!    completed configurations only — they are proven feasible and
//!    never eliminated themselves, so a raced configuration always
//!    lost to a surviving full evaluation. Two forms:
//!    - *Projection through the group representative*: a pending
//!      member of a group with a completed representative inherits the
//!      representative's full cycle count, and its full energy is
//!      projected by scaling the representative's full energy by the
//!      ratio of prefix energies (energy is near-proportional across
//!      kernels within a shape). The configuration is raced when some
//!      completed configuration beats the projected point with
//!      [`SearchOptions::race_margin_energy`] to spare. With the
//!      representative itself as the eliminator this reduces to a
//!      margined prefix-energy comparison, killing same-shape
//!      memory-provisioning duds after one or two kernels.
//!    - *Floor projection for representative-less groups*: direct
//!      cross-shape prefix comparison is noisy (prefix ratios drift a
//!      few percent from full-mix ratios), so a configuration whose
//!      group has no completed member gets an *optimistic* full-mix
//!      point instead: its prefix sums plus, for every unevaluated
//!      kernel, the component-wise minimum energy and cycles any
//!      completed configuration spent on that kernel, scaled down by a
//!      further safety slack. Only a completed configuration that
//!      dominates even this best-case projection — with the energy
//!      margin to spare — races it out. This prunes hopeless shapes
//!      without ever completing them, while a shape whose strength is
//!      cycles keeps a projected cycle total no eliminator can reach.
//!    Racing is a heuristic: prefix dominance does not *prove*
//!    full-mix dominance. It is empirically exact on the validation
//!    space (asserted by tests and gated in CI), and on generated
//!    spaces the benchmark reports frontier quality rather than
//!    assuming it. Disable with [`SearchOptions::racing`] for a
//!    provably exact (but far less frugal) search.
//! 5. The sound backstop described above: lower-bound domination
//!    against completed feasible configurations.
//! 6. Configurations failing any kernel are closed out as infeasible
//!    on the spot.
//!
//! Jobs are ordinary full-fidelity [`JobRequest::flow`] jobs — no
//! reduced-effort proxies — so every scheduled evaluation shares its
//! cache key with the exhaustive sweep. That gives resumability for
//! free: a killed run restarted with the same seed replays the same
//! schedule, and every already-finished job is a disk hit instead of an
//! execution (see [`SearchOptions::max_jobs`], which exists to simulate
//! the kill in tests).

use crate::job::{JobRequest, RunOutcome};
use crate::{Engine, EngineStats};
use cmam_arch::CgraConfig;
use cmam_core::FlowVariant;
use cmam_kernels::KernelSpec;

/// Callback scoring one successful run: `(config_index, kernel_index,
/// outcome) -> energy`. Kernel indices refer to the caller's spec slice
/// (not rung order). The returned energy **must be strictly positive**
/// for every successful run — the lower-bound elimination rule is only
/// sound when every remaining kernel strictly increases the objective.
/// (The engine crate has no energy model of its own; `cmam_bench`
/// injects the paper's.)
pub type EnergyFn<'a> = dyn Fn(usize, usize, &RunOutcome) -> f64 + 'a;

/// Search knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchOptions {
    /// Abort after scheduling this many jobs (counting cache hits).
    /// `None` runs to completion. This simulates a killed sweep: the
    /// resume tests restart an aborted search over the same artifact
    /// store and assert zero re-execution.
    pub max_jobs: Option<usize>,
    /// Probe size and per-rung promotion count, as the denominator of a
    /// fraction of the live count (`n / divisor`, at least one; the
    /// probe additionally floors at four). `None` uses the default.
    pub promote_divisor: Option<usize>,
    /// Racing elimination (rule 4 in the module docs). `None` means on —
    /// the intended configuration; `Some(false)` restricts the search
    /// to the provably exact rules only.
    pub racing: Option<bool>,
    /// Relative energy margin for racing: the eliminator must beat the
    /// victim's projected energy by at least this fraction. `None` uses
    /// the default (10%).
    pub race_margin_energy: Option<f64>,
}

/// Default probe denominator: probe `space / 16` configs up front
/// (floored at four). Small enough that probing stays within the
/// evaluation budget, large enough to seed eliminators across the
/// provisioning spectrum and a usable lethality census.
const DEFAULT_PROMOTE_DIVISOR: usize = 16;

/// Probe at least this many configurations regardless of space size.
const MIN_PROBES: usize = 4;

/// Default racing energy margin (see [`SearchOptions`]).
const DEFAULT_RACE_MARGIN_ENERGY: f64 = 0.10;

/// Safety slack on the floor projection for representative-less groups
/// (rule 4 in the module docs): every unevaluated kernel's contribution
/// is taken as the cheapest any completed configuration paid for it,
/// scaled down by this fraction — the projection must stay optimistic
/// for the racing decision to be safe.
const PROJECTION_SLACK: f64 = 0.10;

/// Why a configuration stopped being evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigStatus {
    /// Still pending when the search aborted (`max_jobs`).
    Pending,
    /// Every kernel evaluated and mapped; full sums are exact.
    Completed,
    /// Some kernel failed to compile or simulate (original index given);
    /// the configuration cannot run the mix.
    Infeasible(usize),
    /// Lower-bound dominated by a completed feasible configuration
    /// after evaluating this many kernels; provably off the frontier.
    Dominated(usize),
    /// Raced out: partial-prefix dominated by another surviving
    /// configuration after evaluating this many kernels. Heuristic
    /// (see the module docs), unlike [`ConfigStatus::Dominated`].
    Raced(usize),
}

/// Per-configuration search outcome.
#[derive(Debug, Clone)]
pub struct ConfigEval {
    /// Index into the caller's configuration slice.
    pub config_index: usize,
    /// Terminal status.
    pub status: ConfigStatus,
    /// Per-kernel `(energy, cycles)` for evaluated kernels, indexed by
    /// the caller's kernel order; `None` where never evaluated.
    pub per_kernel: Vec<Option<(f64, u64)>>,
    /// Sum of evaluated kernel energies, added in kernel index order —
    /// exact for `Completed`, a lower bound otherwise.
    pub energy: f64,
    /// Sum of evaluated kernel cycle counts (same caveat).
    pub cycles: u64,
    /// How many kernels were evaluated (successfully or not).
    pub kernels_evaluated: usize,
}

/// Aggregate counters for one [`run_search`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// (config, kernel) jobs scheduled, including cache hits.
    pub jobs_scheduled: usize,
    /// Rungs processed (≤ kernel count).
    pub rungs: usize,
    /// Configurations fully evaluated up front as probes.
    pub probed: usize,
    /// Configurations promoted to full evaluation.
    pub promoted: usize,
    /// Configurations eliminated by lower-bound domination.
    pub dominated: usize,
    /// Configurations eliminated by racing (prefix dominance).
    pub raced: usize,
    /// Configurations eliminated as infeasible.
    pub infeasible: usize,
    /// Engine counter deltas over the search (cache behaviour).
    pub engine: EngineStats,
}

/// The result of a (possibly aborted) search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// One entry per configuration, in the caller's order.
    pub evaluated: Vec<ConfigEval>,
    /// Configuration indices on the exact Pareto frontier (ascending).
    /// Empty if the search aborted before completing.
    pub frontier: Vec<usize>,
    /// Aggregate counters.
    pub stats: SearchStats,
    /// True when `max_jobs` stopped the search early.
    pub aborted: bool,
}

/// `a` dominates `b` in the (energy, cycles) plane — same predicate as
/// the exhaustive sweep in `dse_pareto`.
pub fn dominates(a: (f64, u64), b: (f64, u64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// Exact Pareto frontier over `(index, energy, cycles)` points:
/// members not dominated by any other point, ascending by index.
pub fn pareto_frontier(points: &[(usize, f64, u64)]) -> Vec<usize> {
    points
        .iter()
        .filter(|&&(_, e, c)| {
            !points
                .iter()
                .any(|&(_, oe, oc)| dominates((oe, oc), (e, c)))
        })
        .map(|&(i, _, _)| i)
        .collect()
}

struct ConfigState {
    per_kernel: Vec<Option<(f64, u64)>>,
    status: ConfigStatus,
    /// Kernels evaluated so far (counted in rung order).
    evaluated: usize,
}

impl ConfigState {
    /// Partial (or full) sums, added in original kernel index order so
    /// completed totals are bit-identical to an exhaustive sweep's.
    fn sums(&self) -> (f64, u64) {
        let mut e = 0.0;
        let mut c = 0u64;
        for v in self.per_kernel.iter().flatten() {
            e += v.0;
            c += v.1;
        }
        (e, c)
    }
}

/// Runs the successive-halving search. See the module docs for the
/// algorithm and its exactness argument.
///
/// Deterministic at any engine thread count: scheduling decisions
/// depend only on job results (themselves deterministic) with all ties
/// broken by configuration index.
pub fn run_search(
    engine: &Engine,
    specs: &[KernelSpec],
    configs: &[CgraConfig],
    variant: FlowVariant,
    energy_of: &EnergyFn<'_>,
    options: &SearchOptions,
) -> SearchResult {
    let _span = cmam_obs::span!("dse_search");
    let nk = specs.len();
    let stats_before = engine.stats();

    // Provisional rung order (re-sorted by lethality after the probe).
    let mut rung_order: Vec<usize> = (0..nk).collect();

    let mut states: Vec<ConfigState> = configs
        .iter()
        .map(|_| ConfigState {
            per_kernel: vec![None; nk],
            status: ConfigStatus::Pending,
            evaluated: 0,
        })
        .collect();
    let mut stats = SearchStats::default();
    let mut aborted = false;
    let promote_divisor = options
        .promote_divisor
        .unwrap_or(DEFAULT_PROMOTE_DIVISOR)
        .max(1);
    let racing = options.racing.unwrap_or(true);
    let margin_e = options
        .race_margin_energy
        .unwrap_or(DEFAULT_RACE_MARGIN_ENERGY);

    // Runs `(config, kernel)` jobs through the engine, honouring the
    // `max_jobs` abort budget, and folds results into the states;
    // every failure counts against its kernel in the lethality census.
    // Returns false when the budget ran out (search must stop).
    let run_jobs = |jobs: &mut Vec<(usize, usize)>,
                    states: &mut Vec<ConfigState>,
                    stats: &mut SearchStats,
                    deaths: &mut [u64]|
     -> bool {
        let mut fits = true;
        if let Some(max) = options.max_jobs {
            let room = max.saturating_sub(stats.jobs_scheduled);
            if jobs.len() > room {
                jobs.truncate(room);
                fits = false;
            }
        }
        if !jobs.is_empty() {
            let requests: Vec<JobRequest<'_>> = jobs
                .iter()
                .map(|&(ci, ki)| JobRequest::flow(&specs[ki], variant, &configs[ci]))
                .collect();
            let results = engine.run_batch(&requests);
            stats.jobs_scheduled += jobs.len();
            for (&(ci, ki), result) in jobs.iter().zip(&results) {
                let st = &mut states[ci];
                st.evaluated += 1;
                match result {
                    Ok(out) => {
                        st.per_kernel[ki] = Some((energy_of(ci, ki, out), out.cycles));
                    }
                    Err(_) => {
                        deaths[ki] += 1;
                        if st.status == ConfigStatus::Pending {
                            st.status = ConfigStatus::Infeasible(ki);
                            stats.infeasible += 1;
                        }
                    }
                }
            }
        }
        fits
    };

    let mut deaths = vec![0u64; nk];

    // Probe: a stratified sample of configurations, fully evaluated.
    // Completed probes seed the eliminator pool across the provisioning
    // spectrum; probe failures build the lethality census that orders
    // the rungs.
    let probe_n = (configs.len() / promote_divisor)
        .max(MIN_PROBES)
        .min(configs.len());
    let stride = (configs.len() / probe_n).max(1);
    let probes: Vec<usize> = (0..probe_n).map(|i| i * stride).collect();
    stats.probed = probes.len();
    // Probes run their kernels biggest-first, each probe stopping at
    // its first failure: infeasibility concentrates in the demanding
    // kernels, so an infeasible probe dies within a job or two —
    // crediting the census with the real killer — instead of paying
    // for the full mix.
    let mut probe_order: Vec<usize> = (0..nk).collect();
    probe_order.sort_by_key(|&k| (std::cmp::Reverse(specs[k].cdfg.total_ops()), k));
    for &ki in &probe_order {
        let mut jobs: Vec<(usize, usize)> = probes
            .iter()
            .copied()
            .filter(|&ci| states[ci].status == ConfigStatus::Pending)
            .map(|ci| (ci, ki))
            .collect();
        if !run_jobs(&mut jobs, &mut states, &mut stats, &mut deaths) {
            aborted = true;
            break;
        }
    }
    for &ci in &probes {
        let st = &mut states[ci];
        if st.status == ConfigStatus::Pending && st.evaluated == nk {
            st.status = ConfigStatus::Completed;
        }
    }

    // Rung order: most lethal kernel first (kills the infeasible bulk
    // after one evaluation), ties broken cheapest-first, then by index.
    rung_order.sort_by_key(|&k| (std::cmp::Reverse(deaths[k]), specs[k].cdfg.total_ops(), k));

    'rungs: for (rung, &kernel) in rung_order.iter().enumerate() {
        if aborted {
            break 'rungs;
        }
        stats.rungs = rung + 1;
        cmam_obs::counter!("dse.search_rungs").add(1);

        // Rung evaluation: the rung's kernel for every pending config.
        let mut jobs: Vec<(usize, usize)> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status == ConfigStatus::Pending)
            .map(|(ci, _)| (ci, kernel))
            .collect();
        if !run_jobs(&mut jobs, &mut states, &mut stats, &mut deaths) {
            aborted = true;
            break 'rungs;
        }

        let last_rung = rung + 1 == nk;
        if last_rung {
            // Every surviving config now has all kernels evaluated.
            for st in states.iter_mut() {
                if st.status == ConfigStatus::Pending {
                    st.status = ConfigStatus::Completed;
                }
            }
            break 'rungs;
        }

        // Group the live configurations by prefix cycle signature (rule
        // 3): the exact per-kernel cycle vector over the evaluated
        // prefix, in ascending kernel index order. Pending members have
        // evaluated exactly the prefix; completed members restrict
        // their full evaluation to it. A BTreeMap keyed by the
        // signature keeps iteration — and hence promotion order —
        // deterministic.
        let mut prefix: Vec<usize> = rung_order[..=rung].to_vec();
        prefix.sort_unstable();
        let completed: Vec<(f64, u64)> = states
            .iter()
            .filter(|s| s.status == ConfigStatus::Completed)
            .map(|s| s.sums())
            .collect();
        // Per-kernel floors over the completed configurations:
        // component-wise minimum energy and cycles anyone paid for each
        // kernel, the optimistic remainder for the floor projection.
        let mut floors: Vec<(f64, u64)> = vec![(f64::INFINITY, u64::MAX); nk];
        for s in states
            .iter()
            .filter(|s| s.status == ConfigStatus::Completed)
        {
            for (k, v) in s.per_kernel.iter().enumerate() {
                if let Some((e, c)) = v {
                    floors[k].0 = floors[k].0.min(*e);
                    floors[k].1 = floors[k].1.min(*c);
                }
            }
        }
        let mut in_prefix = vec![false; nk];
        for &k in &prefix {
            in_prefix[k] = true;
        }
        #[derive(Default)]
        struct Group {
            /// Cheapest completed member: full energy, full cycles,
            /// prefix energy. First-by-index wins energy ties.
            rep: Option<(f64, u64, f64)>,
            /// Pending members: `(config index, prefix energy)`.
            pending: Vec<(usize, f64)>,
        }
        let mut groups: std::collections::BTreeMap<Vec<u64>, Group> =
            std::collections::BTreeMap::new();
        for (ci, s) in states.iter().enumerate() {
            if s.status != ConfigStatus::Completed && s.status != ConfigStatus::Pending {
                continue;
            }
            let signature: Vec<u64> = prefix
                .iter()
                .map(|&k| s.per_kernel[k].map_or(0, |(_, c)| c))
                .collect();
            let group = groups.entry(signature).or_default();
            if s.status == ConfigStatus::Completed {
                let (fe, fc) = s.sums();
                let (pe, _) = prefix_sums(&s.per_kernel, &prefix);
                if group.rep.is_none_or(|(re, _, _)| fe < re) {
                    group.rep = Some((fe, fc, pe));
                }
            } else {
                let (pe, _) = s.sums();
                group.pending.push((ci, pe));
            }
        }

        // Elimination. The sound rule first: a pending config whose
        // partial sums are already matched-or-beaten in both objectives
        // by a completed feasible config can never reach the frontier —
        // its full sums exceed the partial sums strictly in both
        // components. Then racing (rule 4, heuristic): projection
        // through the group representative, or the wide-margin prefix
        // comparison for representative-less groups. Racing waits for
        // the second rung — one-kernel signatures still alias distinct
        // shapes, and a merged group's representative would race out
        // members whose shapes it does not speak for.
        for (signature, group) in &groups {
            let prefix_cycles: u64 = signature.iter().sum();
            for &(ci, prefix_energy) in &group.pending {
                if completed
                    .iter()
                    .any(|&(fe, fc)| fe <= prefix_energy && fc <= prefix_cycles)
                {
                    states[ci].status = ConfigStatus::Dominated(states[ci].evaluated);
                    stats.dominated += 1;
                    cmam_obs::counter!("dse.search_dominated").add(1);
                    continue;
                }
                if !racing || rung == 0 {
                    continue;
                }
                let raced = match group.rep {
                    Some((rep_energy, rep_cycles, rep_prefix_energy)) => {
                        // Full cycles inherited from the representative;
                        // full energy projected by the prefix-energy
                        // ratio. The representative eliminating its own
                        // group reduces to a margined prefix-energy
                        // comparison.
                        let projected = rep_energy * (prefix_energy / rep_prefix_energy);
                        completed
                            .iter()
                            .any(|&(fe, fc)| fe <= projected * (1.0 - margin_e) && fc <= rep_cycles)
                    }
                    None => {
                        // Floor projection: the optimistic full-mix
                        // point assuming every remaining kernel costs
                        // the least anyone completed paid for it, less
                        // the safety slack. Only domination of even
                        // this best case races the config out.
                        let mut proj_e = prefix_energy;
                        let mut proj_c = prefix_cycles as f64;
                        for k in 0..nk {
                            if !in_prefix[k] && floors[k].0.is_finite() {
                                proj_e += floors[k].0 * (1.0 - PROJECTION_SLACK);
                                proj_c += floors[k].1 as f64 * (1.0 - PROJECTION_SLACK);
                            }
                        }
                        completed.iter().any(|&(fe, fc)| {
                            fe <= proj_e * (1.0 - margin_e) && (fc as f64) <= proj_c
                        })
                    }
                };
                if raced {
                    states[ci].status = ConfigStatus::Raced(states[ci].evaluated);
                    stats.raced += 1;
                    cmam_obs::counter!("dse.search_raced").add(1);
                }
            }
        }

        // Representative promotion (rule 3): every group without a
        // completed member promotes its cheapest surviving pending
        // member — all remaining kernels at once, the cache answering
        // the prefix warm. Full evaluations therefore scale with the
        // number of shape classes, not the space size.
        let promoted: Vec<usize> = groups
            .values()
            .filter(|g| g.rep.is_none())
            .filter_map(|g| {
                g.pending
                    .iter()
                    .filter(|&&(ci, _)| states[ci].status == ConfigStatus::Pending)
                    .min_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.0.cmp(&b.0))
                    })
                    .map(|&(ci, _)| ci)
            })
            .collect();
        // Screened promotion: the remaining kernels with a recorded
        // kill (the live lethality census) run first; only survivors
        // get the rest of the mix. A representative is its group's
        // least provisioned member, so an infeasible one usually dies
        // within the lethal chunk.
        let screen: Vec<usize> = {
            let lethal: Vec<usize> = rung_order[rung + 1..]
                .iter()
                .copied()
                .filter(|&k| deaths[k] > 0)
                .collect();
            if lethal.is_empty() {
                vec![rung_order[rung + 1]]
            } else {
                lethal
            }
        };
        let mut jobs: Vec<(usize, usize)> = promoted
            .iter()
            .flat_map(|&ci| screen.iter().map(move |&ki| (ci, ki)))
            .collect();
        if !run_jobs(&mut jobs, &mut states, &mut stats, &mut deaths) {
            aborted = true;
            break 'rungs;
        }
        let survivors: Vec<usize> = promoted
            .iter()
            .copied()
            .filter(|&ci| states[ci].status == ConfigStatus::Pending)
            .collect();
        let mut jobs: Vec<(usize, usize)> = survivors
            .iter()
            .flat_map(|&ci| {
                rung_order[rung + 1..]
                    .iter()
                    .copied()
                    .filter(|ki| !screen.contains(ki))
                    .map(move |ki| (ci, ki))
            })
            .collect();
        if !run_jobs(&mut jobs, &mut states, &mut stats, &mut deaths) {
            aborted = true;
            break 'rungs;
        }
        for &ci in &survivors {
            let st = &mut states[ci];
            if st.status == ConfigStatus::Pending {
                st.status = ConfigStatus::Completed;
                stats.promoted += 1;
            }
        }

        if states.iter().all(|s| s.status != ConfigStatus::Pending) {
            break 'rungs;
        }
    }

    // Final frontier over completed feasible configurations. Dominated
    // configs are provably off it; infeasible configs are excluded just
    // as in the exhaustive sweep.
    let points: Vec<(usize, f64, u64)> = states
        .iter()
        .enumerate()
        .filter(|(_, s)| s.status == ConfigStatus::Completed)
        .map(|(ci, s)| {
            let (e, c) = s.sums();
            (ci, e, c)
        })
        .collect();
    let frontier = if aborted {
        Vec::new()
    } else {
        pareto_frontier(&points)
    };

    stats.engine = engine_delta(stats_before, engine.stats());
    cmam_obs::counter!("dse.search_jobs").add(stats.jobs_scheduled as u64);
    cmam_obs::counter!("dse.search_completed").add(points.len() as u64);

    let evaluated = states
        .into_iter()
        .enumerate()
        .map(|(ci, st)| {
            let (e, c) = st.sums();
            ConfigEval {
                config_index: ci,
                status: st.status,
                energy: e,
                cycles: c,
                kernels_evaluated: st.evaluated,
                per_kernel: st.per_kernel,
            }
        })
        .collect();

    SearchResult {
        evaluated,
        frontier,
        stats,
        aborted,
    }
}

/// Sums `(energy, cycles)` over the given kernels, in ascending kernel
/// index order (the `prefix` slice is pre-sorted) so the accumulation
/// order — and hence the f64 result — is deterministic.
fn prefix_sums(per_kernel: &[Option<(f64, u64)>], prefix: &[usize]) -> (f64, u64) {
    let mut e = 0.0;
    let mut c = 0u64;
    for &k in prefix {
        if let Some((ke, kc)) = per_kernel[k] {
            e += ke;
            c += kc;
        }
    }
    (e, c)
}

fn engine_delta(before: EngineStats, after: EngineStats) -> EngineStats {
    EngineStats {
        submitted: after.submitted - before.submitted,
        deduped: after.deduped - before.deduped,
        memory_hits: after.memory_hits - before.memory_hits,
        disk_hits: after.disk_hits - before.disk_hits,
        executed: after.executed - before.executed,
        retries: after.retries - before.retries,
        quarantined: after.quarantined - before.quarantined,
    }
}
