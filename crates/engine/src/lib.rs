//! # cmam-engine — parallel, content-addressed compilation engine
//!
//! The paper's whole evaluation is a sweep: the map→assemble→simulate→
//! energy pipeline re-run per `(kernel, configuration, flow variant)` to
//! find the energy-optimal context-memory configuration (Table I,
//! Figs 6-8). This crate turns each such run into a *job* keyed by a
//! content hash of its inputs and executes batches of jobs on a
//! work-stealing `std::thread` pool with two levels of memoisation:
//!
//! * **dedup** — identical jobs submitted twice in a batch (or across
//!   batches) execute once;
//! * **in-memory cache** — every result is memoised for the process
//!   lifetime (a sharded lock table, so high `--jobs` counts do not
//!   serialise on one memo mutex);
//! * **on-disk cache** — results are persisted as length-prefixed binary
//!   artifacts under `target/cmam-cache/` (override with
//!   `CMAM_CACHE_DIR`), so repeated sweeps across processes are
//!   near-free.
//!
//! Batches execute on the process-wide persistent [`cmam_pool`] — the
//! same pool the mapper's intra-search beam parallelism draws from — and
//! the engine hands every executing job a **mapper thread budget** so the
//! two levels compose instead of oversubscribing: with at least as many
//! pending jobs as workers each map runs sequentially, and as the
//! pending set shrinks below the worker count (the sweep tail, or a
//! single submitted job) the leftover workers move *inside* the maps.
//!
//! Mapping is a pure seeded function — for any thread count, at either
//! level — so a parallel run is bit-identical to a sequential one; the
//! engine's tests assert this over the full smoke sweep. Experiment
//! binaries therefore accept `--jobs N` and `--no-cache` without any
//! change in output.
//!
//! ## Failure model
//!
//! A batch always completes. Pipeline failures (no mapping, does not
//! fit, execution error) are deterministic per-job verdicts carried as
//! [`JobFailure`] values. A *panicking* job is retried in-process with
//! backoff up to [`job::MAX_JOB_ATTEMPTS`] attempts and then
//! quarantined as a [`FailStage::Panic`] failure — sibling jobs are
//! never affected (the pool isolates each panic), the engine's locks
//! recover from poisoning, and the disk cache self-heals corrupt
//! artifacts (see [`cache`]). The whole surface is driven by the
//! seeded `cmam_fault` chaos suite, which asserts that fault-laden runs
//! converge to bit-identical results.

pub mod batch_sim;
pub mod cache;
pub mod dse;
pub mod fingerprint;
pub mod job;
pub mod search;

pub use batch_sim::{BatchSimOutcome, BatchSimRequest, BatchSimResult};
pub use fingerprint::{Fingerprint, Fnv64, FORMAT_VERSION};
pub use job::{
    execute, execute_with_recovery, smoke_matrix, FailStage, JobFailure, JobRequest, JobResult,
    RunFailure, RunOutcome,
};
pub use search::{run_search, ConfigEval, ConfigStatus, SearchOptions, SearchResult, SearchStats};

use cache::DiskCache;
use cmam_arch::CgraConfig;
use cmam_core::MapperOptions;
use cmam_kernels::KernelSpec;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poisoning. The engine's critical
/// sections (memo inserts, stats merges) never panic mid-mutation, so a
/// poisoned lock only ever means "a job panicked while a guard was
/// alive somewhere" — the state is intact and recovery is sound.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads for batch execution; `0` means one per available
    /// core.
    pub jobs: usize,
    /// On-disk artifact directory; `None` disables persistence (the
    /// in-memory memo table is always active).
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the on-disk store (`CMAM_CACHE_BYTES`); writes
    /// that push the store past it evict artifacts oldest-first. `None`
    /// leaves the store unbounded.
    pub cache_bytes: Option<u64>,
}

impl EngineOptions {
    /// The default cache location mandated by the engine's contract:
    /// `target/cmam-cache/`, kept under the build tree so `cargo clean`
    /// clears it. Overridable with `CMAM_CACHE_DIR`.
    pub fn default_cache_dir() -> PathBuf {
        if let Ok(dir) = std::env::var("CMAM_CACHE_DIR") {
            return PathBuf::from(dir);
        }
        if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
            return PathBuf::from(dir).join("cmam-cache");
        }
        // Binaries and test harnesses run with different working
        // directories (workspace root vs. crate root), so resolve the
        // target tree from the executable's own location.
        if let Ok(exe) = std::env::current_exe() {
            if let Some(target) = exe
                .ancestors()
                .find(|p| p.file_name() == Some(std::ffi::OsStr::new("target")))
            {
                return target.join("cmam-cache");
            }
        }
        PathBuf::from("target").join("cmam-cache")
    }

    /// The byte budget from `CMAM_CACHE_BYTES` (plain byte count).
    /// Absent, empty or `0` means unbounded; a malformed value warns
    /// through [`cmam_obs::warn!`] and is treated as unbounded.
    pub fn cache_bytes_from_env() -> Option<u64> {
        let raw = std::env::var("CMAM_CACHE_BYTES").ok()?;
        if raw.is_empty() {
            return None;
        }
        match raw.parse::<u64>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(_) => {
                cmam_obs::warn!("CMAM_CACHE_BYTES expects a byte count, got {raw:?}; unbounded");
                None
            }
        }
    }

    /// Options parsed from the process arguments: `--jobs N` (or
    /// `--jobs=N`) picks the worker count, `--no-cache` disables the disk
    /// store. Unknown arguments are ignored — experiment binaries layer
    /// their own flags (e.g. `--csv`) on the same argv.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut jobs = 0usize;
        let mut cache = true;
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--no-cache" {
                cache = false;
            } else if args[i] == "--jobs" {
                // Only consume the next token when it actually is the
                // count — `--jobs --no-cache` must not swallow the flag.
                if let Some(n) = parse_jobs(args.get(i + 1).map(String::as_str)) {
                    jobs = n;
                    i += 1;
                }
            } else if let Some(v) = args[i].strip_prefix("--jobs=") {
                if let Some(n) = parse_jobs(Some(v)) {
                    jobs = n;
                }
            }
            i += 1;
        }
        EngineOptions {
            jobs,
            cache_dir: cache.then(EngineOptions::default_cache_dir),
            cache_bytes: EngineOptions::cache_bytes_from_env(),
        }
    }
}

/// The one parser both `--jobs` spellings share: a missing or malformed
/// count warns through the [`cmam_obs::warn!`] funnel (counted in the
/// `obs.warnings` metric) and returns `None` so the caller keeps the
/// all-cores default.
fn parse_jobs(value: Option<&str>) -> Option<usize> {
    let parsed = value.and_then(|v| v.parse().ok());
    if parsed.is_none() {
        cmam_obs::warn!("--jobs expects a number; using all cores");
    }
    parsed
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            jobs: 0,
            cache_dir: Some(EngineOptions::default_cache_dir()),
            cache_bytes: EngineOptions::cache_bytes_from_env(),
        }
    }
}

/// Counters describing what a batch (or a whole engine lifetime) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs submitted through [`Engine::run_batch`] / [`Engine::run_one`].
    pub submitted: u64,
    /// Submissions that were duplicates of another job in the same batch.
    pub deduped: u64,
    /// Submissions answered from the in-memory memo table.
    pub memory_hits: u64,
    /// Submissions answered from the on-disk artifact store.
    pub disk_hits: u64,
    /// Jobs actually executed (mapped, assembled, simulated).
    pub executed: u64,
    /// Panicking job attempts that were retried (attempts beyond the
    /// first, across all executed jobs).
    pub retries: u64,
    /// Jobs that panicked on every attempt of their retry budget and
    /// settled as a structured [`FailStage::Panic`] failure.
    pub quarantined: u64,
}

/// Lock shards of the in-memory memo table. Shard choice is the low bits
/// of the job fingerprint (already uniform), so concurrent workers
/// publishing results rarely contend on the same mutex.
const MEMO_SHARDS: usize = 16;

/// One pending job, cloned out of the borrowed [`JobRequest`] so the
/// executing closure is `'static` for the persistent pool workers.
#[derive(Debug)]
struct PendingJob {
    key: u64,
    spec: KernelSpec,
    config: CgraConfig,
    options: MapperOptions,
}

/// The batch compilation engine. One instance per process is the normal
/// deployment (see `cmam_bench::engine()`); all methods take `&self` and
/// are thread-safe.
#[derive(Debug)]
pub struct Engine {
    options: EngineOptions,
    disk: Arc<DiskCache>,
    memo: Vec<Mutex<HashMap<u64, JobResult>>>,
    /// Memo table for batched-simulation outcomes. Batch-sim jobs are
    /// coarse (one per sweep, not one per kernel-config pair), so a
    /// single unsharded map is enough.
    batch_memo: Mutex<HashMap<u64, BatchSimOutcome>>,
    stats: Mutex<EngineStats>,
}

impl Engine {
    /// Builds an engine with the given options.
    pub fn new(options: EngineOptions) -> Self {
        let disk = Arc::new(DiskCache::new(
            options.cache_dir.clone(),
            options.cache_bytes,
        ));
        Engine {
            options,
            disk,
            memo: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            batch_memo: Mutex::new(HashMap::new()),
            stats: Mutex::new(EngineStats::default()),
        }
    }

    fn memo_shard(&self, key: u64) -> &Mutex<HashMap<u64, JobResult>> {
        &self.memo[(key % MEMO_SHARDS as u64) as usize]
    }

    /// The mapper thread budget handed to each executing job so job-level
    /// and intra-map parallelism compose: with `remaining >= workers`
    /// every worker has its own job and each map runs sequentially; as
    /// the unstarted frontier shrinks below the worker count (the batch
    /// tail, or a single submitted job), the idle workers move inside the
    /// maps instead. `remaining` is sampled *when the job starts* (a
    /// shared countdown, see `run_batch`), so a large batch tightens and
    /// then relaxes its budget as it drains. The budget never changes
    /// any output — the mapper is bit-identical for every thread count —
    /// so it is applied only to the executed clone of the options, never
    /// to the job key.
    fn intra_map_threads(remaining: usize, workers: usize) -> usize {
        if remaining == 0 || remaining >= workers {
            1
        } else {
            (workers / remaining).max(1)
        }
    }

    /// The effective worker count.
    pub fn workers(&self) -> usize {
        if self.options.jobs > 0 {
            self.options.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Whether the on-disk store is active.
    pub fn disk_cache_enabled(&self) -> bool {
        self.disk.enabled()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EngineStats {
        *lock_recover(&self.stats)
    }

    /// Runs a batch of jobs, returning results in submission order.
    ///
    /// Duplicate jobs (by content hash) execute once; results already in
    /// the memo table or the disk store are returned without executing
    /// anything. The remaining jobs run on the work-stealing pool. The
    /// result vector is a pure function of the requests — thread count and
    /// cache state never change it, only how fast it arrives.
    pub fn run_batch(&self, requests: &[JobRequest<'_>]) -> Vec<JobResult> {
        let _span = cmam_obs::span!("run_batch", submitted = requests.len() as u64);
        let batch_start = std::time::Instant::now();
        let keys: Vec<u64> = requests.iter().map(JobRequest::key).collect();
        let mut batch_stats = EngineStats {
            submitted: requests.len() as u64,
            ..EngineStats::default()
        };
        // Resolve each submission against (in order): earlier submissions
        // in this batch, the memo table, the disk store. What's left is
        // the unique frontier that actually executes. No memo lock is
        // ever held across disk I/O (or across another shard's lock).
        let mut probes: Vec<usize> = Vec::new();
        {
            let mut seen_in_batch: HashSet<u64> = HashSet::new();
            for (i, &key) in keys.iter().enumerate() {
                if !seen_in_batch.insert(key) {
                    batch_stats.deduped += 1;
                } else if lock_recover(self.memo_shard(key)).contains_key(&key) {
                    batch_stats.memory_hits += 1;
                } else {
                    probes.push(i);
                }
            }
        }
        let mut pending: Vec<usize> = Vec::new();
        for i in probes {
            match self.disk.load(keys[i]) {
                Some(result) => {
                    batch_stats.disk_hits += 1;
                    lock_recover(self.memo_shard(keys[i])).insert(keys[i], result);
                }
                None => pending.push(i),
            }
        }
        // Execute the frontier on the shared persistent pool. Each job is
        // cloned into owned state (so the closure is `'static`), handed
        // the composed mapper thread budget, and persisted to disk as
        // soon as it finishes — an interrupted sweep keeps everything
        // already computed. No memo lock is held while workers run.
        batch_stats.executed = pending.len() as u64;
        let workers = self.workers();
        let jobs: Arc<Vec<PendingJob>> = Arc::new(
            pending
                .iter()
                .map(|&i| {
                    let r = &requests[i];
                    PendingJob {
                        key: keys[i],
                        spec: r.spec.clone(),
                        config: r.config.clone(),
                        options: r.options.clone(),
                    }
                })
                .collect(),
        );
        let job_list = Arc::clone(&jobs);
        let disk = Arc::clone(&self.disk);
        // Unstarted-job countdown: each job samples it at start, so the
        // thread budget tightens while the frontier is wide and relaxes
        // on the tail — the last `< workers` maps soak up the idle
        // workers instead of leaving them parked.
        let unstarted = Arc::new(std::sync::atomic::AtomicUsize::new(jobs.len()));
        // `try_run_indexed`: a job panic is retried and quarantined
        // inside `execute_with_recovery`, and even a panic that escapes
        // that net (a bug, or an injected worker fault) only costs its
        // own slot — the batch still completes with N-1 real results.
        let computed = cmam_pool::global().try_run_indexed(jobs.len(), workers, move |p| {
            let remaining = unstarted.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            let j = &job_list[p];
            let mut options = j.options.clone();
            // Respect an explicitly requested per-map thread count; only
            // the auto setting takes the budget.
            if options.threads == 0 {
                options.threads = Engine::intra_map_threads(remaining, workers);
            }
            let request = JobRequest {
                spec: &j.spec,
                config: &j.config,
                options,
            };
            let (result, attempts) = job::execute_with_recovery(&request, j.key);
            disk.store(j.key, &result);
            (result, attempts)
        });
        for (j, slot) in jobs.iter().zip(computed) {
            let (result, attempts) = match slot {
                Ok(pair) => pair,
                // Defense in depth: `execute_with_recovery` already
                // quarantines panics, so an escaped one means the
                // recovery wrapper itself died; quarantine it the same
                // way rather than aborting the batch.
                Err(p) => (
                    Err(JobFailure::panicked(
                        format!("escaped job recovery: {}", p.message()),
                        1,
                    )),
                    1,
                ),
            };
            batch_stats.retries += u64::from(attempts.saturating_sub(1));
            if matches!(&result, Err(f) if f.stage == FailStage::Panic) {
                batch_stats.quarantined += 1;
            }
            lock_recover(self.memo_shard(j.key)).insert(j.key, result);
        }
        {
            let mut stats = lock_recover(&self.stats);
            stats.submitted += batch_stats.submitted;
            stats.deduped += batch_stats.deduped;
            stats.memory_hits += batch_stats.memory_hits;
            stats.disk_hits += batch_stats.disk_hits;
            stats.executed += batch_stats.executed;
            stats.retries += batch_stats.retries;
            stats.quarantined += batch_stats.quarantined;
        }
        // Flush this batch's cache outcome to the global metrics — once
        // per batch, at the same merge point as the lifetime counters.
        cmam_obs::counter!("engine.batches").add(1);
        cmam_obs::counter!("engine.submitted").add(batch_stats.submitted);
        cmam_obs::counter!("engine.deduped").add(batch_stats.deduped);
        cmam_obs::counter!("engine.memory_hits").add(batch_stats.memory_hits);
        cmam_obs::counter!("engine.disk_hits").add(batch_stats.disk_hits);
        cmam_obs::counter!("engine.executed").add(batch_stats.executed);
        cmam_obs::counter!("engine.retries").add(batch_stats.retries);
        cmam_obs::counter!("engine.quarantined").add(batch_stats.quarantined);
        cmam_obs::histogram!("batch.wall_us").record(batch_start.elapsed().as_micros() as u64);
        keys.iter()
            .map(|k| {
                lock_recover(self.memo_shard(*k))
                    .get(k)
                    .expect("every key resolved")
                    .clone()
            })
            .collect()
    }

    /// Runs a single job through the same dedup/cache/execute path.
    pub fn run_one(&self, request: &JobRequest<'_>) -> JobResult {
        self.run_batch(std::slice::from_ref(request))
            .pop()
            .expect("one request yields one result")
    }

    /// Runs one batched-simulate job: compiles the mapping through the
    /// regular (deduped, memoised) pipeline, then sweeps the request's
    /// seeded input set through the batched simulator. The sweep outcome
    /// is memoised in memory and persisted as a `.bsim` artifact under
    /// the same cache directory, keyed by a fingerprint that covers the
    /// generated input-set digest.
    ///
    /// # Errors
    ///
    /// The compile pipeline's [`RunFailure`] (no mapping, does not fit).
    /// Per-lane simulation errors are data, carried inside the outcome.
    pub fn run_batch_sim(&self, request: &BatchSimRequest<'_>) -> BatchSimResult {
        let _span = cmam_obs::span!("batch_sim", lanes = request.lanes as u64);
        cmam_obs::counter!("engine.batch_sim.submitted").add(1);
        let images = request.images();
        let key = request.key_for(&images);
        if let Some(hit) = lock_recover(&self.batch_memo).get(&key) {
            cmam_obs::counter!("engine.batch_sim.memory_hits").add(1);
            return Ok(hit.clone());
        }
        if let Some(outcome) = self.disk.load_batch(key) {
            cmam_obs::counter!("engine.batch_sim.disk_hits").add(1);
            lock_recover(&self.batch_memo).insert(key, outcome.clone());
            return Ok(outcome);
        }
        let compiled = self.run_one(&request.compile_request())?;
        // Same quarantine discipline as per-job execution: a panic in
        // the batched simulator becomes a structured failure, not an
        // unwound sweep.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch_sim::execute_batch_sim(request, &compiled, images)
        }))
        .map_err(|payload| {
            lock_recover(&self.stats).quarantined += 1;
            cmam_obs::counter!("engine.quarantined").add(1);
            JobFailure::panicked(cmam_pool::panic_message(payload.as_ref()), 1)
        })?;
        cmam_obs::counter!("engine.batch_sim.executed").add(1);
        self.disk.store_batch(key, &outcome);
        lock_recover(&self.batch_memo).insert(key, outcome.clone());
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmam_arch::CgraConfig;
    use cmam_core::FlowVariant;

    #[test]
    fn dedup_within_a_batch_executes_once() {
        let engine = Engine::new(EngineOptions {
            jobs: 2,
            cache_dir: None,
            cache_bytes: None,
        });
        let spec = cmam_kernels::dc::spec();
        let config = CgraConfig::hom64();
        let reqs: Vec<JobRequest<'_>> = (0..4)
            .map(|_| JobRequest::flow(&spec, FlowVariant::Basic, &config))
            .collect();
        let results = engine.run_batch(&reqs);
        assert_eq!(results.len(), 4);
        let stats = engine.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.deduped, 3);
        let digests: Vec<u64> = results
            .iter()
            .map(|r| r.as_ref().expect("DC maps").content_digest())
            .collect();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn memo_table_answers_repeat_batches() {
        let engine = Engine::new(EngineOptions {
            jobs: 1,
            cache_dir: None,
            cache_bytes: None,
        });
        let spec = cmam_kernels::dc::spec();
        let config = CgraConfig::hom64();
        let req = JobRequest::flow(&spec, FlowVariant::Basic, &config);
        let first = engine.run_one(&req).expect("DC maps");
        let second = engine.run_one(&req).expect("DC maps");
        assert_eq!(engine.stats().executed, 1);
        assert_eq!(engine.stats().memory_hits, 1);
        assert_eq!(first.content_digest(), second.content_digest());
        // Memoised results even preserve the measured compile time.
        assert_eq!(first.compile_time, second.compile_time);
    }
}
