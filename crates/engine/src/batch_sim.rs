//! Batched-simulate jobs: one compiled mapping swept over N seeded
//! input memory images through [`cmam_sim::DecodedProgram::simulate_batch`].
//!
//! A batch-sim job reuses the regular compile pipeline (and its caches)
//! to obtain the binary, decodes it once, regenerates the lane images
//! from `(input_seed, lane)` via [`cmam_kernels::lane_images`], and runs
//! the whole set through the batched simulator. The job key fingerprints
//! everything the result depends on — kernel, configuration, mapper
//! options, simulator options, lane count and a digest of the *actual
//! generated input set* — so a change to the image generator invalidates
//! cached sweeps even at an unchanged seed.

use crate::fingerprint::{Fingerprint, Fnv64};
use crate::job::{JobRequest, RunFailure, RunOutcome};
use cmam_arch::CgraConfig;
use cmam_core::{FlowVariant, MapperOptions};
use cmam_kernels::KernelSpec;
use cmam_sim::{DecodedProgram, LaneState, SimError, SimOptions, SimStats};
use std::time::{Duration, Instant};

/// One input-sweep job: a compile job plus the simulated input set.
#[derive(Debug, Clone)]
pub struct BatchSimRequest<'a> {
    /// The kernel to compile and sweep.
    pub spec: &'a KernelSpec,
    /// The target CGRA instance.
    pub config: &'a CgraConfig,
    /// All mapper knobs (a [`FlowVariant`] resolves to these).
    pub options: MapperOptions,
    /// Simulator options applied to every lane.
    pub sim: SimOptions,
    /// Root seed of the input set; lane `l` simulates the image
    /// `input_image(input_seed, l, spec.mem.len(), ..)`.
    pub input_seed: u64,
    /// Number of input images to sweep.
    pub lanes: usize,
}

impl<'a> BatchSimRequest<'a> {
    /// A sweep job for one of the paper's cumulative flow variants with
    /// default simulator options.
    pub fn flow(
        spec: &'a KernelSpec,
        variant: FlowVariant,
        config: &'a CgraConfig,
        input_seed: u64,
        lanes: usize,
    ) -> Self {
        BatchSimRequest {
            spec,
            config,
            options: variant.options(),
            sim: SimOptions::default(),
            input_seed,
            lanes,
        }
    }

    /// The compile half of the job (what [`crate::Engine::run_one`]
    /// resolves, with all its dedup and caching).
    pub fn compile_request(&self) -> JobRequest<'a> {
        JobRequest {
            spec: self.spec,
            config: self.config,
            options: self.options.clone(),
        }
    }

    /// The lane input images, regenerated deterministically from
    /// `(input_seed, lane)`.
    pub fn images(&self) -> Vec<Vec<i32>> {
        cmam_kernels::lane_images(self.spec, self.input_seed, self.lanes)
    }

    /// The content hash keying this job, given its (already generated)
    /// input images. The digest covers the image *contents*, not just
    /// the seed.
    pub fn key_for(&self, images: &[Vec<i32>]) -> u64 {
        let mut h = Fnv64::new();
        h.feed_str("batch-sim");
        self.spec.fingerprint(&mut h);
        self.config.fingerprint(&mut h);
        self.options.fingerprint(&mut h);
        h.feed_usize(self.sim.mem_banks);
        h.feed_u64(self.sim.max_cycles);
        h.feed_u64(self.input_seed);
        h.feed_usize(self.lanes);
        h.feed_usize(images.len());
        for image in images {
            h.feed_usize(image.len());
            for &w in image {
                h.feed_u64(w as u32 as u64);
            }
        }
        h.finish()
    }

    /// The content hash keying this job in the cache.
    pub fn key(&self) -> u64 {
        self.key_for(&self.images())
    }

    /// A short human-readable label (for logs and engine stats).
    pub fn label(&self) -> String {
        format!("{}@{}x{}", self.spec.name, self.config.name(), self.lanes)
    }
}

/// What a batch-sim job produced: per-lane results plus sweep-level
/// accounting. Per-lane final memories are not retained (they can be
/// arbitrarily large across thousands of lanes); their digests are.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSimOutcome {
    /// Per-lane simulation results, in lane order. Errors are rendered
    /// (they round-trip through the artifact store).
    pub lanes: Vec<Result<SimStats, String>>,
    /// FNV-1a digest of each lane's final memory image (partial images
    /// for failed lanes, exactly as the simulator left them).
    pub mem_digests: Vec<u64>,
    /// Sum of executed cycles over all successful lanes.
    pub agg_cycles: u64,
    /// Wall-clock decode time (cache-hit caveat as `RunOutcome` times).
    pub decode_time: Duration,
    /// Wall-clock batched-simulation time (same caveat).
    pub sim_time: Duration,
}

impl BatchSimOutcome {
    /// Number of lanes that retired successfully.
    pub fn ok_lanes(&self) -> usize {
        self.lanes.iter().filter(|r| r.is_ok()).count()
    }

    /// Aggregate simulated cycles per wall-clock second of the batched
    /// run (the sweep throughput the bench gates on), or `None` for a
    /// zero-duration measurement.
    pub fn agg_cycles_per_sec(&self) -> Option<f64> {
        let secs = self.sim_time.as_secs_f64();
        (secs > 0.0).then(|| self.agg_cycles as f64 / secs)
    }

    /// Hash of every deterministic field (everything except wall-clock
    /// noise), for determinism tests.
    pub fn content_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.feed_usize(self.lanes.len());
        for lane in &self.lanes {
            match lane {
                Ok(s) => {
                    h.feed_u64(1);
                    h.feed_u64(s.cycles);
                    h.feed_u64(s.stall_cycles);
                    h.feed_usize(s.block_execs.len());
                    for &n in &s.block_execs {
                        h.feed_u64(n);
                    }
                    for t in &s.tiles {
                        for v in [
                            t.active_cycles,
                            t.idle_cycles,
                            t.cm_fetches,
                            t.alu_ops,
                            t.moves,
                            t.loads,
                            t.stores,
                            t.rf_reads,
                            t.neighbor_reads,
                            t.crf_reads,
                            t.rf_writes,
                        ] {
                            h.feed_u64(v);
                        }
                    }
                }
                Err(e) => {
                    h.feed_u64(0);
                    h.feed_str(e);
                }
            }
        }
        for &d in &self.mem_digests {
            h.feed_u64(d);
        }
        h.feed_u64(self.agg_cycles);
        h.finish()
    }
}

/// What a batch-sim job evaluates to: a sweep outcome, or the compile
/// pipeline's failure (a lane-level simulation error is *data*, carried
/// inside the outcome, not a job failure).
pub type BatchSimResult = Result<BatchSimOutcome, RunFailure>;

/// Digest of one final memory image (FNV-1a over length and words).
fn mem_digest(mem: &[i32]) -> u64 {
    let mut h = Fnv64::new();
    h.feed_usize(mem.len());
    for &w in mem {
        h.feed_u64(w as u32 as u64);
    }
    h.finish()
}

/// Decodes the compiled binary and sweeps the lane images through the
/// batched simulator. Pure over `(outcome.binary, images, sim options)`.
pub fn execute_batch_sim(
    req: &BatchSimRequest<'_>,
    compiled: &RunOutcome,
    images: Vec<Vec<i32>>,
) -> BatchSimOutcome {
    let t0 = Instant::now();
    let decoded = DecodedProgram::decode(&compiled.binary, req.config)
        .expect("a binary that simulated solo decodes");
    let decode_time = t0.elapsed();
    cmam_obs::histogram!("phase.decode_us").record(decode_time.as_micros() as u64);
    let mut lanes: Vec<LaneState> = images.into_iter().map(LaneState::new).collect();
    let t1 = Instant::now();
    let results: Vec<Result<SimStats, SimError>> = decoded.simulate_batch(&mut lanes, req.sim);
    let sim_time = t1.elapsed();
    cmam_obs::histogram!("phase.batch_sim_us").record(sim_time.as_micros() as u64);
    let mem_digests: Vec<u64> = lanes.iter().map(|l| mem_digest(&l.mem)).collect();
    let agg_cycles = results
        .iter()
        .filter_map(|r| r.as_ref().ok().map(|s| s.cycles))
        .sum();
    BatchSimOutcome {
        lanes: results
            .into_iter()
            .map(|r| r.map_err(|e| e.to_string()))
            .collect(),
        mem_digests,
        agg_cycles,
        decode_time,
        sim_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_separate_input_sets_and_job_kinds() {
        let spec = cmam_kernels::dc::spec();
        let config = CgraConfig::hom64();
        let a = BatchSimRequest::flow(&spec, FlowVariant::Basic, &config, 1, 8);
        let b = BatchSimRequest::flow(&spec, FlowVariant::Basic, &config, 1, 8);
        assert_eq!(a.key(), b.key());
        let more_lanes = BatchSimRequest::flow(&spec, FlowVariant::Basic, &config, 1, 9);
        let other_seed = BatchSimRequest::flow(&spec, FlowVariant::Basic, &config, 2, 8);
        assert_ne!(a.key(), more_lanes.key());
        assert_ne!(a.key(), other_seed.key());
        // The batch-sim key space never collides with the compile key
        // space for the same inputs.
        assert_ne!(a.key(), a.compile_request().key());
        // The key covers image *contents*: same request, doctored images.
        let mut images = a.images();
        images[0][0] ^= 1;
        assert_ne!(a.key(), a.key_for(&images));
    }
}
