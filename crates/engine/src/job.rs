//! Job descriptions and the map→assemble→simulate→check pipeline.

use crate::fingerprint::{Fingerprint, Fnv64};
use cmam_arch::CgraConfig;
use cmam_core::{FlowVariant, Mapper, MapperOptions};
use cmam_isa::{AsmReport, CgraBinary};
use cmam_kernels::KernelSpec;
use cmam_sim::{simulate, SimOptions, SimStats};
use std::time::{Duration, Instant};

/// Everything measured for one (kernel, options, configuration) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Executed cycles (including stalls).
    pub cycles: u64,
    /// Simulator activity counters.
    pub sim: SimStats,
    /// Context-word accounting.
    pub report: AsmReport,
    /// The assembled binary.
    pub binary: CgraBinary,
    /// Wall-clock mapping time. For a cache hit this is the time measured
    /// when the artifact was first produced, not the (near-zero) lookup
    /// time — so compile-time experiments stay reproducible across runs.
    pub compile_time: Duration,
    /// Wall-clock assembly time (same cache-hit caveat as
    /// [`RunOutcome::compile_time`]).
    pub assemble_time: Duration,
    /// Wall-clock simulation time (same cache-hit caveat as
    /// [`RunOutcome::compile_time`]).
    pub sim_time: Duration,
    /// Mapper search statistics.
    pub map_stats: cmam_core::MapStats,
}

impl RunOutcome {
    /// Hash of every deterministic field (everything except the
    /// wall-clock noise of [`RunOutcome::compile_time`],
    /// [`RunOutcome::assemble_time`] and [`RunOutcome::sim_time`]). Two runs
    /// of the same job must agree on this digest regardless of thread
    /// count or cache state — the determinism tests assert exactly that.
    pub fn content_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.feed_u64(self.cycles);
        h.feed_u64(self.sim.cycles);
        h.feed_u64(self.sim.stall_cycles);
        // Dense per-block counts: iteration order is the block order.
        h.feed_usize(self.sim.block_execs.len());
        for &n in &self.sim.block_execs {
            h.feed_u64(n);
        }
        for t in &self.sim.tiles {
            for v in [
                t.active_cycles,
                t.idle_cycles,
                t.cm_fetches,
                t.alu_ops,
                t.moves,
                t.loads,
                t.stores,
                t.rf_reads,
                t.neighbor_reads,
                t.crf_reads,
                t.rf_writes,
            ] {
                h.feed_u64(v);
            }
        }
        for &(o, m, p) in &self.report.per_tile {
            h.feed_usize(o);
            h.feed_usize(m);
            h.feed_usize(p);
        }
        h.feed_str(&format!("{}", self.binary));
        h.feed_str(&cmam_isa::listing::context_listing(&self.binary));
        for s in [
            self.map_stats.candidates,
            self.map_stats.attempts,
            self.map_stats.acmap_pruned,
            self.map_stats.ecmap_pruned,
            self.map_stats.stochastic_pruned,
            self.map_stats.finalize_failures,
            self.map_stats.escalations,
            self.map_stats.peak_population,
            self.map_stats.rollbacks,
        ] {
            h.feed_u64(s);
        }
        h.finish()
    }
}

/// Which pipeline stage a failed run died in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailStage {
    /// The mapper found no solution under the given constraints.
    Map,
    /// The mapping violated a constraint at assembly (only possible for
    /// memory-unaware flows on constrained configurations).
    Assemble,
    /// Simulation failed or produced wrong results (always a bug).
    Execution,
    /// The job panicked on every attempt of its retry budget and was
    /// quarantined — the batch completed without it. Panic outcomes are
    /// never persisted to the disk cache (a later run retries fresh).
    Panic,
}

/// Why a run produced no data point (the "zero bars" of Figs 6-8).
///
/// The failure is carried as a stage tag plus the rendered error message
/// so it round-trips through the on-disk artifact cache; experiment
/// binaries only ever display it. The recovery fields say how the
/// engine handled it: pipeline failures (`Map`/`Assemble`/`Execution`)
/// are deterministic verdicts reached on the first attempt, while
/// `Panic` failures record the exhausted retry budget.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The stage that failed.
    pub stage: FailStage,
    /// The stage error, rendered.
    pub message: String,
    /// Wall-clock time spent in the mapper before the failure (compile
    /// time is consumed whether or not a mapping is found — Fig 9 counts
    /// failed searches too).
    pub compile_time: Duration,
    /// Whether retrying this job could plausibly succeed. Pipeline
    /// verdicts are deterministic (`false`); a panic may be environmental
    /// (`true`) — the engine has already spent the in-process retry
    /// budget, but a fresh run may still recover it.
    pub retriable: bool,
    /// How many attempts the engine made before settling on this failure.
    pub attempts: u32,
}

/// Former name of [`JobFailure`], kept so downstream callers compile.
pub type RunFailure = JobFailure;

impl JobFailure {
    /// A deterministic pipeline failure: first attempt, not retriable.
    pub fn pipeline(stage: FailStage, message: String, compile_time: Duration) -> Self {
        JobFailure {
            stage,
            message,
            compile_time,
            retriable: false,
            attempts: 1,
        }
    }

    /// A quarantined panic: the job died on all `attempts` attempts.
    pub fn panicked(message: String, attempts: u32) -> Self {
        JobFailure {
            stage: FailStage::Panic,
            message,
            compile_time: Duration::ZERO,
            retriable: true,
            attempts,
        }
    }
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.stage {
            FailStage::Map => write!(f, "no mapping: {}", self.message),
            FailStage::Assemble => write!(f, "does not fit: {}", self.message),
            FailStage::Execution => write!(f, "execution failure: {}", self.message),
            FailStage::Panic => write!(f, "job panicked: {}", self.message),
        }
    }
}

impl std::error::Error for JobFailure {}

/// What a job evaluates to: a full outcome or a displayable failure.
pub type JobResult = Result<RunOutcome, JobFailure>;

/// The canonical smoke matrix: per kernel, the basic flow on HOM64 plus
/// the full context-aware flow on HET1 and HET2. The `smoke`,
/// `fig10_speedup` and `tab2_energy` binaries all evaluate exactly these
/// combinations, CI diffs two consecutive `smoke` runs over them, and the
/// engine's determinism tests assert over them — one list, one place.
pub fn smoke_matrix() -> Vec<(FlowVariant, CgraConfig)> {
    vec![
        (FlowVariant::Basic, CgraConfig::hom64()),
        (FlowVariant::Cab, CgraConfig::het1()),
        (FlowVariant::Cab, CgraConfig::het2()),
    ]
}

/// One batch-compilation job: a kernel, a target configuration and the
/// full mapper option set. The kernel and configuration are borrowed
/// (they are shared across many jobs in a sweep); the options are owned
/// because they are usually derived per-job from a [`FlowVariant`].
#[derive(Debug, Clone)]
pub struct JobRequest<'a> {
    /// The kernel to compile and simulate.
    pub spec: &'a KernelSpec,
    /// The target CGRA instance.
    pub config: &'a CgraConfig,
    /// All mapper knobs (a [`FlowVariant`] resolves to these).
    pub options: MapperOptions,
}

impl<'a> JobRequest<'a> {
    /// A job for one of the paper's cumulative flow variants.
    ///
    /// The variant is fully captured by its [`FlowVariant::options`] set,
    /// so two requests whose variants resolve to the same options are the
    /// same job — exactly the dedup the engine wants.
    pub fn flow(spec: &'a KernelSpec, variant: FlowVariant, config: &'a CgraConfig) -> Self {
        JobRequest {
            spec,
            config,
            options: variant.options(),
        }
    }

    /// The content hash keying this job in the cache.
    pub fn key(&self) -> u64 {
        let mut h = Fnv64::new();
        self.spec.fingerprint(&mut h);
        self.config.fingerprint(&mut h);
        self.options.fingerprint(&mut h);
        h.finish()
    }

    /// A short human-readable label (for logs and engine stats).
    pub fn label(&self) -> String {
        format!("{}@{}", self.spec.name, self.config.name())
    }
}

/// Maps, assembles, simulates and checks one job. This is the pure part
/// of the pipeline: for fixed inputs the result is bit-identical no matter
/// which thread runs it (the mapper's stochastic pruning is seeded from
/// [`MapperOptions::seed`]), which is what makes parallel execution and
/// content-addressed memoisation sound.
pub fn execute(req: &JobRequest<'_>) -> JobResult {
    let _span = cmam_obs::span!("job");
    let mapper = Mapper::new(req.options.clone());
    let t0 = Instant::now();
    let map_result = mapper.map(&req.spec.cdfg, req.config);
    let compile_time = t0.elapsed();
    // Per-phase latency histograms, fed from the wall times this function
    // already measures (so tracing on/off changes nothing here).
    cmam_obs::histogram!("phase.map_us").record(compile_time.as_micros() as u64);
    let fail = |stage, message: String| JobFailure::pipeline(stage, message, compile_time);
    let result = match map_result {
        Ok(r) => r,
        Err(e) => return Err(fail(FailStage::Map, e.to_string())),
    };
    let t1 = Instant::now();
    let (binary, report) = cmam_isa::assemble(&req.spec.cdfg, &result.mapping, req.config)
        .map_err(|e| fail(FailStage::Assemble, e.to_string()))?;
    let assemble_time = t1.elapsed();
    cmam_obs::histogram!("phase.assemble_us").record(assemble_time.as_micros() as u64);
    let mut mem = req.spec.mem.clone();
    let t2 = Instant::now();
    let sim = simulate(&binary, req.config, &mut mem, SimOptions::default())
        .map_err(|e| fail(FailStage::Execution, e.to_string()))?;
    let sim_time = t2.elapsed();
    cmam_obs::histogram!("phase.sim_us").record(sim_time.as_micros() as u64);
    req.spec.check(&mem).map_err(|(i, got, want)| {
        fail(
            FailStage::Execution,
            format!("mem[{i}] = {got}, want {want}"),
        )
    })?;
    Ok(RunOutcome {
        cycles: sim.cycles,
        sim,
        report,
        binary,
        compile_time,
        assemble_time,
        sim_time,
        map_stats: result.stats,
    })
}

/// In-process retry budget for panicking jobs: the first attempt plus
/// three retries. Transient injected faults clear within this bound by
/// construction ([`cmam_fault::TRANSIENT_CLEARS_BY`]); a job that dies on
/// every attempt is quarantined as a [`FailStage::Panic`] failure.
pub const MAX_JOB_ATTEMPTS: u32 = 4;

/// Runs [`execute`] with panic isolation, bounded retry + backoff, and
/// quarantine: a panicking attempt is caught, counted and retried up to
/// [`MAX_JOB_ATTEMPTS`] times with a small exponential backoff; a job
/// that panics on every attempt settles as a structured
/// [`FailStage::Panic`] failure instead of unwinding the batch. Returns
/// the result plus the number of attempts consumed.
///
/// `key` is the job's content hash; it salts the `job.panic` /
/// `job.delay` fault sites so chaos schedules are stable per job, not
/// per batch position.
pub fn execute_with_recovery(req: &JobRequest<'_>, key: u64) -> (JobResult, u32) {
    let mut attempt: u32 = 0;
    loop {
        attempt += 1;
        cmam_fault::delay("job.delay", key.wrapping_add(u64::from(attempt)));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cmam_fault::panic_if("job.panic", key, attempt);
            execute(req)
        }));
        match outcome {
            Ok(result) => return (result, attempt),
            Err(payload) => {
                let message = cmam_pool::panic_message(payload.as_ref());
                cmam_obs::counter!("engine.job_panics").add(1);
                if attempt >= MAX_JOB_ATTEMPTS {
                    return (Err(JobFailure::panicked(message, attempt)), attempt);
                }
                cmam_obs::warn!(
                    "job {key:#018x} panicked on attempt {attempt}/{MAX_JOB_ATTEMPTS}: \
                     {message}; retrying"
                );
                // Tiny exponential backoff: enough for transient resource
                // pressure to clear, negligible against a job's runtime.
                std::thread::sleep(Duration::from_micros(100 << attempt));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_display_matches_legacy_wording() {
        let f = JobFailure::pipeline(FailStage::Map, "x".into(), Duration::ZERO);
        assert_eq!(f.to_string(), "no mapping: x");
        let f = JobFailure::pipeline(FailStage::Assemble, "y".into(), Duration::ZERO);
        assert_eq!(f.to_string(), "does not fit: y");
        let f = JobFailure::panicked("z".into(), 4);
        assert_eq!(f.to_string(), "job panicked: z");
        assert!(f.retriable, "a panic may be environmental");
        assert_eq!(f.attempts, 4);
    }

    #[test]
    fn identical_requests_share_a_key_and_distinct_ones_do_not() {
        let spec = cmam_kernels::fir::spec();
        let hom64 = CgraConfig::hom64();
        let het1 = CgraConfig::het1();
        let basic = FlowVariant::Basic.options();
        let cab = FlowVariant::Cab.options();
        let a = JobRequest {
            spec: &spec,
            config: &hom64,
            options: basic.clone(),
        };
        let b = JobRequest {
            spec: &spec,
            config: &hom64,
            options: basic.clone(),
        };
        assert_eq!(a.key(), b.key());
        let c = JobRequest {
            spec: &spec,
            config: &het1,
            options: basic,
        };
        let d = JobRequest {
            spec: &spec,
            config: &hom64,
            options: cab,
        };
        assert_ne!(a.key(), c.key());
        assert_ne!(a.key(), d.key());
    }
}
