//! Computes a toolchain source fingerprint at build time.
//!
//! The artifact cache keys jobs by a content hash of their *inputs*
//! (CDFG, configuration, mapper options) — but an outcome also depends on
//! the *code* of the mapper/assembler/simulator that produced it. This
//! script hashes every toolchain source file the engine links against and
//! exposes the result as `CMAM_TOOLCHAIN_HASH`, which is folded into every
//! job key: rebuilding after a source edit silently invalidates the whole
//! cache (stale artifacts are never addressed again), while rebuilds
//! without source changes keep sharing it across all experiment binaries.

use std::fs;
use std::path::{Path, PathBuf};

// FNV-1a, same construction as the engine's runtime hasher (which this
// script cannot link against).
fn fnv(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn visit(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            visit(&path, files);
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
}

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("cargo sets this"));
    let crates = manifest.parent().expect("engine lives under crates/");
    // Every crate whose code influences a job outcome, plus the engine
    // itself (serialization format changes must also invalidate).
    let mut files = Vec::new();
    for dep in ["arch", "cdfg", "kernels", "isa", "core", "sim", "engine"] {
        let src = crates.join(dep).join("src");
        println!("cargo:rerun-if-changed={}", src.display());
        visit(&src, &mut files);
    }
    // The vendored runtime stubs are part of the toolchain too: the
    // mapper's stochastic pruning runs on vendor/rand's PRNG and the
    // graph layers use vendor/petgraph, so editing either changes job
    // outcomes just as surely as editing the mapper. (proptest/criterion
    // are dev-only and do not influence outcomes.)
    let vendor = crates
        .parent()
        .expect("crates/ lives in the workspace root")
        .join("vendor");
    for dep in ["rand", "petgraph"] {
        let src = vendor.join(dep).join("src");
        println!("cargo:rerun-if-changed={}", src.display());
        visit(&src, &mut files);
    }
    files.sort();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for path in &files {
        h = fnv(h, path.to_string_lossy().as_bytes());
        h = fnv(h, &fs::read(path).unwrap_or_default());
    }
    println!("cargo:rustc-env=CMAM_TOOLCHAIN_HASH={h:016x}");
}
