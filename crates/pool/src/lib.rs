//! # cmam-pool — the shared persistent work-stealing thread pool
//!
//! One process-wide pool serves every parallel consumer of the toolchain:
//! the engine's batch compilation jobs (whole map→assemble→simulate
//! pipelines, milliseconds each) and the mapper's intra-search beam
//! expansion (per-partial candidate generation, tens of microseconds
//! each). Extracting the pool into its own crate lets `cmam_core` use it
//! without inverting the `engine → core` dependency edge.
//!
//! ## Execution model
//!
//! A call to [`ThreadPool::run_indexed`] is a fork-join over the index
//! range `0..n`: indices are claimed in **chunks** from a shared atomic
//! cursor (the stealing discipline — a worker that finishes its chunk
//! steals the next one), each claimed index runs `job(i)`, and the
//! results come back in index order. The *submitting* thread always
//! participates: it drains chunks like any worker and then waits for the
//! stragglers, so a batch completes even when every helper is busy with
//! other batches (including the nested case, where a pool worker running
//! an engine job submits the mapper's beam batches from inside that job).
//!
//! Workers are **persistent and lazily spawned**: the first batch that
//! wants `k` helpers spawns them, later batches reuse them, and the
//! threads idle on a condvar between batches. Compared to the previous
//! per-call `std::thread::scope` pool this removes thread creation and
//! teardown from every batch — which matters once batches arrive at the
//! mapper's per-operation rate rather than the engine's per-sweep rate.
//!
//! ## Determinism
//!
//! Results are returned in index order, so parallel execution is
//! observationally identical to sequential execution whenever the job
//! function itself is pure — the property the engine's determinism tests
//! and the mapper's golden-equivalence suite both pin down. With
//! `threads <= 1` (or fewer than two jobs) everything runs inline on the
//! calling thread without touching the pool at all: the degenerate case
//! the equivalence tests compare the parallel pool against.
//!
//! ## Panic isolation
//!
//! A panicking job never takes a sibling's result down with it:
//! [`ThreadPool::try_run_indexed`] captures each job's panic
//! individually and returns per-index `Result<T, JobPanic>`s, so a batch
//! always completes. [`ThreadPool::run_indexed`] is the re-panicking
//! wrapper (it resumes the lowest-index panic's original payload), and
//! every pool lock recovers from poisoning — a worker that dies
//! mid-batch can never wedge the pool for subsequent batches.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a mutex, recovering the guard if a panicking holder poisoned
/// it. Pool state is only ever mutated in small, panic-free critical
/// sections (slot writes, queue pushes/pops), so a poisoned lock means
/// "a *job* panicked", not "the state is torn" — recovery is sound.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One job's captured panic: the index that died, a best-effort message,
/// and the original payload so callers can re-raise it untouched.
pub struct JobPanic {
    index: usize,
    message: String,
    payload: Box<dyn std::any::Any + Send>,
}

impl JobPanic {
    /// The batch index whose job panicked.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Best-effort rendering of the panic message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The original panic payload, for [`std::panic::resume_unwind`].
    pub fn into_payload(self) -> Box<dyn std::any::Any + Send> {
        self.payload
    }
}

impl std::fmt::Debug for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPanic")
            .field("index", &self.index)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// format string yields `String`, a literal yields `&str`; anything else
/// is opaque).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Type-erased view of one submitted batch: workers only need to drain
/// chunks, not to know the job's input/output types.
trait Task: Send + Sync {
    fn drain(&self);
}

/// Mutable state of a batch, behind one mutex: the result slots and the
/// completion count the submitter waits on. A panicking job fills its
/// own slot with `Err(JobPanic)` — sibling results are untouched.
struct BatchState<T> {
    results: Vec<Option<Result<T, JobPanic>>>,
    completed: usize,
}

/// One fork-join batch over `0..n`.
struct Batch<T, F> {
    job: F,
    n: usize,
    /// Indices claimed per cursor bump. Small enough to balance uneven
    /// jobs across workers, large enough that the cursor is not contended.
    chunk: usize,
    cursor: AtomicUsize,
    state: Mutex<BatchState<T>>,
    done: Condvar,
}

impl<T: Send, F: Fn(usize) -> T + Send + Sync> Batch<T, F> {
    fn new(job: F, n: usize, chunk: usize) -> Self {
        Batch {
            job,
            n,
            chunk: chunk.max(1),
            cursor: AtomicUsize::new(0),
            state: Mutex::new(BatchState {
                results: (0..n).map(|_| None).collect(),
                completed: 0,
            }),
            done: Condvar::new(),
        }
    }

    /// Claims and runs chunks until the cursor is exhausted. Called by the
    /// submitter (`stolen = false`) and by any helper that picked this
    /// batch off the queue (`stolen = true`). Chunk counts are kept in a
    /// local and flushed to the metrics registry once per drain, so the
    /// claiming loop itself carries no instrumentation.
    fn drain_chunks(&self, stolen: bool) {
        let mut chunks = 0u64;
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                break;
            }
            chunks += 1;
            let end = (start + self.chunk).min(self.n);
            for i in start..end {
                // A panicking job must not take the whole (persistent)
                // worker down with it, and must still count as completed —
                // otherwise the submitter would wait forever. The panic is
                // captured into the job's own result slot.
                let entry = catch_unwind(AssertUnwindSafe(|| (self.job)(i))).map_err(|payload| {
                    cmam_obs::counter!("pool.job_panics").add(1);
                    JobPanic {
                        index: i,
                        message: panic_message(payload.as_ref()),
                        payload,
                    }
                });
                let mut st = lock_recover(&self.state);
                st.results[i] = Some(entry);
                st.completed += 1;
                if st.completed == self.n {
                    self.done.notify_all();
                }
            }
        }
        cmam_obs::counter!("pool.chunks").add(chunks);
        if stolen {
            cmam_obs::counter!("pool.chunks_stolen").add(chunks);
        }
    }

    /// Blocks until every index reported, then takes the result slots.
    #[allow(clippy::type_complexity)]
    fn wait(&self) -> Vec<Option<Result<T, JobPanic>>> {
        let mut st = lock_recover(&self.state);
        while st.completed < self.n {
            st = match self.done.wait(st) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        std::mem::take(&mut st.results)
    }
}

impl<T: Send, F: Fn(usize) -> T + Send + Sync> Task for Batch<T, F> {
    fn drain(&self) {
        self.drain_chunks(true);
    }
}

struct Inner {
    /// Pending batch handles. A batch is pushed once per helper invited;
    /// a worker that pops an already-exhausted batch returns immediately.
    queue: Mutex<VecDeque<Arc<dyn Task>>>,
    work_ready: Condvar,
    /// Workers spawned so far (they never exit).
    spawned: AtomicUsize,
}

/// A persistent pool of worker threads. Most callers want the process-wide
/// [`global`] instance; independent pools exist only so tests can exercise
/// spawning in isolation.
pub struct ThreadPool {
    inner: Arc<Inner>,
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::new()
    }
}

impl ThreadPool {
    /// A fresh pool with no workers; they are spawned on first demand.
    pub fn new() -> Self {
        ThreadPool {
            inner: Arc::new(Inner {
                queue: Mutex::new(VecDeque::new()),
                work_ready: Condvar::new(),
                spawned: AtomicUsize::new(0),
            }),
        }
    }

    /// Workers spawned so far (diagnostics/tests only).
    pub fn workers_spawned(&self) -> usize {
        self.inner.spawned.load(Ordering::Relaxed)
    }

    fn ensure_spawned(&self, want: usize) {
        let mut cur = self.inner.spawned.load(Ordering::Relaxed);
        while cur < want {
            match self.inner.spawned.compare_exchange(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let inner = Arc::clone(&self.inner);
                    std::thread::Builder::new()
                        .name(format!("cmam-pool-{cur}"))
                        .spawn(move || worker_loop(&inner, cur))
                        .expect("spawning a pool worker");
                    cur += 1;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Runs `job(i)` for every `i in 0..n` on up to `threads` threads
    /// (the calling thread plus `threads - 1` pool workers) and returns
    /// the results in index order.
    ///
    /// With `threads <= 1` or `n <= 1` everything runs inline on the
    /// calling thread. The `'static` bounds are what allow persistent
    /// workers without unsafe lifetime erasure: callers share state with
    /// the job through `Arc`s (and move owned work in and out through
    /// `Mutex<Option<_>>` slots), rather than borrowing the caller's
    /// stack.
    ///
    /// # Panics
    ///
    /// Resumes the lowest-index panicking job's unwind on the calling
    /// thread — the original payload, so its message survives; the
    /// worker that ran the job itself survives too. Callers that need
    /// sibling results despite a panic use [`ThreadPool::try_run_indexed`].
    pub fn run_indexed<T, F>(&self, n: usize, threads: usize, job: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        if threads <= 1 || n <= 1 {
            // Inline: a panic propagates natively, payload untouched.
            return (0..n).map(job).collect();
        }
        let mut out = Vec::with_capacity(n);
        let mut first_panic: Option<JobPanic> = None;
        for slot in self.try_run_indexed(n, threads, job) {
            match slot {
                Ok(v) => out.push(v),
                Err(p) => {
                    // Lowest index wins; later panics of the same batch
                    // are secondary casualties.
                    first_panic.get_or_insert(p);
                }
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p.into_payload());
        }
        out
    }

    /// Like [`ThreadPool::run_indexed`], but captures each job's panic
    /// individually: the batch always completes, and index `i` reports
    /// either `Ok(job(i))` or the [`JobPanic`] that killed it — one
    /// poisoned job of N leaves N−1 results intact.
    pub fn try_run_indexed<T, F>(
        &self,
        n: usize,
        threads: usize,
        job: F,
    ) -> Vec<Result<T, JobPanic>>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        if threads <= 1 || n <= 1 {
            return (0..n)
                .map(|i| {
                    catch_unwind(AssertUnwindSafe(|| job(i))).map_err(|payload| {
                        cmam_obs::counter!("pool.job_panics").add(1);
                        JobPanic {
                            index: i,
                            message: panic_message(payload.as_ref()),
                            payload,
                        }
                    })
                })
                .collect();
        }
        let helpers = (threads - 1).min(n - 1);
        self.ensure_spawned(helpers);
        // Four chunks per thread: enough slack for stealing to rebalance
        // uneven jobs, few enough cursor bumps to stay uncontended.
        let chunk = (n / (threads * 4)).max(1);
        let batch = Arc::new(Batch::new(job, n, chunk));
        {
            let mut q = lock_recover(&self.inner.queue);
            for _ in 0..helpers {
                q.push_back(Arc::clone(&batch) as Arc<dyn Task>);
            }
        }
        self.inner.work_ready.notify_all();
        cmam_obs::counter!("pool.batches").add(1);
        batch.drain_chunks(false);
        batch
            .wait()
            .into_iter()
            .map(|s| s.expect("every index reported a result"))
            .collect()
    }
}

fn worker_loop(inner: &Inner, worker_id: usize) {
    // Label this worker's trace track by its stable pool id, so traces
    // show `cmam-pool-N` lanes regardless of when tracing was enabled.
    cmam_obs::set_thread_label(&format!("cmam-pool-{worker_id}"));
    cmam_obs::gauge!("pool.workers_spawned").raise(worker_id as i64 + 1);
    loop {
        let task = {
            let mut q = lock_recover(&inner.queue);
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = match inner.work_ready.wait(q) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        task.drain();
    }
}

/// The process-wide pool every toolchain consumer shares. Sharing one
/// pool is what lets the engine's job-level parallelism and the mapper's
/// intra-search parallelism compose: both draw helpers from the same
/// worker set instead of oversubscribing the machine with private pools.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(ThreadPool::new)
}

/// Runs `job` over `0..n` on the [`global`] pool.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    global().run_indexed(n, threads, job)
}

/// Runs `job` over `0..n` on the [`global`] pool with per-job panic
/// capture (see [`ThreadPool::try_run_indexed`]).
pub fn try_run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<Result<T, JobPanic>>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    global().try_run_indexed(n, threads, job)
}

/// Available hardware parallelism (1 when it cannot be determined).
pub fn ncpu() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let pool = ThreadPool::new();
        for threads in [1, 2, 4, 7] {
            let out = pool.run_indexed(25, threads, |i| i * i);
            assert_eq!(out, (0..25).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let out = run_indexed(100, 4, move |i| {
            c.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 41), vec![41]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_indexed(3, 16, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn workers_persist_across_batches() {
        let pool = ThreadPool::new();
        let a = pool.run_indexed(8, 3, |i| i);
        let spawned = pool.workers_spawned();
        assert!(spawned >= 1 && spawned <= 2, "lazy spawn up to threads-1");
        let b = pool.run_indexed(8, 3, |i| i);
        assert_eq!(a, b);
        assert_eq!(
            pool.workers_spawned(),
            spawned,
            "the second batch reuses the first batch's workers"
        );
    }

    #[test]
    fn nested_batches_complete() {
        // An outer batch whose jobs each submit an inner batch on the same
        // (global) pool — the engine-job → mapper-beam nesting. Must not
        // deadlock even when every worker is busy with outer jobs.
        let out = run_indexed(4, 4, |i| {
            let inner = run_indexed(6, 4, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..4).map(|i| (0..6).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn owned_state_rides_through_slots() {
        // The mapper's pattern: move owned values into Mutex<Option<_>>
        // slots, mutate them inside jobs, take them back after the join.
        let slots: Arc<Vec<Mutex<Option<Vec<usize>>>>> =
            Arc::new((0..10).map(|i| Mutex::new(Some(vec![i]))).collect());
        let s = Arc::clone(&slots);
        run_indexed(10, 4, move |i| {
            let mut v = s[i].lock().unwrap().take().unwrap();
            v.push(i * 2);
            *s[i].lock().unwrap() = Some(v);
        });
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.lock().unwrap().take().unwrap(), vec![i, i * 2]);
        }
    }

    #[test]
    fn job_panic_is_reraised_and_the_pool_survives() {
        let pool = Arc::new(ThreadPool::new());
        let p = Arc::clone(&pool);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(move || {
            p.run_indexed(8, 2, |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        let payload = caught.expect_err("the panic must reach the submitter");
        // The *original* payload is resumed, so its message survives.
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .expect("panic payload is a message");
        assert!(msg.contains("boom"), "got {msg:?}");
        // The worker that ran the panicking job is still serving batches.
        let out = pool.run_indexed(8, 2, |i| i + 1);
        assert_eq!(out, (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn one_poisoned_job_leaves_the_other_results_intact() {
        let pool = ThreadPool::new();
        // Inline (threads=1) and parallel paths must isolate identically.
        for threads in [1, 2, 4, 8] {
            let out = pool.try_run_indexed(16, threads, |i| {
                assert!(i != 5, "boom at {i}");
                i * 3
            });
            assert_eq!(out.len(), 16);
            for (i, slot) in out.into_iter().enumerate() {
                if i == 5 {
                    let p = slot.expect_err("index 5 panicked");
                    assert_eq!(p.index(), 5);
                    assert!(p.message().contains("boom at 5"), "got {:?}", p.message());
                    assert!(p.to_string().contains("job 5 panicked"));
                    // The original payload survives for re-raising.
                    let payload = p.into_payload();
                    assert!(panic_message(payload.as_ref()).contains("boom at 5"));
                } else {
                    assert_eq!(slot.expect("sibling result intact"), i * 3);
                }
            }
        }
    }

    #[test]
    fn many_panics_still_complete_the_batch() {
        let out = try_run_indexed(32, 4, |i| {
            assert!(i % 3 != 0, "multiple of three");
            i
        });
        let (ok, err): (Vec<_>, Vec<_>) = out.iter().partition(|r| r.is_ok());
        assert_eq!(err.len(), 11, "every multiple of 3 in 0..32 panics");
        assert_eq!(ok.len(), 21);
        // And the pool still serves clean batches afterwards.
        assert_eq!(run_indexed(4, 4, |i| i), vec![0, 1, 2, 3]);
    }
}
