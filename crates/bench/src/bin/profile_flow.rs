//! Flow profiler: runs ONE (kernel, flow, config) job uncached with span
//! recording force-enabled, then prints a per-phase and per-block time
//! breakdown recovered from the recorded Chrome trace, and writes the
//! trace itself for `chrome://tracing` / Perfetto.
//!
//! This is the observability layer's own smoke test: the numbers printed
//! here are parsed back out of [`cmam_obs::chrome_trace_json`] through
//! [`cmam_obs::json`], so a run that prints a sensible table has also
//! proven the export/import round trip, and the written file is
//! validated with [`cmam_obs::validate_chrome_trace`] before the process
//! exits.
//!
//! ```text
//! profile_flow [--kernel conv] [--config het2] [--flow cab]
//!              [--trace-out profile_flow.trace.json] [--jobs N]
//!              [--batch-lanes N]
//! profile_flow --validate-trace FILE
//! ```
//!
//! * `--kernel N`   kernel name (default `conv`; one of the seven)
//! * `--config N`   `hom64 | hom32 | het1 | het2 | u4x4` (default `het2`)
//! * `--flow N`     `basic | weighted | acmap | ecmap | cab` (default `cab`)
//! * `--batch-lanes N`  lanes of the batched input sweep run after the
//!   solo job, so the trace also carries the `batch_sim` /
//!   `simulate_batch` phases (default 64; `0` skips the sweep)
//! * `--trace-out F`  where to write the trace (default
//!   `profile_flow.trace.json`; `-` skips the file)
//! * `--validate-trace F`  don't profile: parse and validate an existing
//!   trace file (schema + per-thread span nesting) and exit — the CI
//!   check behind `smoke --trace-out`.

use cmam_arch::CgraConfig;
use cmam_bench::{emit_table, sim_bench, JobRequest};
use cmam_core::FlowVariant;
use cmam_engine::{BatchSimRequest, Engine, EngineOptions};
use cmam_obs::json::{self, Value};
use std::collections::BTreeMap;

fn usage_error(msg: &str) -> ! {
    eprintln!("profile_flow: {msg}");
    eprintln!(
        "usage: profile_flow [--kernel NAME] [--config hom64|hom32|het1|het2|u4x4] \
         [--flow basic|weighted|acmap|ecmap|cab] [--trace-out FILE] [--jobs N] \
         [--batch-lanes N] | --validate-trace FILE"
    );
    std::process::exit(2);
}

fn parse_flow(name: &str) -> FlowVariant {
    match name.to_ascii_lowercase().as_str() {
        "basic" => FlowVariant::Basic,
        "weighted" => FlowVariant::Weighted,
        "acmap" => FlowVariant::Acmap,
        "ecmap" => FlowVariant::Ecmap,
        "cab" => FlowVariant::Cab,
        other => usage_error(&format!("unknown flow {other:?}")),
    }
}

fn parse_config(name: &str) -> CgraConfig {
    match name.to_ascii_lowercase().as_str() {
        "hom64" => CgraConfig::hom64(),
        "hom32" => CgraConfig::hom32(),
        "het1" => CgraConfig::het1(),
        "het2" => CgraConfig::het2(),
        "u4x4" => CgraConfig::unconstrained_4x4(),
        other => usage_error(&format!("unknown config {other:?}")),
    }
}

/// Validates a trace file from disk; the process exit code is the
/// verdict. Used by CI on the artifact `smoke --trace-out` wrote.
fn validate_file(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("profile_flow: reading {path}: {e}");
        std::process::exit(2);
    });
    match cmam_obs::validate_chrome_trace(&text) {
        Ok(n) => {
            println!("{path}: valid Chrome trace ({n} events)");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("profile_flow: {path}: INVALID trace: {e}");
            std::process::exit(1);
        }
    }
}

/// Per-span-name aggregate over the recorded trace.
#[derive(Default)]
struct PhaseAgg {
    count: u64,
    total_us: f64,
    max_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kernel = "conv".to_owned();
    let mut config_name = "het2".to_owned();
    let mut flow_name = "cab".to_owned();
    let mut trace_out = "profile_flow.trace.json".to_owned();
    let mut batch_lanes: usize = 64;
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| usage_error(&format!("{flag} expects a value")))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--kernel" => kernel = value(&args, &mut i, "--kernel"),
            "--config" => config_name = value(&args, &mut i, "--config"),
            "--flow" => flow_name = value(&args, &mut i, "--flow"),
            "--trace-out" => trace_out = value(&args, &mut i, "--trace-out"),
            "--batch-lanes" => {
                batch_lanes = value(&args, &mut i, "--batch-lanes")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--batch-lanes expects an integer"));
            }
            "--validate-trace" => {
                let path = value(&args, &mut i, "--validate-trace");
                validate_file(&path);
            }
            // Consumed by EngineOptions::from_args below.
            "--jobs" => i += 1,
            o if o.starts_with("--jobs=") => {}
            other => usage_error(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let specs = cmam_kernels::all();
    // Exact (case-insensitive) name, else a unique substring — `conv`
    // finds `Convolution`, `fir` stays exact-only against `FIR`.
    let wanted = kernel.to_ascii_lowercase();
    let matches: Vec<&cmam_kernels::KernelSpec> = specs
        .iter()
        .filter(|s| s.name.to_ascii_lowercase().contains(&wanted))
        .collect();
    let spec = matches
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(&kernel))
        .copied()
        .or(if matches.len() == 1 {
            Some(matches[0])
        } else {
            None
        })
        .unwrap_or_else(|| {
            let known: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
            usage_error(&format!(
                "unknown or ambiguous kernel {kernel:?} (known: {})",
                known.join(", ")
            ))
        });
    let config = parse_config(&config_name);
    let flow = parse_flow(&flow_name);

    // Record everything; an uncached private engine so the phases
    // actually run instead of answering from `target/cmam-cache/`.
    cmam_obs::enable_tracing();
    let engine = Engine::new(EngineOptions {
        cache_dir: None,
        ..EngineOptions::from_args()
    });
    let request = JobRequest::flow(spec, flow, &config);
    let outcome = engine.run_batch(std::slice::from_ref(&request));
    println!(
        "# profile_flow: {} / {} / {}\n",
        spec.name,
        config.name(),
        flow
    );
    match &outcome[0] {
        Ok(out) => println!(
            "result: OK — {} cycles, {} context words (max tile), {} moves, {} pnops\n",
            out.cycles,
            out.binary.max_context_words(),
            out.report.total_moves(),
            out.report.total_pnops(),
        ),
        Err(e) => println!("result: FAIL — {e}\n"),
    }

    // A batched input sweep of the same job, so the per-phase table
    // breaks down the batch path too (`batch_sim` wraps the job;
    // `simulate_batch` is the simulator's own span).
    if batch_lanes > 0 && outcome[0].is_ok() {
        let sweep = BatchSimRequest::flow(spec, flow, &config, sim_bench::BATCH_SEED, batch_lanes);
        let swept = engine.run_batch_sim(&sweep).expect("solo job compiled");
        println!(
            "batch sweep: {}/{} lanes ok, {} aggregate cycles{}\n",
            swept.ok_lanes(),
            batch_lanes,
            swept.agg_cycles,
            swept
                .agg_cycles_per_sec()
                .map(|r| format!(" ({:.1}M cycles/s)", r / 1e6))
                .unwrap_or_default(),
        );
    }

    // Everything below is read back out of the Chrome trace itself.
    let text = cmam_obs::chrome_trace_json();
    let doc = json::parse(&text).expect("own trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");

    let mut phases: BTreeMap<String, PhaseAgg> = BTreeMap::new();
    let mut blocks: Vec<(u64, u64, f64)> = Vec::new(); // (block, ops, µs)
    for ev in events {
        if ev.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("?");
        let dur = ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0);
        let agg = phases.entry(name.to_owned()).or_default();
        agg.count += 1;
        agg.total_us += dur;
        agg.max_us = agg.max_us.max(dur);
        if name == "map_block" {
            let arg = |k: &str| {
                ev.get("args")
                    .and_then(|a| a.get(k))
                    .and_then(Value::as_f64)
                    .unwrap_or(-1.0) as u64
            };
            blocks.push((arg("block"), arg("ops"), dur));
        }
    }

    // Phase table in pipeline order; anything unanticipated follows
    // alphabetically so new spans can't silently vanish from the report.
    const ORDER: [&str; 9] = [
        "run_batch",
        "job",
        "map",
        "map_block",
        "assemble",
        "decode",
        "simulate",
        "batch_sim",
        "simulate_batch",
    ];
    let mut names: Vec<&String> = phases.keys().collect();
    names.sort_by_key(|n| ORDER.iter().position(|o| o == n).unwrap_or(ORDER.len()));
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|n| {
            let p = &phases[*n];
            vec![
                (*n).clone(),
                p.count.to_string(),
                format!("{:.1}", p.total_us),
                format!("{:.1}", p.total_us / p.count as f64),
                format!("{:.1}", p.max_us),
            ]
        })
        .collect();
    println!("## per-phase (from recorded spans)\n");
    emit_table(&["span", "count", "total µs", "mean µs", "max µs"], &rows);

    if !blocks.is_empty() {
        blocks.sort_by_key(|&(block, _, _)| block);
        let rows: Vec<Vec<String>> = blocks
            .iter()
            .map(|&(block, ops, us)| {
                vec![
                    format!("bb{block}"),
                    ops.to_string(),
                    format!("{us:.1}"),
                    format!("{:.2}", us / ops.max(1) as f64),
                ]
            })
            .collect();
        println!("\n## per-block mapping cost\n");
        emit_table(&["block", "ops", "µs", "µs/op"], &rows);
    }

    // Mapper search-effort counters, straight from the metrics registry.
    println!("\n## mapper counters\n");
    let rows: Vec<Vec<String>> = cmam_obs::metrics::registry()
        .counter_snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with("mapper.") || name.starts_with("sim."))
        .map(|(name, v)| vec![name.to_owned(), v.to_string()])
        .collect();
    emit_table(&["counter", "value"], &rows);

    if trace_out != "-" {
        cmam_obs::write_chrome_trace(trace_out.as_ref())
            .unwrap_or_else(|e| panic!("writing {trace_out}: {e}"));
        let written = std::fs::read_to_string(&trace_out).expect("trace file readable");
        match cmam_obs::validate_chrome_trace(&written) {
            Ok(n) => eprintln!("profile_flow: wrote {trace_out} ({n} events, validated)"),
            Err(e) => {
                eprintln!("profile_flow: {trace_out} failed validation: {e}");
                std::process::exit(1);
            }
        }
    }
}
