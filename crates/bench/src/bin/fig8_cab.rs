//! Fig 8: latency with the full flow (basic + ACMAP + ECMAP + CAB).

fn main() {
    let _obs = cmam_bench::obs_session("fig8_cab");
    cmam_bench::latency_sweep(
        "Fig 8: latency, basic + ACMAP + ECMAP + CAB",
        cmam_core::FlowVariant::Cab,
    );
}
