//! Fig 8: latency with the full flow (basic + ACMAP + ECMAP + CAB).

fn main() {
    cmam_bench::latency_sweep(
        "Fig 8: latency, basic + ACMAP + ECMAP + CAB",
        cmam_core::FlowVariant::Cab,
    );
}
