//! The tracked mapper microbenchmark: times the raw `Mapper::map` hot
//! loop — uncached, one job at a time, like `fig9_compile_time` — over
//! every kernel and writes `BENCH_mapper.json` (see
//! [`cmam_bench::mapper_bench`] for the schema).
//!
//! By default the benchmark runs **twice**: once with `--threads 1` (the
//! sequential hot loop every earlier baseline measured) and once with
//! all hardware threads (the beam-parallel mapper), so the tracked JSON
//! pins both raw speed and parallel scaling. On a single-core host the
//! parallel row still runs with 2 threads — it then measures the
//! parallelism overhead rather than a speedup, which is exactly what a
//! tracked benchmark should expose.
//!
//! Flags: `--quick` (1 iteration instead of 5, the CI setting),
//! `--iters N` (explicit iteration count), `--threads N` (measure only
//! one run, at N mapper threads), `--out PATH` (where to write the JSON;
//! default `BENCH_mapper.json` in the current directory),
//! `--generated N [--seed S] [--profile P]` (append N generated kernels
//! to the measured set — workloads the mapper was never tuned on), and
//! `--check BASELINE [--min-ratio R]` — the CI observability-overhead
//! gate: after writing the JSON, compare this run's sequential
//! throughput against the committed baseline and exit nonzero when it
//! fell below `R` (default 0.5) of the baseline. A `--check` run also
//! applies the fault-layer overhead gate (`--fault-min-ratio R`,
//! default 0.995): the engine's fault-site checks, measured within this
//! very run with no plan installed, must cost less than `1 - R` of a
//! job's wall time.

use cmam_bench::{mapper_bench, GenCli};

/// The default parallel row: every hardware thread, but at least 2 so
/// the beam-parallel code path is always exercised and tracked.
fn parallel_threads() -> usize {
    cmam_pool::ncpu().max(2)
}

fn main() {
    let _obs = cmam_bench::obs_session("bench_mapper");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iterations: u32 = 5;
    let mut out = "BENCH_mapper.json".to_owned();
    let mut threads: Option<usize> = None;
    let mut check: Option<String> = None;
    let mut min_ratio = 0.5f64;
    let mut fault_min_ratio = 0.995f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => iterations = 1,
            "--iters" => {
                i += 1;
                iterations = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--threads" => {
                i += 1;
                threads = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .expect("--threads needs a positive integer"),
                );
            }
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--check" => {
                i += 1;
                check = Some(args.get(i).expect("--check needs a baseline path").clone());
            }
            "--min-ratio" => {
                i += 1;
                min_ratio = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|r: &f64| r.is_finite() && *r > 0.0)
                    .expect("--min-ratio needs a positive number");
            }
            "--fault-min-ratio" => {
                i += 1;
                fault_min_ratio = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|r: &f64| r.is_finite() && *r > 0.0)
                    .expect("--fault-min-ratio needs a positive number");
            }
            // Parsed by GenCli below; skip their values here.
            "--generated" | "--seed" | "--profile" => i += 1,
            // Parsed by the obs session above; skip its value here.
            "--trace-out" => i += 1,
            "--metrics" => {}
            o if o.starts_with("--trace-out=") => {}
            other => {
                eprintln!(
                    "unknown flag {other} (known: --quick, --iters N, --threads N, --out PATH, \
                     --check BASELINE, --min-ratio R, --fault-min-ratio R, --generated N, \
                     --seed S, --profile P, --trace-out FILE, --metrics)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(iterations > 0, "--iters must be positive");
    let extra = GenCli::from_args().specs();

    let thread_counts: Vec<usize> = match threads {
        Some(n) => vec![n],
        None => vec![1, parallel_threads()],
    };

    let mut reports = Vec::new();
    for &t in &thread_counts {
        eprintln!(
            "bench_mapper: {iterations} iteration(s) per job, {t} mapper thread(s), uncached"
        );
        let report = mapper_bench::run(iterations, t, &extra);

        let mut rows = Vec::new();
        for j in &report.jobs {
            rows.push(vec![
                j.kernel.clone(),
                j.config.clone(),
                j.variant.clone(),
                if j.ok { "ok" } else { "FAIL" }.to_owned(),
                format!("{:.2}", j.wall_ms),
                format!("{:.0}", j.ops_per_sec),
                format!("{:.0}", j.candidates_per_sec),
                j.peak_population.to_string(),
                j.rollbacks.to_string(),
            ]);
        }
        println!("\n== threads = {t} ==");
        cmam_bench::emit_table(
            &[
                "Kernel",
                "Config",
                "Flow",
                "map",
                "ms/map",
                "ops/s",
                "cand/s",
                "peak pop",
                "rollbacks",
            ],
            &rows,
        );
        println!(
            "totals (threads={t}): {:.0} ops mapped/s, {:.0} candidates/s, {:.1} ms wall \
             (1 iteration of all jobs)",
            report.total_ops_per_sec(),
            report.total_candidates_per_sec(),
            report.total_wall_ms()
        );
        reports.push(report);
    }

    let json = mapper_bench::render_json(&reports);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading {baseline_path}: {e}"));
        match mapper_bench::check_against_baseline(&json, &baseline, min_ratio) {
            Ok(verdict) => eprintln!("bench_mapper: {verdict}"),
            Err(e) => {
                eprintln!("bench_mapper: regression gate FAILED: {e}");
                std::process::exit(1);
            }
        }
        // The fault-layer overhead gate rides along with --check: with no
        // plan installed, the engine's fault-site checks must cost less
        // than 0.5% of a job's wall time (measured within this run, so
        // cross-run machine noise cannot fake a pass or a fail).
        let sequential = reports
            .iter()
            .find(|r| r.threads == 1)
            .unwrap_or(&reports[0]);
        match mapper_bench::check_fault_overhead(sequential, fault_min_ratio) {
            Ok(verdict) => eprintln!("bench_mapper: {verdict}"),
            Err(e) => {
                eprintln!("bench_mapper: fault overhead gate FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
