//! The tracked mapper microbenchmark: times the raw `Mapper::map` hot
//! loop — sequential, uncached, like `fig9_compile_time` — over every
//! kernel and writes `BENCH_mapper.json` (see
//! [`cmam_bench::mapper_bench`] for the schema).
//!
//! Flags: `--quick` (1 iteration instead of 5, the CI setting),
//! `--iters N` (explicit iteration count), `--out PATH` (where to write
//! the JSON; default `BENCH_mapper.json` in the current directory).

use cmam_bench::mapper_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iterations: u32 = 5;
    let mut out = "BENCH_mapper.json".to_owned();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => iterations = 1,
            "--iters" => {
                i += 1;
                iterations = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            other => {
                eprintln!("unknown flag {other} (known: --quick, --iters N, --out PATH)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(iterations > 0, "--iters must be positive");

    eprintln!("bench_mapper: {iterations} iteration(s) per job, sequential, uncached");
    let report = mapper_bench::run(iterations);

    let mut rows = Vec::new();
    for j in &report.jobs {
        rows.push(vec![
            j.kernel.clone(),
            j.config.clone(),
            j.variant.clone(),
            if j.ok { "ok" } else { "FAIL" }.to_owned(),
            format!("{:.2}", j.wall_ms),
            format!("{:.0}", j.ops_per_sec),
            format!("{:.0}", j.candidates_per_sec),
            j.peak_population.to_string(),
            j.rollbacks.to_string(),
        ]);
    }
    cmam_bench::emit_table(
        &[
            "Kernel",
            "Config",
            "Flow",
            "map",
            "ms/map",
            "ops/s",
            "cand/s",
            "peak pop",
            "rollbacks",
        ],
        &rows,
    );
    println!(
        "\ntotals: {:.0} ops mapped/s, {:.0} candidates/s, {:.1} ms wall (1 iteration of all jobs)",
        report.total_ops_per_sec(),
        report.total_candidates_per_sec(),
        report.total_wall_ms()
    );

    let json = mapper_bench::render_json(&report);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
}
