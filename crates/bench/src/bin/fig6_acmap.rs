//! Fig 6: latency with basic + ACMAP on the constrained configurations.

fn main() {
    let _obs = cmam_bench::obs_session("fig6_acmap");
    cmam_bench::latency_sweep(
        "Fig 6: latency, basic + ACMAP",
        cmam_core::FlowVariant::Acmap,
    );
}
