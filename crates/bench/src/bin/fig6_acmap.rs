//! Fig 6: latency with basic + ACMAP on the constrained configurations.

fn main() {
    cmam_bench::latency_sweep(
        "Fig 6: latency, basic + ACMAP",
        cmam_core::FlowVariant::Acmap,
    );
}
