//! Ablation (beyond the paper): how the stochastic-pruning population cap
//! trades compilation time against mapping quality. The paper fixes the
//! pruning threshold; this sweep justifies the default (population 24) by
//! showing diminishing latency returns beyond it.

use cmam_arch::CgraConfig;
use cmam_bench::print_table;
use cmam_core::{FlowVariant, Mapper};
use std::time::Instant;

fn main() {
    println!("# Ablation: stochastic-pruning population cap (full flow, HET1)\n");
    let config = CgraConfig::het1();
    let specs = [cmam_kernels::fft::spec(), cmam_kernels::matm::spec()];
    let mut rows = Vec::new();
    for population in [4usize, 8, 16, 24, 48] {
        for spec in &specs {
            let mut options = FlowVariant::Cab.options();
            options.population = population;
            options.expansion = (population / 3).max(2);
            let mapper = Mapper::new(options);
            let t0 = Instant::now();
            match mapper.map(&spec.cdfg, &config) {
                Ok(r) => {
                    let elapsed = t0.elapsed();
                    let (_, report) =
                        cmam_isa::assemble(&spec.cdfg, &r.mapping, &config).expect("fits");
                    rows.push(vec![
                        population.to_string(),
                        spec.name.to_owned(),
                        r.mapping.total_length().to_string(),
                        report.total_moves().to_string(),
                        report.total_pnops().to_string(),
                        format!("{:.0} ms", elapsed.as_secs_f64() * 1e3),
                    ]);
                }
                Err(e) => rows.push(vec![
                    population.to_string(),
                    spec.name.to_owned(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("fail: {e}"),
                ]),
            }
        }
    }
    print_table(
        &[
            "Population",
            "Kernel",
            "Σ block len",
            "Moves",
            "Pnops",
            "Compile time",
        ],
        &rows,
    );
    println!("\n(larger populations explore more partial mappings: better schedules,");
    println!(" slower compiles; the default 24 sits at the knee)");
}
