//! Ablation (beyond the paper): how the stochastic-pruning population cap
//! trades compilation time against mapping quality. The paper fixes the
//! pruning threshold; this sweep justifies the default (population 24) by
//! showing diminishing latency returns beyond it.
//!
//! Each (population, kernel) point is an engine job with a custom
//! [`cmam_core::MapperOptions`] set — the content hash covers every knob.
//! The "Compile time" column is a wall-clock measurement, so this binary
//! uses a sequential, uncached engine (parallel workers would contend for
//! cores and a cache hit would report another run's timing); `--jobs` is
//! ignored here.

use cmam_arch::CgraConfig;
use cmam_bench::{emit_table, Engine, EngineOptions, JobRequest};
use cmam_core::FlowVariant;

fn main() {
    let _obs = cmam_bench::obs_session("ablation_population");
    println!("# Ablation: stochastic-pruning population cap (full flow, HET1)\n");
    let config = CgraConfig::het1();
    let specs = [cmam_kernels::fft::spec(), cmam_kernels::matm::spec()];
    let populations = [4usize, 8, 16, 24, 48];
    let mut requests = Vec::new();
    for &population in &populations {
        for spec in &specs {
            let mut options = FlowVariant::Cab.options();
            options.population = population;
            options.expansion = (population / 3).max(2);
            requests.push(JobRequest {
                spec,
                config: &config,
                options,
            });
        }
    }
    let engine = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: None,
        cache_bytes: None,
    });
    let results = engine.run_batch(&requests);
    let mut rows = Vec::new();
    for (req, result) in requests.iter().zip(&results) {
        match result {
            Ok(out) => {
                let total_len: usize = out.binary.block_lengths.iter().sum();
                rows.push(vec![
                    req.options.population.to_string(),
                    req.spec.name.to_owned(),
                    total_len.to_string(),
                    out.report.total_moves().to_string(),
                    out.report.total_pnops().to_string(),
                    format!("{:.0} ms", out.compile_time.as_secs_f64() * 1e3),
                ]);
            }
            Err(e) => rows.push(vec![
                req.options.population.to_string(),
                req.spec.name.to_owned(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("fail: {e}"),
            ]),
        }
    }
    emit_table(
        &[
            "Population",
            "Kernel",
            "Σ block len",
            "Moves",
            "Pnops",
            "Compile time",
        ],
        &rows,
    );
    println!("\n(larger populations explore more partial mappings: better schedules,");
    println!(" slower compiles; the default 24 sits at the knee)");
}
