//! The tracked simulator/assembler microbenchmark: times the decoded
//! fast-path simulator, the reference (pre-optimization) simulator and
//! the assembler — uncached, one job at a time — over every kernel and
//! writes `BENCH_sim.json` (see [`cmam_bench::sim_bench`] for the
//! schema).
//!
//! The reference simulator is re-measured on every run, so the tracked
//! `speedup` column always compares two numbers from the same machine
//! and build; the committed `BENCH_sim.baseline.json` pins the numbers
//! of the run that landed the decoded simulator.
//!
//! Flags: `--quick` (20 iterations instead of 100, the CI setting),
//! `--iters N` (explicit iteration count), `--out PATH` (where to write
//! the JSON; default `BENCH_sim.json` in the current directory),
//! `--generated N [--seed S] [--profile P]` (append N generated kernels
//! to the measured set), and `--check BASELINE [--min-ratio R]` (exit 1
//! unless the solo and batched throughput totals are both at least `R`
//! of the baseline document's; default ratio 0.5).

use cmam_bench::{sim_bench, GenCli};

fn main() {
    let _obs = cmam_bench::obs_session("bench_sim");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iterations: u32 = 100;
    let mut out = "BENCH_sim.json".to_owned();
    let mut check: Option<String> = None;
    let mut min_ratio: f64 = 0.5;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => iterations = 20,
            "--iters" => {
                i += 1;
                iterations = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a positive integer");
            }
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--check" => {
                i += 1;
                check = Some(args.get(i).expect("--check needs a baseline path").clone());
            }
            "--min-ratio" => {
                i += 1;
                min_ratio = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--min-ratio needs a number");
            }
            // Parsed by GenCli below; skip their values here.
            "--generated" | "--seed" | "--profile" => i += 1,
            // Parsed by the obs session above; skip its value here.
            "--trace-out" => i += 1,
            "--metrics" => {}
            o if o.starts_with("--trace-out=") => {}
            other => {
                eprintln!(
                    "unknown flag {other} (known: --quick, --iters N, --out PATH, \
                     --check BASELINE, --min-ratio R, --generated N, --seed S, \
                     --profile P, --trace-out FILE, --metrics)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(iterations > 0, "--iters must be positive");
    let extra = GenCli::from_args().specs();

    eprintln!("bench_sim: {iterations} iteration(s) per job, uncached");
    let report = sim_bench::run(iterations, &extra);

    let mut rows = Vec::new();
    for j in &report.jobs {
        rows.push(vec![
            j.kernel.clone(),
            j.config.clone(),
            j.variant.clone(),
            if j.ok { "ok" } else { "FAIL" }.to_owned(),
            j.sim_cycles.to_string(),
            format!("{:.0}", j.decoded_cycles_per_sec / 1e3),
            format!("{:.0}", j.reference_cycles_per_sec / 1e3),
            format!("{:.1}x", j.speedup),
            format!("{:.0}", j.asm_blocks_per_sec),
            format!("{:.0}", j.batch_agg_cycles_per_sec / 1e3),
            format!("{:.1}x", j.batch_speedup),
        ]);
    }
    cmam_bench::emit_table(
        &[
            "Kernel",
            "Config",
            "Flow",
            "run",
            "cycles",
            "kcyc/s fast",
            "kcyc/s ref",
            "speedup",
            "blocks/s asm",
            "kcyc/s batch",
            "batch x",
        ],
        &rows,
    );
    println!(
        "totals: {:.0} cycles/s decoded vs {:.0} cycles/s reference ({:.1}x), \
         {:.0} assembled blocks/s, {:.0} aggregate cycles/s batched x{} ({:.1}x solo)",
        report.total_decoded_cycles_per_sec(),
        report.total_reference_cycles_per_sec(),
        report.total_speedup(),
        report.total_asm_blocks_per_sec(),
        report.total_batch_agg_cycles_per_sec(),
        sim_bench::BATCH_LANES,
        report.total_batch_speedup()
    );

    let json = sim_bench::render_json(&report);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading {baseline_path}: {e}"));
        match sim_bench::check_against_baseline(&json, &baseline, min_ratio) {
            Ok(verdict) => eprintln!("bench_sim: {verdict}"),
            Err(e) => {
                eprintln!("bench_sim: regression gate FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
