//! Input-sweep experiment: many seeded inputs through one compiled
//! kernel via the batched simulator.
//!
//! For every paper kernel (plus any `--generated` extras) the sweep
//! compiles once through the engine, decodes once, regenerates `--lanes`
//! seeded input images (`input_image(seed, lane, ..)`, the same
//! generator the batch-sim job kind fingerprints) and runs them all
//! through [`cmam_sim::DecodedProgram::simulate_batch`], reporting the
//! aggregate throughput, the cohort/divergence shape of the run and the
//! per-lane energy spread — how much the workload's energy varies with
//! its input data.
//!
//! Flags: `--lanes N` (default 256), `--input-seed S` (input-set seed,
//! default the tracked bench seed), `--verify` (cross-check every lane's
//! final memory against the sequential CDFG interpreter and the batched
//! outcome against the engine's batch-sim job kind),
//! `--generated N [--seed S] [--profile P]` (widen the kernel mix).

use cmam_bench::{emit_table, engine, mul_fraction, sim_bench, GenCli};
use cmam_core::FlowVariant;
use cmam_energy::EnergyParams;
use cmam_engine::BatchSimRequest;
use cmam_sim::{DecodedProgram, LaneState};
use std::time::Instant;

/// Live `sim.batch.*` counter values (cohort shape of the runs so far).
fn batch_counters() -> (u64, u64, u64) {
    let snap = cmam_obs::metrics::registry().counter_snapshot();
    let get = |name: &str| {
        snap.iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    (
        get("sim.batch.cohorts"),
        get("sim.batch.cohort_lanes"),
        get("sim.batch.divergences"),
    )
}

fn main() {
    let _obs = cmam_bench::obs_session("input_sweep").with_metrics();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut lanes: usize = 256;
    let mut input_seed: u64 = sim_bench::BATCH_SEED;
    let mut verify = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--lanes" => {
                i += 1;
                lanes = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--lanes needs a positive integer");
            }
            "--input-seed" => {
                i += 1;
                input_seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--input-seed needs an integer");
            }
            "--verify" => verify = true,
            // Parsed by GenCli / the obs session; skip their values here.
            "--generated" | "--seed" | "--profile" | "--trace-out" => i += 1,
            "--metrics" => {}
            o if o.starts_with("--trace-out=") => {}
            other => {
                eprintln!(
                    "unknown flag {other} (known: --lanes N, --input-seed S, --verify, \
                     --generated N, --seed S, --profile P, --trace-out FILE, --metrics)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(lanes > 0, "--lanes must be positive");

    let mut specs = cmam_kernels::all();
    specs.extend(GenCli::from_args().specs());
    let config = cmam_arch::CgraConfig::hom64();
    let variant = FlowVariant::Basic;
    println!(
        "# Input sweep: {lanes} seeded inputs per kernel on {} ({variant}), input seed {input_seed:#x}\n",
        config.name()
    );

    let params = EnergyParams::default();
    let mut rows = Vec::new();
    let mut total_agg = 0u64;
    let mut total_secs = 0.0f64;
    let mut failures = 0usize;
    for spec in &specs {
        let req = BatchSimRequest::flow(spec, variant, &config, input_seed, lanes);
        let compiled = match engine().run_one(&req.compile_request()) {
            Ok(out) => out,
            Err(e) => {
                rows.push(vec![
                    spec.name.clone(),
                    "MAPFAIL".into(),
                    e.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                failures += 1;
                continue;
            }
        };
        let decoded = DecodedProgram::decode(&compiled.binary, &config).expect("binary decodes");
        let images = req.images();
        let mut lane_state: Vec<LaneState> =
            images.iter().map(|m| LaneState::new(m.clone())).collect();

        let before = batch_counters();
        let t0 = Instant::now();
        let results = decoded.simulate_batch(&mut lane_state, req.sim);
        let secs = t0.elapsed().as_secs_f64();
        let after = batch_counters();
        let cohorts = after.0 - before.0;
        let cohort_lanes = after.1 - before.1;
        let divergences = after.2 - before.2;

        let ok = results.iter().filter(|r| r.is_ok()).count();
        let agg: u64 = results
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|s| s.cycles))
            .sum();
        total_agg += agg;
        total_secs += secs;

        // Per-lane energy spread: how much the input data bends the
        // workload's energy (stalls, per-block trip counts).
        let frac = mul_fraction(&spec.cdfg);
        let energies: Vec<f64> = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|s| cmam_energy::cgra_energy(&params, &config, s, frac).total())
            .collect();
        let (emin, emax) = energies
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &e| {
                (lo.min(e), hi.max(e))
            });
        let emean = energies.iter().sum::<f64>() / energies.len().max(1) as f64;

        if verify {
            // Every lane's final memory must match the sequential CDFG
            // interpreter on the same input image — the batched engine
            // of the sweep proves out against the semantic reference.
            for (l, (result, image)) in results.iter().zip(&images).enumerate() {
                assert!(
                    result.is_ok(),
                    "{} lane {l} failed in hardware sim",
                    spec.name
                );
                let mut expected = image.clone();
                cmam_cdfg::interp::run(&spec.cdfg, &mut expected, 100_000_000)
                    .unwrap_or_else(|e| panic!("{} lane {l}: interpreter failed: {e}", spec.name));
                assert_eq!(
                    lane_state[l].mem, expected,
                    "{} lane {l}: batched memory diverges from the interpreter",
                    spec.name
                );
            }
            // And the engine's batch-sim job kind must agree with the
            // direct run, cached or not.
            let outcome = engine().run_batch_sim(&req).expect("compiles above");
            assert_eq!(
                outcome.agg_cycles, agg,
                "{}: engine batch-sim job disagrees with direct sweep",
                spec.name
            );
            assert_eq!(outcome.ok_lanes(), ok);
        }

        rows.push(vec![
            spec.name.clone(),
            "ok".into(),
            format!("{ok}/{lanes}"),
            agg.to_string(),
            format!("{:.1}", agg as f64 / secs / 1e6),
            format!(
                "{:.1}",
                if cohorts == 0 {
                    0.0
                } else {
                    cohort_lanes as f64 / cohorts as f64
                }
            ),
            divergences.to_string(),
            format!("{emin:.2}"),
            format!("{emean:.2}"),
            format!("{emax:.2}"),
        ]);
    }

    emit_table(
        &[
            "Kernel",
            "run",
            "lanes ok",
            "agg cycles",
            "Mcyc/s",
            "cohort sz",
            "diverge",
            "uJ min",
            "uJ mean",
            "uJ max",
        ],
        &rows,
    );
    println!(
        "\ntotals: {} aggregate cycles over {} kernel(s), {:.1}M aggregate cycles/s{}",
        total_agg,
        specs.len() - failures,
        if total_secs > 0.0 {
            total_agg as f64 / total_secs / 1e6
        } else {
            0.0
        },
        if verify {
            " (verified against the CDFG interpreter and the engine job kind)"
        } else {
            ""
        }
    );
    if failures > 0 {
        eprintln!("input_sweep: {failures} kernel(s) failed to map");
        std::process::exit(1);
    }
}
