//! Fig 9: compilation time of each cumulative flow step, averaged over
//! the kernels, normalised to the basic mapping. The paper reports an
//! average of 1.8x for the full flow (17 s -> 30 s absolute).
//!
//! Compile times come out of the engine's [`cmam_bench::RunOutcome`] /
//! [`cmam_bench::RunFailure`], which time the mapper search when the job
//! executes. Because this binary *measures wall-clock*, it uses its own
//! sequential, uncached engine: parallel workers would contend for cores
//! and inflate every measurement, and a cache hit would report another
//! run's timing. (`--jobs` is therefore ignored here.) Failed searches
//! still consume compile time and are counted, as in the paper's setup.

use cmam_arch::CgraConfig;
use cmam_bench::{emit_table, Engine, EngineOptions, JobRequest};
use cmam_core::FlowVariant;
use std::time::Duration;

fn time_variant(engine: &Engine, variant: FlowVariant, config: &CgraConfig) -> Duration {
    let specs = cmam_kernels::all();
    let requests: Vec<JobRequest> = specs
        .iter()
        .map(|s| JobRequest::flow(s, variant, config))
        .collect();
    let total: Duration = engine
        .run_batch(&requests)
        .iter()
        .map(|r| match r {
            Ok(out) => out.compile_time,
            // Timing covers the search whether or not it finds a solution
            // (failed searches still consume compile time).
            Err(f) => f.compile_time,
        })
        .sum();
    total / specs.len() as u32
}

fn main() {
    println!("# Fig 9: average compilation time per flow step\n");
    // A sequential, uncached engine: timing must be contention- and
    // memoisation-free.
    let engine = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: None,
    });
    // The aware variants compile for HET1 (a constrained target); the
    // basic flow compiles for HOM64, as in the paper's setup.
    let base = time_variant(&engine, FlowVariant::Basic, &CgraConfig::hom64());
    let mut rows = vec![vec![
        "basic".to_owned(),
        format!("{:.0} ms", base.as_secs_f64() * 1e3),
        "1.00".to_owned(),
    ]];
    for variant in [
        FlowVariant::Weighted,
        FlowVariant::Acmap,
        FlowVariant::Ecmap,
        FlowVariant::Cab,
    ] {
        let t = time_variant(&engine, variant, &CgraConfig::het1());
        rows.push(vec![
            variant.to_string(),
            format!("{:.0} ms", t.as_secs_f64() * 1e3),
            format!("{:.2}", t.as_secs_f64() / base.as_secs_f64()),
        ]);
    }
    emit_table(&["Flow", "avg time / kernel", "vs basic"], &rows);
    println!("\n(paper: full flow 1.8x the basic flow, 17 s -> 30 s absolute)");
}
