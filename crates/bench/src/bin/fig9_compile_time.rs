//! Fig 9: compilation time of each cumulative flow step, averaged over
//! the kernels, normalised to the basic mapping. The paper reports an
//! average of 1.8x for the full flow (17 s -> 30 s absolute).
//!
//! Compile times come out of the engine's [`cmam_bench::RunOutcome`] /
//! [`cmam_bench::RunFailure`], which time the mapper search when the job
//! executes. Because this binary *measures wall-clock*, it uses its own
//! sequential, uncached engine: parallel workers would contend for cores
//! and inflate every measurement, and a cache hit would report another
//! run's timing. (`--jobs` is therefore ignored here.) Failed searches
//! still consume compile time and are counted, as in the paper's setup.

use cmam_arch::CgraConfig;
use cmam_bench::{emit_table, Engine, EngineOptions, JobRequest};
use cmam_core::FlowVariant;
use std::time::Duration;

/// Averaged wall-clock per pipeline phase plus the timing-noise-free
/// search-effort counters (candidates generated, peak candidate pool,
/// rollbacks) over the kernel set.
struct Effort {
    time: Duration,
    assemble: Duration,
    simulate: Duration,
    candidates: u64,
    peak_population: u64,
    rollbacks: u64,
}

fn time_variant(engine: &Engine, variant: FlowVariant, config: &CgraConfig) -> Effort {
    let specs = cmam_kernels::all();
    let requests: Vec<JobRequest> = specs
        .iter()
        .map(|s| JobRequest::flow(s, variant, config))
        .collect();
    let mut effort = Effort {
        time: Duration::ZERO,
        assemble: Duration::ZERO,
        simulate: Duration::ZERO,
        candidates: 0,
        peak_population: 0,
        rollbacks: 0,
    };
    for r in engine.run_batch(&requests) {
        match r {
            Ok(out) => {
                effort.time += out.compile_time;
                effort.assemble += out.assemble_time;
                effort.simulate += out.sim_time;
                effort.candidates += out.map_stats.candidates;
                effort.peak_population = effort.peak_population.max(out.map_stats.peak_population);
                effort.rollbacks += out.map_stats.rollbacks;
            }
            // Timing covers the search whether or not it finds a solution
            // (failed searches still consume compile time).
            Err(f) => effort.time += f.compile_time,
        }
    }
    effort.time /= specs.len() as u32;
    effort.assemble /= specs.len() as u32;
    effort.simulate /= specs.len() as u32;
    effort
}

fn main() {
    let _obs = cmam_bench::obs_session("fig9_compile_time");
    println!("# Fig 9: average compilation time per flow step\n");
    // A sequential, uncached engine: timing must be contention- and
    // memoisation-free.
    let engine = Engine::new(EngineOptions {
        jobs: 1,
        cache_dir: None,
        cache_bytes: None,
    });
    // The aware variants compile for HET1 (a constrained target); the
    // basic flow compiles for HOM64, as in the paper's setup.
    let base = time_variant(&engine, FlowVariant::Basic, &CgraConfig::hom64());
    let row = |label: String, e: &Effort, base_secs: f64| {
        vec![
            label,
            format!("{:.0} ms", e.time.as_secs_f64() * 1e3),
            format!("{:.2}", e.time.as_secs_f64() / base_secs),
            format!("{:.2} ms", e.assemble.as_secs_f64() * 1e3),
            format!("{:.2} ms", e.simulate.as_secs_f64() * 1e3),
            e.candidates.to_string(),
            e.peak_population.to_string(),
            e.rollbacks.to_string(),
        ]
    };
    let base_secs = base.time.as_secs_f64();
    let mut rows = vec![row("basic".to_owned(), &base, base_secs)];
    for variant in [
        FlowVariant::Weighted,
        FlowVariant::Acmap,
        FlowVariant::Ecmap,
        FlowVariant::Cab,
    ] {
        let e = time_variant(&engine, variant, &CgraConfig::het1());
        rows.push(row(variant.to_string(), &e, base_secs));
    }
    // The per-phase columns (`asm`, `sim`) make a regression in any
    // pipeline stage visible, not just the mapper; the three rightmost
    // columns measure search effort in counters, not seconds — they
    // compare across machines and stay stable under load.
    emit_table(
        &[
            "Flow",
            "avg map / kernel",
            "vs basic",
            "asm",
            "sim",
            "candidates",
            "peak pop",
            "rollbacks",
        ],
        &rows,
    );
    println!("\n(paper: full flow 1.8x the basic flow, 17 s -> 30 s absolute)");
}
