//! Fig 9: compilation time of each cumulative flow step, averaged over
//! the kernels, normalised to the basic mapping. The paper reports an
//! average of 1.8x for the full flow (17 s -> 30 s absolute).

use cmam_arch::CgraConfig;
use cmam_bench::print_table;
use cmam_core::{FlowVariant, Mapper};
use std::time::{Duration, Instant};

fn time_variant(variant: FlowVariant, config: &CgraConfig) -> Duration {
    let mut total = Duration::ZERO;
    for spec in cmam_kernels::all() {
        let mapper = Mapper::new(variant.options());
        let t0 = Instant::now();
        // Timing covers the search whether or not it finds a solution
        // (failed searches still consume compile time).
        let _ = mapper.map(&spec.cdfg, config);
        total += t0.elapsed();
    }
    total / 7
}

fn main() {
    println!("# Fig 9: average compilation time per flow step\n");
    // The aware variants compile for HET1 (a constrained target); the
    // basic flow compiles for HOM64, as in the paper's setup.
    let base = time_variant(FlowVariant::Basic, &CgraConfig::hom64());
    let mut rows = vec![vec![
        "basic".to_owned(),
        format!("{:.0} ms", base.as_secs_f64() * 1e3),
        "1.00".to_owned(),
    ]];
    for variant in [
        FlowVariant::Weighted,
        FlowVariant::Acmap,
        FlowVariant::Ecmap,
        FlowVariant::Cab,
    ] {
        let t = time_variant(variant, &CgraConfig::het1());
        rows.push(vec![
            variant.to_string(),
            format!("{:.0} ms", t.as_secs_f64() * 1e3),
            format!("{:.2}", t.as_secs_f64() / base.as_secs_f64()),
        ]);
    }
    print_table(&["Flow", "avg time / kernel", "vs basic"], &rows);
    println!("\n(paper: full flow 1.8x the basic flow, 17 s -> 30 s absolute)");
}
