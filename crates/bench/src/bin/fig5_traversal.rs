//! Fig 5: pnop and move counts of the weighted CDFG traversal normalised
//! to the forward traversal (basic flow), on an unconstrained 4x4 CGRA.
//! The paper plots FFT; the trend holds for all kernels, so all seven are
//! reported with FFT highlighted.

use cmam_arch::CgraConfig;
use cmam_bench::{emit_table, engine, run_flow, JobRequest};
use cmam_core::FlowVariant;

fn main() {
    let _obs = cmam_bench::obs_session("fig5_traversal");
    println!("# Fig 5: weighted traversal vs forward traversal (pnops, moves)\n");
    let config = CgraConfig::unconstrained_4x4();
    // Warm the engine in one parallel batch; the per-row lookups below
    // are then memo hits, so the table renders in deterministic order.
    let specs = cmam_kernels::all();
    let requests: Vec<JobRequest> = specs
        .iter()
        .flat_map(|s| {
            [
                JobRequest::flow(s, FlowVariant::Basic, &config),
                JobRequest::flow(s, FlowVariant::Weighted, &config),
            ]
        })
        .collect();
    engine().run_batch(&requests);
    let mut rows = Vec::new();
    let mut sums = (0.0, 0.0, 0usize);
    for spec in &specs {
        let fwd = run_flow(&spec, FlowVariant::Basic, &config).expect("forward maps");
        let wgt = run_flow(&spec, FlowVariant::Weighted, &config).expect("weighted maps");
        let pn_f = fwd.report.total_pnops() as f64;
        let pn_w = wgt.report.total_pnops() as f64;
        let mv_f = fwd.report.total_moves().max(1) as f64;
        let mv_w = wgt.report.total_moves() as f64;
        let rp = pn_w / pn_f;
        let rm = mv_w / mv_f;
        sums.0 += rp;
        sums.1 += rm;
        sums.2 += 1;
        rows.push(vec![
            spec.name.to_owned(),
            format!("{:.0}", pn_f),
            format!("{:.0}", pn_w),
            format!("{:.2}", rp),
            format!("{:.0}", mv_f),
            format!("{:.0}", mv_w),
            format!("{:.2}", rm),
        ]);
    }
    emit_table(
        &[
            "Kernel",
            "pnops fwd",
            "pnops wgt",
            "pnop ratio",
            "moves fwd",
            "moves wgt",
            "move ratio",
        ],
        &rows,
    );
    println!(
        "\naverage ratios: pnops {:.2}, moves {:.2} (paper, FFT: pnops 0.76, moves 0.58)",
        sums.0 / sums.2 as f64,
        sums.1 / sums.2 as f64
    );
}
