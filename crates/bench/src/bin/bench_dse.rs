//! The tracked DSE benchmark: searches a generated provisioning-aware
//! configuration space, validates the frontier against an exhaustive
//! sweep of the legacy 24-configuration space, exercises kill/resume
//! over the artifact store, and writes `BENCH_dse.json` (see
//! [`cmam_bench::dse_bench`] for the schema and phases).
//!
//! Flags: `--space N` (generated-space size, default 1000 — the CI
//! setting and the scale the evaluations-budget headline is claimed
//! at), `--seed S` (generator seed, decimal or 0x-hex), `--quick` (a
//! 120-config smoke space for local runs; the per-shape completions
//! dominate a space that small, so don't pair it with `--check`),
//! `--jobs N` (engine workers), `--out PATH` (default
//! `BENCH_dse.json`), and `--check BASELINE [--min-ratio R]` — the CI
//! gate: exactness (frontier match, recall 1.0, evaluations budget,
//! resume without re-execution) is enforced unconditionally, and this
//! run's configs/s must reach `R` (default 0.5) of the baseline's.

use cmam_bench::dse_bench::{self, DseBenchParams};
use cmam_bench::gen::parse_u64;

fn main() {
    let _obs = cmam_bench::obs_session("bench_dse");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = DseBenchParams::default();
    let mut out = "BENCH_dse.json".to_owned();
    let mut check: Option<String> = None;
    let mut min_ratio = 0.5f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => params.space = 120,
            "--space" => {
                i += 1;
                params.space = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--space needs a positive integer");
            }
            "--seed" => {
                i += 1;
                params.seed = args
                    .get(i)
                    .map(|v| parse_u64(v).expect("--seed needs an integer"))
                    .expect("--seed needs a value");
            }
            "--jobs" => {
                i += 1;
                params.jobs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs an integer");
            }
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--check" => {
                i += 1;
                check = Some(args.get(i).expect("--check needs a baseline path").clone());
            }
            "--min-ratio" => {
                i += 1;
                min_ratio = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|r: &f64| r.is_finite() && *r > 0.0)
                    .expect("--min-ratio needs a positive number");
            }
            // Parsed by the obs session above; skip its value here.
            "--trace-out" => i += 1,
            "--metrics" => {}
            o if o.starts_with("--trace-out=") => {}
            other => {
                eprintln!(
                    "unknown flag {other} (known: --quick, --space N, --seed S, --jobs N, \
                     --out PATH, --check BASELINE, --min-ratio R, --trace-out FILE, --metrics)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "bench_dse: searching a {}-config space (seed {:#x})",
        params.space, params.seed
    );
    let report = dse_bench::run(&params);

    println!("# DSE search benchmark\n");
    cmam_bench::emit_table(
        &["Metric", "Value"],
        &[
            vec![
                "space (generated/target)".into(),
                format!("{}/{}", report.space_generated, report.space_target),
            ],
            vec!["kernels".into(), report.kernels.to_string()],
            vec![
                "search wall".into(),
                format!("{:.1} ms", report.search_wall_ms),
            ],
            vec!["configs/s".into(), format!("{:.1}", report.configs_per_sec)],
            vec!["jobs scheduled".into(), report.jobs_scheduled.to_string()],
            vec!["jobs executed".into(), report.executed.to_string()],
            vec![
                "evals vs exhaustive".into(),
                format!(
                    "{:.1}% (saved {:.1}%)",
                    report.evals_ratio * 100.0,
                    (1.0 - report.evals_ratio) * 100.0
                ),
            ],
            vec![
                "completed/dominated/raced/infeasible".into(),
                format!(
                    "{}/{}/{}/{}",
                    report.completed, report.dominated, report.raced, report.infeasible
                ),
            ],
            vec!["frontier size".into(), report.frontier_size.to_string()],
            vec![
                "validation recall".into(),
                format!(
                    "{:.3} ({})",
                    report.recall,
                    if report.frontier_match {
                        "exact match"
                    } else {
                        "MISMATCH"
                    }
                ),
            ],
            vec![
                "hypervolume (search/exhaustive)".into(),
                format!(
                    "{:.4}/{:.4}",
                    report.hypervolume_search, report.hypervolume_exhaustive
                ),
            ],
            vec![
                "cache hit ratio".into(),
                format!("{:.3}", report.cache_hit_ratio),
            ],
            vec![
                "resume".into(),
                format!(
                    "{} killed-run jobs, {} disk hits on restart ({})",
                    report.resume_killed_executed,
                    report.resume_disk_hits,
                    if report.resume_ok {
                        "ok"
                    } else {
                        "RE-EXECUTED"
                    }
                ),
            ],
        ],
    );

    let json = dse_bench::render_json(&report);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("reading {baseline_path}: {e}"));
        match dse_bench::check_against_baseline(&json, &baseline, min_ratio) {
            Ok(verdict) => eprintln!("bench_dse: {verdict}"),
            Err(e) => {
                eprintln!("bench_dse: regression gate FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
