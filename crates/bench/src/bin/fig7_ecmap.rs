//! Fig 7: latency with basic + ACMAP + ECMAP.

fn main() {
    cmam_bench::latency_sweep(
        "Fig 7: latency, basic + ACMAP + ECMAP",
        cmam_core::FlowVariant::Ecmap,
    );
}
