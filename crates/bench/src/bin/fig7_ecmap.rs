//! Fig 7: latency with basic + ACMAP + ECMAP.

fn main() {
    let _obs = cmam_bench::obs_session("fig7_ecmap");
    cmam_bench::latency_sweep(
        "Fig 7: latency, basic + ACMAP + ECMAP",
        cmam_core::FlowVariant::Ecmap,
    );
}
