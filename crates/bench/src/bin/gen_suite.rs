//! Cross-stack differential test harness over generated kernels.
//!
//! For each generated kernel × (flow, config) job the suite runs the whole
//! pipeline twice through independent implementations and demands
//! bit-for-bit agreement:
//!
//! * **mapper**: `threads = 1` vs `threads = 4` must produce the identical
//!   `(KernelMapping, MapStats)` — or the identical failure;
//! * **simulator**: the decoded fast path vs the reference executable
//!   spec, every `SimStats` counter and the final memory image;
//! * **semantics**: the simulated memory image must equal the CDFG
//!   reference interpreter's (the generated spec's `expected`).
//!
//! Any divergence prints a one-line repro command and the process exits
//! nonzero. Everything is derived from one root seed (default
//! [`cmam_bench::gen::DEFAULT_GEN_SEED`]), so a CI failure replays locally with the printed
//! command and nothing else.
//!
//! ```text
//! gen_suite [--count N] [--seed S] [--profile P|mixed]
//!           [--kernel-seed S] [--require N] [--digest] [--verbose]
//! ```
//!
//! * `--count N`      kernels to generate (default 60; ×4 jobs each)
//! * `--seed S`       root seed, decimal or 0x-hex (default 0xDA5_2019)
//! * `--profile P`    one profile for all kernels, or `mixed` (default)
//! * `--kernel-seed S`  run ONE kernel with exactly this generation seed
//!   (bypasses root-seed derivation — this is what repro lines use)
//! * `--require N`    fail unless ≥ N jobs were fully verified (CI guard)
//! * `--digest`       print per-kernel structural digests and exit — two
//!   processes' outputs diffing clean pins cross-process determinism
//! * `--verbose`      one line per job instead of one per kernel

use cmam_arch::CgraConfig;
use cmam_bench::gen::{parse_u64, GenCli};
use cmam_cdfg::generate::GenParams;
use cmam_core::{FlowVariant, Mapper, MapperOptions};
use cmam_isa::assemble;
use cmam_kernels::{generated_spec, kernel_seeds, KernelSpec};
use cmam_sim::{simulate_reference, DecodedProgram, SimOptions};
use std::process::ExitCode;

/// The per-kernel job matrix: the unconstrained baseline under both ends
/// of the flow spectrum, plus the full context-aware flow on the two
/// constrained Table-I configurations.
fn job_matrix() -> Vec<(FlowVariant, CgraConfig)> {
    vec![
        (FlowVariant::Basic, CgraConfig::hom64()),
        (FlowVariant::Cab, CgraConfig::hom64()),
        (FlowVariant::Cab, CgraConfig::het1()),
        (FlowVariant::Cab, CgraConfig::het2()),
    ]
}

struct Args {
    count: usize,
    seed: u64,
    profile: String,
    kernel_seed: Option<u64>,
    require: usize,
    digest: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let cli = GenCli::parse(std::env::args().skip(1))?;
    let mut args = Args {
        count: 60,
        seed: cli.seed,
        profile: cli.profile,
        kernel_seed: None,
        require: 0,
        digest: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--count" => {
                args.count = take("--count")?
                    .parse()
                    .map_err(|e| format!("--count: {e}"))?;
            }
            "--kernel-seed" => args.kernel_seed = Some(parse_u64(&take("--kernel-seed")?)?),
            "--require" => {
                args.require = take("--require")?
                    .parse()
                    .map_err(|e| format!("--require: {e}"))?;
            }
            "--digest" => args.digest = true,
            "--verbose" => args.verbose = true,
            _ => {}
        }
    }
    if args.kernel_seed.is_some() && args.profile == "mixed" {
        return Err("--kernel-seed needs an explicit --profile".to_owned());
    }
    Ok(args)
}

/// Plain (unsalted) FNV-1a over a kernel's full structure — name, graph
/// and memory image via their `Debug` forms, which cover every field.
/// Stable across processes; `--digest` outputs are diffed byte-for-byte.
fn kernel_digest(spec: &KernelSpec) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    feed(spec.name.as_bytes());
    feed(format!("{:?}", spec.cdfg).as_bytes());
    feed(format!("{:?}", spec.mem).as_bytes());
    feed(format!("{:?}", spec.expected).as_bytes());
    h
}

fn map_with_threads(
    variant: FlowVariant,
    threads: usize,
    spec: &KernelSpec,
    config: &CgraConfig,
) -> Result<(cmam_isa::KernelMapping, cmam_core::MapStats), String> {
    let mut options: MapperOptions = variant.options();
    options.threads = threads;
    Mapper::new(options)
        .map(&spec.cdfg, config)
        .map(|r| (r.mapping, r.stats))
        .map_err(|e| e.to_string())
}

struct JobOutcome {
    verified: bool,
    maperr: bool,
    failure: Option<String>,
}

/// Runs one differential job; `failure` is `Some` on any divergence.
fn run_job(spec: &KernelSpec, variant: FlowVariant, config: &CgraConfig) -> JobOutcome {
    let fail = |what: String| JobOutcome {
        verified: false,
        maperr: false,
        failure: Some(what),
    };

    let seq = map_with_threads(variant, 1, spec, config);
    let par = map_with_threads(variant, 4, spec, config);
    if seq != par {
        return fail(format!(
            "mapper threads=1 and threads=4 diverge (seq {}, par {})",
            if seq.is_ok() { "ok" } else { "err" },
            if par.is_ok() { "ok" } else { "err" }
        ));
    }
    let (mapping, _stats) = match seq {
        Ok(m) => m,
        // Identical failure on both thread counts: an acceptable outcome
        // (a kernel can exceed a constrained config's context memory),
        // but not a verified differential job.
        Err(_) => {
            return JobOutcome {
                verified: false,
                maperr: true,
                failure: None,
            }
        }
    };

    let (binary, _report) = match assemble(&spec.cdfg, &mapping, config) {
        Ok(b) => b,
        Err(e) => return fail(format!("assemble failed on a valid mapping: {e}")),
    };
    let decoded = match DecodedProgram::decode(&binary, config) {
        Ok(d) => d,
        Err(e) => return fail(format!("decode failed on an assembled binary: {e}")),
    };

    let options = SimOptions::default();
    let mut mem_ref = spec.mem.clone();
    let stats_ref = match simulate_reference(&binary, config, &mut mem_ref, options) {
        Ok(s) => s,
        Err(e) => return fail(format!("reference sim failed: {e}")),
    };
    let mut mem_fast = spec.mem.clone();
    let stats_fast = match decoded.simulate(&mut mem_fast, options) {
        Ok(s) => s,
        Err(e) => return fail(format!("decoded sim failed: {e}")),
    };

    if stats_fast != stats_ref {
        return fail("decoded SimStats diverge from reference".to_owned());
    }
    if mem_fast != mem_ref {
        return fail("decoded memory image diverges from reference".to_owned());
    }
    if let Err((i, got, want)) = spec.check(&mem_ref) {
        return fail(format!(
            "simulated memory diverges from interpreter: mem[{i}] = {got}, want {want}"
        ));
    }

    JobOutcome {
        verified: true,
        maperr: false,
        failure: None,
    }
}

fn repro_line(profile: &str, kernel_seed: u64) -> String {
    format!(
        "cargo run --release -p cmam_bench --bin gen_suite -- \
         --profile {profile} --kernel-seed {kernel_seed:#x}"
    )
}

fn main() -> ExitCode {
    let _obs = cmam_bench::obs_session("gen_suite").with_metrics();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gen_suite: {e}");
            return ExitCode::from(2);
        }
    };

    // (profile label, generation seed) for every kernel of this run.
    let plan: Vec<(GenParams, u64)> = match args.kernel_seed {
        Some(s) => vec![(
            GenParams::profile(&args.profile).expect("validated at parse time"),
            s,
        )],
        None => {
            let cli = GenCli {
                generated: args.count,
                seed: args.seed,
                profile: args.profile.clone(),
            };
            kernel_seeds(args.seed, args.count)
                .into_iter()
                .enumerate()
                .map(|(k, s)| (cli.params_for(k), s))
                .collect()
        }
    };

    if args.digest {
        for (params, seed) in &plan {
            let spec = generated_spec(params, *seed);
            println!("{} {:016x}", spec.name, kernel_digest(&spec));
        }
        return ExitCode::SUCCESS;
    }

    let matrix = job_matrix();
    let mut jobs = 0usize;
    let mut verified = 0usize;
    let mut maperrs = 0usize;
    let mut failures = 0usize;

    for (params, seed) in &plan {
        let spec = generated_spec(params, *seed);
        let mut kernel_ok = 0usize;
        let mut kernel_maperr = 0usize;
        for (variant, config) in &matrix {
            jobs += 1;
            let outcome = run_job(&spec, *variant, config);
            if let Some(what) = outcome.failure {
                failures += 1;
                println!("FAIL {} {variant}@{}: {what}", spec.name, config.name());
                println!("  repro: {}", repro_line(&params.label, *seed));
                continue;
            }
            if outcome.verified {
                verified += 1;
                kernel_ok += 1;
            }
            if outcome.maperr {
                maperrs += 1;
                kernel_maperr += 1;
            }
            if args.verbose {
                println!(
                    "{} {variant}@{} {}",
                    spec.name,
                    config.name(),
                    if outcome.verified {
                        "verified"
                    } else {
                        "maperr"
                    }
                );
            }
        }
        if !args.verbose {
            println!(
                "{} verified={kernel_ok}/{} maperr={kernel_maperr}",
                spec.name,
                matrix.len()
            );
        }
    }

    println!(
        "gen_suite: {jobs} jobs, {verified} verified, {maperrs} maperr, {failures} FAILED \
         (seed {:#x}, count {}, profile {})",
        args.seed,
        plan.len(),
        args.profile
    );
    if failures > 0 {
        return ExitCode::FAILURE;
    }
    if verified < args.require {
        eprintln!(
            "gen_suite: only {verified} verified jobs, --require {} not met",
            args.require
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
