//! Fig 2: context-memory occupancy of the basic (context-unaware) mapping
//! of matrix multiplication on HOM64 — the load/store tiles become hot
//! spots while most compute tiles stay underused.

use cmam_arch::{CgraConfig, TileId};
use cmam_bench::{emit_table, run_flow};
use cmam_core::FlowVariant;

fn main() {
    let _obs = cmam_bench::obs_session("fig2_occupancy");
    println!("# Fig 2: per-tile context words, MatM, basic mapping on HOM64\n");
    let spec = cmam_kernels::matm::spec();
    let config = CgraConfig::hom64();
    let out = run_flow(&spec, FlowVariant::Basic, &config).expect("basic fits HOM64");
    let mut rows = Vec::new();
    for i in 0..16 {
        let t = TileId(i);
        let (ops, moves, pnops) = out.report.per_tile[i];
        let words = ops + moves + pnops;
        let cap = config.tile(t).cm_words;
        let bar = "#".repeat((words * 40) / cap.max(1));
        rows.push(vec![
            t.to_string(),
            if config.tile(t).has_lsu { "LSU" } else { "" }.to_owned(),
            ops.to_string(),
            moves.to_string(),
            pnops.to_string(),
            format!("{words}/{cap}"),
            format!("{:>3.0}% {bar}", 100.0 * words as f64 / cap as f64),
        ]);
    }
    emit_table(
        &[
            "Tile",
            "Kind",
            "Ops",
            "Moves",
            "Pnops",
            "Words",
            "Occupancy",
        ],
        &rows,
    );
    let max = out.binary.max_context_words();
    let min = (0..16)
        .map(|i| out.binary.context_words(TileId(i)))
        .min()
        .unwrap();
    println!("\nmax/min context words: {max}/{min} (uneven distribution motivates the paper)");
}
