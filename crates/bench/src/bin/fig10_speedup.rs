//! Fig 10: execution time of the CGRA mappings normalised to the or1k-like
//! CPU. Paper: context-aware mapping performs almost like the basic
//! mapping with much less context memory; average ~10x speed-up, max 22x
//! (HET1) / 19x (HET2), min 5x.

use cmam_arch::CgraConfig;
use cmam_bench::{emit_table, prewarm_smoke_matrix, run_cpu, run_flow};
use cmam_core::FlowVariant;

fn main() {
    let _obs = cmam_bench::obs_session("fig10_speedup");
    println!("# Fig 10: CGRA speed-up over the CPU\n");
    let specs = cmam_kernels::all();
    prewarm_smoke_matrix(&specs);
    let mut rows = Vec::new();
    let mut agg: Vec<f64> = Vec::new();
    for spec in &specs {
        let (cpu, _) = run_cpu(&spec);
        let basic =
            run_flow(&spec, FlowVariant::Basic, &CgraConfig::hom64()).expect("basic maps on HOM64");
        let het1 = run_flow(&spec, FlowVariant::Cab, &CgraConfig::het1());
        let het2 = run_flow(&spec, FlowVariant::Cab, &CgraConfig::het2());
        let spd = |c: u64| cpu.cycles as f64 / c as f64;
        let mut row = vec![
            spec.name.to_owned(),
            cpu.cycles.to_string(),
            format!("{:.1}x", spd(basic.cycles)),
        ];
        for r in [&het1, &het2] {
            match r {
                Ok(o) => {
                    row.push(format!("{:.1}x", spd(o.cycles)));
                    agg.push(spd(o.cycles));
                }
                Err(e) => {
                    row.push("-".to_owned());
                    eprintln!("  {}: {e}", spec.name);
                }
            }
        }
        rows.push(row);
    }
    emit_table(
        &[
            "Kernel",
            "CPU cyc",
            "basic/HOM64",
            "aware/HET1",
            "aware/HET2",
        ],
        &rows,
    );
    if !agg.is_empty() {
        let avg = agg.iter().sum::<f64>() / agg.len() as f64;
        let max = agg.iter().cloned().fold(f64::MIN, f64::max);
        let min = agg.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "\ncontext-aware speed-up: avg {avg:.1}x, max {max:.1}x, min {min:.1}x \
             (paper: avg ~10x, max 22x/19x, min 5x)"
        );
    }
}
