//! Smoke check: maps, assembles and simulates every kernel under the basic
//! flow on `hom64` and the full context-aware flow on `het1`/`het2`,
//! printing per-run cycle counts and context-word accounting. Run this
//! first after any mapper or simulator change.
//!
//! The whole matrix is submitted as one engine batch, so it runs in
//! parallel (`--jobs N`) and memoises into `target/cmam-cache/`. Stdout is
//! deliberately free of wall-clock noise: a cached re-run, or a run with a
//! different `--jobs` count, must produce byte-identical output (CI diffs
//! two consecutive runs). Timing and engine counters go to stderr.
//!
//! `--generated N [--seed S] [--profile P]` appends N generated kernels to
//! the matrix — the one-command replay path for a failing CI seed:
//! `smoke --generated 1 --seed 0x<seed>` (see `gen_suite --kernel-seed`
//! for single-kernel replay at an exact generation seed). Without the
//! flag, output is byte-identical to before the flag existed.

use cmam_bench::{engine, smoke_matrix, GenCli, JobRequest};
use std::time::Instant;

fn main() {
    let _obs = cmam_bench::obs_session("smoke").with_metrics();
    let mut specs = cmam_kernels::all();
    specs.extend(GenCli::from_args().specs());
    let matrix = smoke_matrix();
    let mut requests = Vec::new();
    let mut labels = Vec::new();
    for spec in &specs {
        for (variant, config) in &matrix {
            requests.push(JobRequest::flow(spec, *variant, config));
            labels.push(variant.to_string());
        }
    }
    let t0 = Instant::now();
    let results = engine().run_batch(&requests);
    let elapsed = t0.elapsed();
    for ((req, label), result) in requests.iter().zip(&labels).zip(&results) {
        match result {
            Err(e) => println!(
                "{:<14} {:<8} {:<22} FAIL {e}",
                req.spec.name,
                req.config.name(),
                label
            ),
            Ok(out) => println!(
                "{:<14} {:<8} {:<22} OK  cycles={} maxwords={} moves={} pnops={}",
                req.spec.name,
                req.config.name(),
                label,
                out.cycles,
                out.binary.max_context_words(),
                out.report.total_moves(),
                out.report.total_pnops(),
            ),
        }
    }
    // Wall-clock to stderr (stdout stays deterministic); the cache
    // outcome line and METRICS block follow from the obs session drop.
    eprintln!(
        "smoke: {} jobs in {elapsed:?} on {} workers",
        requests.len(),
        engine().workers(),
    );
}
