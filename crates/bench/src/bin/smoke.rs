//! Smoke check: maps, assembles and simulates every kernel under the basic
//! flow on `hom64` and the full context-aware flow on `het1`, printing
//! per-run cycle counts and wall-clock times. Run this first after any
//! mapper or simulator change.

use cmam_arch::CgraConfig;
use cmam_core::{FlowVariant, Mapper};
use cmam_sim::{simulate, SimOptions};
use std::time::Instant;

fn main() {
    for spec in cmam_kernels::all() {
        for (variant, config) in [
            (FlowVariant::Basic, CgraConfig::hom64()),
            (FlowVariant::Cab, CgraConfig::het1()),
            (FlowVariant::Cab, CgraConfig::het2()),
        ] {
            let t0 = Instant::now();
            let mapper = Mapper::new(variant.options());
            match mapper.map(&spec.cdfg, &config) {
                Err(e) => println!(
                    "{:<14} {:<8} {:<22} MAP-FAIL {e}",
                    spec.name,
                    config.name(),
                    variant.to_string()
                ),
                Ok(r) => match cmam_isa::assemble(&spec.cdfg, &r.mapping, &config) {
                    Err(e) => println!(
                        "{:<14} {:<8} {:<22} ASM-FAIL {e}",
                        spec.name,
                        config.name(),
                        variant.to_string()
                    ),
                    Ok((bin, rep)) => {
                        let mut mem = spec.mem.clone();
                        match simulate(&bin, &config, &mut mem, SimOptions::default()) {
                            Err(e) => println!(
                                "{:<14} {:<8} {:<22} SIM-FAIL {e}",
                                spec.name,
                                config.name(),
                                variant.to_string()
                            ),
                            Ok(st) => {
                                let ok = spec.check(&mem).is_ok();
                                println!(
                                    "{:<14} {:<8} {:<22} {} cycles={} maxwords={} moves={} pnops={} t={:?}",
                                    spec.name, config.name(), variant.to_string(),
                                    if ok { "OK " } else { "WRONG-RESULT" },
                                    st.cycles, bin.max_context_words(), rep.total_moves(), rep.total_pnops(),
                                    t0.elapsed()
                                );
                            }
                        }
                    }
                },
            }
        }
    }
}
