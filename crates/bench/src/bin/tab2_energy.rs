//! Table II: energy per kernel (µJ) for the CPU, the basic mapping on
//! HOM64 and the context-aware mapping on HET1/HET2, with gains.
//! Paper: aware vs basic avg 2.3x (max 3.1x, min 1.4x); aware vs CPU avg
//! 14x (max 23x, min 5x).

use cmam_arch::CgraConfig;
use cmam_bench::{cgra_energy_of, emit_table, prewarm_smoke_matrix, run_cpu, run_flow};
use cmam_core::FlowVariant;

fn main() {
    let _obs = cmam_bench::obs_session("tab2_energy");
    println!("# Table II: energy (µJ)\n");
    let hom64 = CgraConfig::hom64();
    let het1 = CgraConfig::het1();
    let het2 = CgraConfig::het2();
    let specs = cmam_kernels::all();
    prewarm_smoke_matrix(&specs);
    let mut rows = Vec::new();
    let mut gains_vs_basic: Vec<f64> = Vec::new();
    let mut gains_vs_cpu: Vec<f64> = Vec::new();
    for spec in &specs {
        let (_, cpu_e) = run_cpu(&spec);
        let cpu_uj = cpu_e.total();
        let basic = run_flow(&spec, FlowVariant::Basic, &hom64).expect("basic maps");
        let b_uj = cgra_energy_of(&spec, &hom64, &basic).total();
        let mut row = vec![
            spec.name.to_owned(),
            format!("{cpu_uj:.4}"),
            format!("{b_uj:.4} ({:.0}x)", cpu_uj / b_uj),
        ];
        for config in [&het1, &het2] {
            match run_flow(&spec, FlowVariant::Cab, config) {
                Ok(out) => {
                    let uj = cgra_energy_of(&spec, config, &out).total();
                    row.push(format!("{uj:.4} ({:.0}x)", cpu_uj / uj));
                    gains_vs_basic.push(b_uj / uj);
                    gains_vs_cpu.push(cpu_uj / uj);
                }
                Err(e) => {
                    row.push("-".to_owned());
                    eprintln!("  {}: {e}", spec.name);
                }
            }
        }
        rows.push(row);
    }
    emit_table(
        &[
            "Kernel",
            "CPU µJ",
            "basic HOM64 µJ (vs CPU)",
            "aware HET1 µJ (vs CPU)",
            "aware HET2 µJ (vs CPU)",
        ],
        &rows,
    );
    let stats = |v: &[f64]| {
        let avg = v.iter().sum::<f64>() / v.len() as f64;
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        (avg, max, min)
    };
    if !gains_vs_basic.is_empty() {
        let (a, mx, mn) = stats(&gains_vs_basic);
        println!(
            "\naware vs basic: avg {a:.2}x, max {mx:.2}x, min {mn:.2}x (paper: 2.3x / 3.1x / 1.4x)"
        );
        let (a, mx, mn) = stats(&gains_vs_cpu);
        println!("aware vs CPU:   avg {a:.1}x, max {mx:.1}x, min {mn:.1}x (paper: 14x / 23x / 5x)");
    }
}
