//! Design-space exploration (beyond the paper): sweep a generated space
//! of CGRA configurations — context-memory depth x heterogeneity x
//! geometry, see [`cmam_engine::dse::config_space`] — over all seven
//! kernels with the full context-aware flow, and print the energy/latency
//! Pareto frontier.
//!
//! This is exactly the workload the engine exists for: ~170 jobs,
//! submitted as one batch, executed on the work-stealing pool and
//! memoised under `target/cmam-cache/`, so re-running the sweep after the
//! first time costs milliseconds. Use `--jobs N` to bound the workers,
//! `--csv` for machine-readable tables, and
//! `--generated N [--seed S] [--profile P]` to widen the kernel mix with
//! N generated kernels — a DSE verdict that holds beyond the seven
//! hand-written workloads.

use cmam_bench::{cgra_energy_of, emit_table, engine, ratio, GenCli, JobRequest};
use cmam_core::FlowVariant;
use std::time::Instant;

/// Per-configuration aggregate over the whole kernel mix.
struct ConfigPoint {
    name: String,
    shape: String,
    cm_words: usize,
    mapped: usize,
    energy_uj: f64,
    cycles: u64,
    /// Mapper search effort over the mix: candidate bindings generated —
    /// a compile-cost measure free of wall-clock noise (cache hits and
    /// parallel contention would corrupt a timing column here).
    candidates: u64,
    /// Peak candidate-pool size over the mix's mapping runs.
    peak_population: u64,
}

fn main() {
    let _obs = cmam_bench::obs_session("dse").with_metrics();
    println!("# DSE: energy/latency Pareto frontier over generated configurations\n");
    let mut specs = cmam_kernels::all();
    specs.extend(GenCli::from_args().specs());
    let space = cmam_engine::dse::config_space();
    let mut requests = Vec::new();
    for config in &space {
        for spec in &specs {
            requests.push(JobRequest::flow(spec, FlowVariant::Cab, config));
        }
    }
    println!(
        "sweeping {} configurations x {} kernels = {} jobs (full flow: {})\n",
        space.len(),
        specs.len(),
        requests.len(),
        FlowVariant::Cab
    );
    let t0 = Instant::now();
    let results = engine().run_batch(&requests);
    let elapsed = t0.elapsed();

    let mut points: Vec<ConfigPoint> = Vec::new();
    for (c, config) in space.iter().enumerate() {
        let mut point = ConfigPoint {
            name: config.name().to_owned(),
            shape: format!("{}x{}", config.geometry().rows(), config.geometry().cols()),
            cm_words: config.total_cm_words(),
            mapped: 0,
            energy_uj: 0.0,
            cycles: 0,
            candidates: 0,
            peak_population: 0,
        };
        for (k, spec) in specs.iter().enumerate() {
            if let Ok(out) = &results[c * specs.len() + k] {
                point.mapped += 1;
                point.energy_uj += cgra_energy_of(spec, config, out).total();
                point.cycles += out.cycles;
                point.candidates += out.map_stats.candidates;
                point.peak_population = point.peak_population.max(out.map_stats.peak_population);
            }
        }
        points.push(point);
    }

    // A configuration is feasible when the full kernel mix maps; only
    // feasible points compete for the frontier (an infeasible config has
    // no meaningful mix energy).
    let feasible: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].mapped == specs.len())
        .collect();
    // Pareto dominance: strictly better in at least one of
    // (energy, latency), no worse in the other.
    let dominated = |i: usize| {
        feasible.iter().any(|&j| {
            j != i
                && points[j].energy_uj <= points[i].energy_uj
                && points[j].cycles <= points[i].cycles
                && (points[j].energy_uj < points[i].energy_uj
                    || points[j].cycles < points[i].cycles)
        })
    };
    let frontier: Vec<usize> = feasible
        .iter()
        .copied()
        .filter(|&i| !dominated(i))
        .collect();

    let reference = feasible
        .iter()
        .find(|&&i| points[i].name == "U64-L2")
        .copied();
    let rows: Vec<Vec<String>> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let feasible_here = p.mapped == specs.len();
            vec![
                p.name.clone(),
                p.shape.clone(),
                p.cm_words.to_string(),
                format!("{}/{}", p.mapped, specs.len()),
                if feasible_here {
                    format!("{:.4}", p.energy_uj)
                } else {
                    "-".to_owned()
                },
                if feasible_here {
                    p.cycles.to_string()
                } else {
                    "-".to_owned()
                },
                match reference {
                    Some(r) if feasible_here => ratio(Some(points[r].energy_uj / p.energy_uj)),
                    _ => "-".to_owned(),
                },
                p.candidates.to_string(),
                p.peak_population.to_string(),
                if frontier.contains(&i) { "*" } else { "" }.to_owned(),
            ]
        })
        .collect();
    emit_table(
        &[
            "Config",
            "Shape",
            "CM words",
            "Mapped",
            "Mix energy µJ",
            "Mix cycles",
            "vs U64-L2",
            "candidates",
            "peak pop",
            "Pareto",
        ],
        &rows,
    );

    println!("\n## Pareto frontier (energy- and latency-minimal mixes)\n");
    let mut frontier_sorted = frontier.clone();
    frontier_sorted.sort_by(|&a, &b| {
        points[a]
            .energy_uj
            .partial_cmp(&points[b].energy_uj)
            .expect("frontier energies are finite")
    });
    let frontier_rows: Vec<Vec<String>> = frontier_sorted
        .iter()
        .map(|&i| {
            let p = &points[i];
            vec![
                p.name.clone(),
                p.cm_words.to_string(),
                format!("{:.4}", p.energy_uj),
                p.cycles.to_string(),
            ]
        })
        .collect();
    emit_table(
        &["Config", "CM words", "Mix energy µJ", "Mix cycles"],
        &frontier_rows,
    );
    println!(
        "\n{} of {} configurations feasible for the full mix; {} on the frontier",
        feasible.len(),
        space.len(),
        frontier.len()
    );
    // Wall-clock to stderr; the cache outcome line and METRICS block
    // follow from the obs session drop.
    eprintln!(
        "dse: {} jobs in {elapsed:?} on {} workers",
        requests.len(),
        engine().workers(),
    );
}
