//! Design-space exploration (beyond the paper): explore a space of CGRA
//! configurations over the kernel mix with the full context-aware flow
//! and report the energy/latency Pareto frontier.
//!
//! Two spaces: the legacy 24-configuration validation space (default,
//! see [`cmam_engine::dse::validation_space`]) and the seeded
//! provisioning-aware generated space (`--space N [--space-seed S]`,
//! see [`cmam_engine::dse::generate_space`]) that scales to thousands
//! of configurations. Two modes: `--search` (default) runs the
//! successive-halving scheduler — exact frontier at a fraction of the
//! evaluations — and `--exhaustive` sweeps every (config, kernel) job.
//!
//! Sweeps are resumable: jobs are memoised under `target/cmam-cache/`,
//! so a killed run (`--max-jobs N` simulates one) restarted with the
//! same flags replays its schedule from the artifact store without
//! re-executing finished jobs; `--resume` prints the recovery counters.
//! `--verify` runs the search *and* the exhaustive sweep and exits
//! nonzero unless the frontiers agree member-for-member (the CI smoke).
//! `--csv` re-emits every table machine-readable, including per-config
//! provisioning fields and frontier membership.

use cmam_bench::{cgra_energy_of, emit_table, engine, GenCli, JobRequest, RunOutcome};
use cmam_core::FlowVariant;
use cmam_engine::dse::{generate_space, validation_space, SpaceParams};
use cmam_engine::search::{pareto_frontier, run_search, ConfigStatus, SearchOptions};
use cmam_engine::Engine;
use cmam_kernels::KernelSpec;
use std::time::Instant;

struct Cli {
    exhaustive: bool,
    space: Option<usize>,
    space_seed: u64,
    verify: bool,
    resume: bool,
    max_jobs: Option<usize>,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        exhaustive: false,
        space: None,
        space_seed: cmam_engine::dse::DEFAULT_SPACE_SEED,
        verify: false,
        resume: false,
        max_jobs: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--search" => cli.exhaustive = false,
            "--exhaustive" => cli.exhaustive = true,
            "--space" => {
                i += 1;
                cli.space = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .expect("--space needs a positive integer"),
                );
            }
            "--space-seed" => {
                i += 1;
                cli.space_seed = args
                    .get(i)
                    .map(|v| cmam_bench::gen::parse_u64(v).expect("--space-seed needs an integer"))
                    .expect("--space-seed needs a value");
            }
            "--verify" => cli.verify = true,
            "--resume" => cli.resume = true,
            "--max-jobs" => {
                i += 1;
                cli.max_jobs = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .expect("--max-jobs needs an integer"),
                );
            }
            // Parsed elsewhere: engine (--jobs/--no-cache), tables
            // (--csv), generated kernels (GenCli), obs session.
            "--jobs" | "--generated" | "--seed" | "--profile" | "--trace-out" => i += 1,
            "--csv" | "--no-cache" | "--metrics" => {}
            o if o.starts_with("--trace-out=") => {}
            other => {
                eprintln!(
                    "unknown flag {other} (known: --search, --exhaustive, --space N, \
                     --space-seed S, --verify, --resume, --max-jobs N, --csv, --jobs N, \
                     --no-cache, --generated N, --seed S, --profile P, --trace-out FILE, \
                     --metrics)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cli
}

/// Provisioning columns shared by every per-config table.
fn config_fields(config: &cmam_arch::CgraConfig) -> Vec<String> {
    let (_, tile0) = config.tiles().next().expect("non-empty array");
    vec![
        config.name().to_owned(),
        format!("{}x{}", config.geometry().rows(), config.geometry().cols()),
        config.total_cm_words().to_string(),
        config.lsu_tiles().len().to_string(),
        tile0.rf_words.to_string(),
        tile0.crf_words.to_string(),
    ]
}

const CONFIG_HEADERS: [&str; 6] = ["Config", "Shape", "CM words", "LSUs", "RF", "CRF"];

/// Exhaustive sweep: every (config, kernel) job in one batch; the
/// legacy dse_pareto behaviour, now over either space.
fn run_exhaustive(engine: &Engine, specs: &[KernelSpec], space: &[cmam_arch::CgraConfig]) {
    let mut requests = Vec::new();
    for config in space {
        for spec in specs {
            requests.push(JobRequest::flow(spec, FlowVariant::Cab, config));
        }
    }
    println!(
        "sweeping {} configurations x {} kernels = {} jobs (full flow: {})\n",
        space.len(),
        specs.len(),
        requests.len(),
        FlowVariant::Cab
    );
    let t0 = Instant::now();
    let results = engine.run_batch(&requests);
    let elapsed = t0.elapsed();

    struct Point {
        mapped: usize,
        energy: f64,
        cycles: u64,
        candidates: u64,
    }
    let points: Vec<Point> = space
        .iter()
        .enumerate()
        .map(|(c, config)| {
            let mut p = Point {
                mapped: 0,
                energy: 0.0,
                cycles: 0,
                candidates: 0,
            };
            for (k, spec) in specs.iter().enumerate() {
                if let Ok(out) = &results[c * specs.len() + k] {
                    p.mapped += 1;
                    p.energy += cgra_energy_of(spec, config, out).total();
                    p.cycles += out.cycles;
                    p.candidates += out.map_stats.candidates;
                }
            }
            p
        })
        .collect();

    let feasible: Vec<(usize, f64, u64)> = points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.mapped == specs.len())
        .map(|(i, p)| (i, p.energy, p.cycles))
        .collect();
    let frontier = pareto_frontier(&feasible);

    let rows: Vec<Vec<String>> = space
        .iter()
        .zip(&points)
        .enumerate()
        .map(|(i, (config, p))| {
            let ok = p.mapped == specs.len();
            let mut row = config_fields(config);
            row.extend([
                format!("{}/{}", p.mapped, specs.len()),
                if ok {
                    format!("{:.4}", p.energy)
                } else {
                    "-".to_owned()
                },
                if ok {
                    p.cycles.to_string()
                } else {
                    "-".to_owned()
                },
                p.candidates.to_string(),
                if frontier.contains(&i) { "*" } else { "" }.to_owned(),
            ]);
            row
        })
        .collect();
    let mut headers: Vec<&str> = CONFIG_HEADERS.to_vec();
    headers.extend([
        "Mapped",
        "Mix energy µJ",
        "Mix cycles",
        "candidates",
        "Pareto",
    ]);
    emit_table(&headers, &rows);

    print_frontier(space, &frontier, |i| (points[i].energy, points[i].cycles));
    println!(
        "\n{} of {} configurations feasible for the full mix; {} on the frontier",
        feasible.len(),
        space.len(),
        frontier.len()
    );
    eprintln!(
        "dse (exhaustive): {} jobs in {elapsed:?} on {} workers",
        requests.len(),
        engine.workers(),
    );
}

fn print_frontier(
    space: &[cmam_arch::CgraConfig],
    frontier: &[usize],
    point: impl Fn(usize) -> (f64, u64),
) {
    println!("\n## Pareto frontier (energy- and latency-minimal mixes)\n");
    let mut sorted = frontier.to_vec();
    sorted.sort_by(|&a, &b| {
        point(a)
            .0
            .partial_cmp(&point(b).0)
            .expect("frontier energies are finite")
    });
    let rows: Vec<Vec<String>> = sorted
        .iter()
        .map(|&i| {
            let (e, c) = point(i);
            let mut row = config_fields(&space[i]);
            row.extend([format!("{e:.4}"), c.to_string()]);
            row
        })
        .collect();
    let mut headers: Vec<&str> = CONFIG_HEADERS.to_vec();
    headers.extend(["Mix energy µJ", "Mix cycles"]);
    emit_table(&headers, &rows);
}

/// Search mode: the successive-halving scheduler; exact frontier at a
/// fraction of the evaluations.
fn run_search_mode(
    engine: &Engine,
    specs: &[KernelSpec],
    space: &[cmam_arch::CgraConfig],
    cli: &Cli,
) {
    println!(
        "searching {} configurations x {} kernels (successive halving, full flow: {})\n",
        space.len(),
        specs.len(),
        FlowVariant::Cab
    );
    let energy = |ci: usize, ki: usize, out: &RunOutcome| {
        cgra_energy_of(&specs[ki], &space[ci], out).total()
    };
    let t0 = Instant::now();
    let result = run_search(
        engine,
        specs,
        space,
        FlowVariant::Cab,
        &energy,
        &SearchOptions {
            max_jobs: cli.max_jobs,
            ..SearchOptions::default()
        },
    );
    let elapsed = t0.elapsed();

    let rows: Vec<Vec<String>> = space
        .iter()
        .zip(&result.evaluated)
        .enumerate()
        .map(|(i, (config, eval))| {
            let mut row = config_fields(config);
            let (status, show_sums) = match eval.status {
                ConfigStatus::Completed => ("completed".to_owned(), true),
                ConfigStatus::Pending => ("pending".to_owned(), false),
                ConfigStatus::Dominated(k) => (format!("dominated@{k}"), false),
                ConfigStatus::Raced(k) => (format!("raced@{k}"), false),
                ConfigStatus::Infeasible(k) => (format!("infeasible:{}", specs[k].name), false),
            };
            row.extend([
                status,
                format!("{}/{}", eval.kernels_evaluated, specs.len()),
                if show_sums {
                    format!("{:.4}", eval.energy)
                } else {
                    "-".to_owned()
                },
                if show_sums {
                    eval.cycles.to_string()
                } else {
                    "-".to_owned()
                },
                if result.frontier.contains(&i) {
                    "*"
                } else {
                    ""
                }
                .to_owned(),
            ]);
            row
        })
        .collect();
    let mut headers: Vec<&str> = CONFIG_HEADERS.to_vec();
    headers.extend([
        "Status",
        "Evaluated",
        "Mix energy µJ",
        "Mix cycles",
        "Pareto",
    ]);
    emit_table(&headers, &rows);

    if result.aborted {
        println!(
            "\nsearch aborted after {} scheduled jobs (--max-jobs); rerun with the same \
             flags to resume from the artifact store",
            result.stats.jobs_scheduled
        );
    } else {
        print_frontier(space, &result.frontier, |i| {
            let e = &result.evaluated[i];
            (e.energy, e.cycles)
        });
    }

    let s = &result.stats;
    let exhaustive_jobs = space.len() * specs.len();
    println!(
        "\nsearch: {} of {} exhaustive evaluations executed ({:.1}% saved), \
         {} completed / {} dominated / {} raced / {} infeasible, {} on the frontier",
        s.engine.executed,
        exhaustive_jobs,
        (1.0 - s.engine.executed as f64 / exhaustive_jobs as f64) * 100.0,
        space.len() - s.dominated - s.raced - s.infeasible,
        s.dominated,
        s.raced,
        s.infeasible,
        result.frontier.len()
    );
    if cli.resume || cli.max_jobs.is_some() {
        println!(
            "resume: {} of {} scheduled jobs answered from cache ({} from the artifact \
             store), {} executed",
            s.engine.memory_hits + s.engine.disk_hits,
            s.jobs_scheduled,
            s.engine.disk_hits,
            s.engine.executed
        );
    }
    eprintln!(
        "dse (search): {} jobs in {elapsed:?} on {} workers",
        s.jobs_scheduled,
        engine.workers(),
    );

    // --verify: the exhaustive sweep must agree. Search results stay
    // warm in the cache, so the sweep only pays for eliminated configs'
    // unevaluated kernels.
    if cli.verify && !result.aborted {
        let mut requests = Vec::new();
        for config in space {
            for spec in specs {
                requests.push(JobRequest::flow(spec, FlowVariant::Cab, config));
            }
        }
        let results = engine.run_batch(&requests);
        let mut feasible: Vec<(usize, f64, u64)> = Vec::new();
        for (ci, config) in space.iter().enumerate() {
            let mut energy = 0.0;
            let mut cycles = 0u64;
            let mut ok = true;
            for (ki, spec) in specs.iter().enumerate() {
                match &results[ci * specs.len() + ki] {
                    Ok(out) => {
                        energy += cgra_energy_of(spec, config, out).total();
                        cycles += out.cycles;
                    }
                    Err(_) => ok = false,
                }
            }
            if ok {
                feasible.push((ci, energy, cycles));
            }
        }
        let want = pareto_frontier(&feasible);
        if want == result.frontier {
            println!(
                "\nverify: search frontier matches the exhaustive frontier ({} members)",
                want.len()
            );
        } else {
            let names = |f: &[usize]| {
                f.iter()
                    .map(|&i| space[i].name().to_owned())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            eprintln!(
                "verify FAILED:\n  search:     [{}]\n  exhaustive: [{}]",
                names(&result.frontier),
                names(&want)
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let _obs = cmam_bench::obs_session("dse").with_metrics();
    let cli = parse_cli();
    println!("# DSE: energy/latency Pareto frontier over generated configurations\n");
    let mut specs = cmam_kernels::all();
    specs.extend(GenCli::from_args().specs());
    let space = match cli.space {
        Some(target) => generate_space(&SpaceParams {
            target,
            seed: cli.space_seed,
        }),
        None => validation_space(),
    };
    let engine = engine();
    if cli.exhaustive {
        run_exhaustive(engine, &specs, &space);
    } else {
        run_search_mode(engine, &specs, &space, &cli);
    }
}
