//! Fig 11: area comparison of the CGRA configurations against the CPU.
//! Paper: HOM64 ~2x the CPU, HET1/HET2 ~1.5x thanks to the smaller
//! context memories; a 64-word CM is ~40% of a PE.

use cmam_arch::CgraConfig;
use cmam_bench::emit_table;
use cmam_energy::{cgra_area, cpu_area, AreaParams};

fn main() {
    let _obs = cmam_bench::obs_session("fig11_area");
    println!("# Fig 11: area comparison (µm², synthetic 28nm-scale model)\n");
    let p = AreaParams::default();
    let cpu = cpu_area(&p);
    let mut rows = vec![vec![
        "CPU (or1k + mem)".to_owned(),
        format!("{:.0}", cpu.logic),
        format!("{:.0}", cpu.instruction_memory),
        format!("{:.0}", cpu.interconnect),
        format!("{:.0}", cpu.data_memory),
        format!("{:.0}", cpu.total()),
        "1.00x".to_owned(),
    ]];
    for config in CgraConfig::table_one() {
        let a = cgra_area(&p, &config);
        rows.push(vec![
            config.name().to_owned(),
            format!("{:.0}", a.logic),
            format!("{:.0}", a.instruction_memory),
            format!("{:.0}", a.interconnect),
            format!("{:.0}", a.data_memory),
            format!("{:.0}", a.total()),
            format!("{:.2}x", a.total() / cpu.total()),
        ]);
    }
    emit_table(
        &[
            "Design",
            "Logic",
            "Instr mem",
            "Interco+ctrl",
            "Data mem",
            "Total",
            "vs CPU",
        ],
        &rows,
    );
    println!("\n(paper: HOM64 ~2x CPU, HET1/HET2 ~1.5x)");
}
