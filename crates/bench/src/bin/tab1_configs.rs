//! Table I: the four context-memory configurations.

use cmam_arch::CgraConfig;
use cmam_bench::emit_table;

fn main() {
    let _obs = cmam_bench::obs_session("tab1_configs");
    println!("# Table I: context-memory configurations\n");
    let rows: Vec<Vec<String>> = CgraConfig::table_one()
        .iter()
        .map(|c| {
            let lsu = c
                .lsu_tiles()
                .iter()
                .map(|t| t.display_index().to_string())
                .collect::<Vec<_>>()
                .join(",");
            let group = |words: usize| {
                let tiles: Vec<String> = c
                    .tiles()
                    .filter(|(_, t)| t.cm_words == words)
                    .map(|(i, _)| i.display_index().to_string())
                    .collect();
                if tiles.is_empty() {
                    "-".to_owned()
                } else {
                    tiles.join(",")
                }
            };
            vec![
                c.name().to_owned(),
                lsu,
                group(64),
                group(32),
                group(16),
                c.total_cm_words().to_string(),
            ]
        })
        .collect();
    emit_table(
        &["Config", "LSU tiles", "CM 64", "CM 32", "CM 16", "Total"],
        &rows,
    );
}
