//! The tracked DSE benchmark behind the `bench_dse` binary.
//!
//! Three phases, all through one private engine with its own artifact
//! store so runs are isolated and reproducible:
//!
//! 1. **Scale** — the successive-halving search over a generated
//!   provisioning-aware space (default 1000 configurations × the seven
//!   paper kernels), measuring configurations/s and the fraction of
//!   exhaustive evaluations actually executed.
//! 2. **Validation** — exhaustive sweep and search over the legacy
//!   24-configuration space with the real energy model; the search must
//!   recover the exhaustive Pareto frontier exactly (recall 1.0, equal
//!   hypervolume). The search runs second, so its jobs are answered
//!   from the cache — the warm-reuse the scheduler is designed around.
//! 3. **Resume** — a search killed partway (`max_jobs`) and restarted
//!   over the same store; every pre-kill job must come back as a disk
//!   hit.
//!
//! Rendered as `BENCH_dse.json` (hand-written JSON, offline workspace);
//! [`check_against_baseline`] is CI's gate: exactness is a hard
//! requirement, throughput is compared against the committed baseline.

use crate::cgra_energy_of;
use cmam_arch::CgraConfig;
use cmam_core::FlowVariant;
use cmam_engine::dse::{generate_space, validation_space, SpaceParams};
use cmam_engine::search::{pareto_frontier, run_search, SearchOptions};
use cmam_engine::{Engine, EngineOptions, JobRequest, RunOutcome};
use cmam_kernels::KernelSpec;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Schema tag of the emitted JSON; bump on any shape change.
pub const SCHEMA: &str = "cmam-bench-dse-v1";

/// The search may execute at most this fraction of the exhaustive
/// (configs × kernels) evaluations on the generated space — the
/// headline claim `check_against_baseline` enforces.
pub const MAX_EVALS_RATIO: f64 = 0.35;

/// Benchmark inputs.
#[derive(Debug, Clone)]
pub struct DseBenchParams {
    /// Generated-space size for the scale phase.
    pub space: usize,
    /// Generator seed.
    pub seed: u64,
    /// Engine worker threads (`0` = one per core).
    pub jobs: usize,
}

impl Default for DseBenchParams {
    fn default() -> Self {
        DseBenchParams {
            space: 1000,
            seed: cmam_engine::dse::DEFAULT_SPACE_SEED,
            jobs: 0,
        }
    }
}

/// Everything the benchmark measured; field names mirror the JSON.
#[derive(Debug, Clone)]
pub struct DseBenchReport {
    /// Scale phase: requested space size.
    pub space_target: usize,
    /// Scale phase: configurations actually generated (post-dedup).
    pub space_generated: usize,
    /// Generator seed.
    pub seed: u64,
    /// Kernels in the mix.
    pub kernels: usize,
    /// Scale-phase search wall-clock in milliseconds.
    pub search_wall_ms: f64,
    /// Configurations decided (completed or eliminated) per second.
    pub configs_per_sec: f64,
    /// (config, kernel) jobs the scheduler submitted.
    pub jobs_scheduled: usize,
    /// Jobs actually executed (the rest were cache hits).
    pub executed: u64,
    /// Executed / (configs × kernels) — the evaluations-saved headline.
    pub evals_ratio: f64,
    /// Scale-phase scheduler counters.
    pub probed: usize,
    /// Configurations promoted to full evaluation mid-search.
    pub promoted: usize,
    /// Configurations eliminated by lower-bound domination.
    pub dominated: usize,
    /// Configurations eliminated by racing (prefix dominance).
    pub raced: usize,
    /// Configurations that failed some kernel.
    pub infeasible: usize,
    /// Configurations evaluated to completion.
    pub completed: usize,
    /// Frontier size on the generated space.
    pub frontier_size: usize,
    /// Validation phase: configurations in the legacy space.
    pub validation_configs: usize,
    /// Exhaustive frontier (config names, ascending index).
    pub exhaustive_frontier: Vec<String>,
    /// Search frontier on the same space.
    pub search_frontier: Vec<String>,
    /// Searched frontier == exhaustive frontier, member for member.
    pub frontier_match: bool,
    /// Fraction of exhaustive frontier points the search recovered.
    pub recall: f64,
    /// Normalized 2-D hypervolume of the exhaustive frontier.
    pub hypervolume_exhaustive: f64,
    /// Normalized 2-D hypervolume of the searched frontier.
    pub hypervolume_search: f64,
    /// Engine-lifetime cache counters (all phases).
    pub cache_submitted: u64,
    /// In-memory memo answers.
    pub cache_memory_hits: u64,
    /// On-disk artifact answers.
    pub cache_disk_hits: u64,
    /// (memory + disk hits) / submitted.
    pub cache_hit_ratio: f64,
    /// Resume phase: jobs executed before the simulated kill.
    pub resume_killed_executed: u64,
    /// Resume phase: pre-kill jobs answered from the store on restart.
    pub resume_disk_hits: u64,
    /// Every pre-kill job came back as a disk hit (no re-execution).
    pub resume_ok: bool,
}

/// Normalized 2-D hypervolume (minimization) of a frontier, with the
/// reference point at `1.05 ×` the component-wise maxima of
/// `reference_points` — pass the exhaustive feasible set so searched
/// and exhaustive frontiers are measured in the same box.
pub fn hypervolume(frontier: &[(f64, u64)], reference_points: &[(f64, u64)]) -> f64 {
    if frontier.is_empty() || reference_points.is_empty() {
        return 0.0;
    }
    let ref_e = reference_points.iter().map(|p| p.0).fold(0.0, f64::max) * 1.05;
    let ref_c = reference_points.iter().map(|p| p.1).max().unwrap_or(0) as f64 * 1.05;
    if ref_e <= 0.0 || ref_c <= 0.0 {
        return 0.0;
    }
    let mut pts: Vec<(f64, f64)> = frontier
        .iter()
        .map(|&(e, c)| (e / ref_e, c as f64 / ref_c))
        .filter(|&(e, c)| e < 1.0 && c < 1.0)
        .collect();
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite objectives"));
    // Non-dominated staircase: ascending energy, strictly descending
    // cycles.
    let mut stairs: Vec<(f64, f64)> = Vec::new();
    let mut best_c = 1.0f64;
    for (e, c) in pts {
        if c < best_c {
            stairs.push((e, c));
            best_c = c;
        }
    }
    // In the energy strip [e_i, e_{i+1}) the deepest covering rectangle
    // is point i's, with height (1 - c_i); the last strip runs to the
    // reference at 1.
    let mut hv = 0.0;
    for (i, &(e, c)) in stairs.iter().enumerate() {
        let next_e = stairs.get(i + 1).map(|p| p.0).unwrap_or(1.0);
        hv += (next_e - e) * (1.0 - c);
    }
    hv
}

/// Full sums of an exhaustive sweep over `(specs × configs)`:
/// `Some((energy, cycles))` for feasible configurations.
fn exhaustive_totals(
    engine: &Engine,
    specs: &[KernelSpec],
    configs: &[CgraConfig],
) -> Vec<Option<(f64, u64)>> {
    let requests: Vec<JobRequest<'_>> = configs
        .iter()
        .flat_map(|config| {
            specs
                .iter()
                .map(move |spec| JobRequest::flow(spec, FlowVariant::Cab, config))
        })
        .collect();
    let results = engine.run_batch(&requests);
    configs
        .iter()
        .enumerate()
        .map(|(ci, config)| {
            let mut energy = 0.0;
            let mut cycles = 0u64;
            for (ki, spec) in specs.iter().enumerate() {
                match &results[ci * specs.len() + ki] {
                    Ok(out) => {
                        energy += cgra_energy_of(spec, config, out).total();
                        cycles += out.cycles;
                    }
                    Err(_) => return None,
                }
            }
            Some((energy, cycles))
        })
        .collect()
}

/// The paper's energy model as a search scorer.
fn energy_fn<'a>(
    specs: &'a [KernelSpec],
    configs: &'a [CgraConfig],
) -> impl Fn(usize, usize, &RunOutcome) -> f64 + 'a {
    |ci, ki, out| cgra_energy_of(&specs[ki], &configs[ci], out).total()
}

/// A scratch artifact-store directory unique to this process.
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cmam-bench-dse-{tag}-{}", std::process::id()))
}

/// Runs all three phases. See the module docs.
pub fn run(params: &DseBenchParams) -> DseBenchReport {
    let specs = cmam_kernels::all();
    let nk = specs.len();

    // One engine + store for the scale and validation phases.
    let dir = scratch_dir("main");
    let _ = std::fs::remove_dir_all(&dir);
    let engine = Engine::new(EngineOptions {
        jobs: params.jobs,
        cache_dir: Some(dir.clone()),
        cache_bytes: None,
    });

    // Phase 1: scale — search the generated space cold.
    let space = generate_space(&SpaceParams {
        target: params.space,
        seed: params.seed,
    });
    let energy = energy_fn(&specs, &space);
    let t0 = Instant::now();
    let result = run_search(
        &engine,
        &specs,
        &space,
        FlowVariant::Cab,
        &energy,
        &SearchOptions::default(),
    );
    let wall = t0.elapsed();
    let exhaustive_jobs = space.len() * nk;
    let executed = result.stats.engine.executed;

    // Phase 2: validation — exhaustive then search on the legacy space.
    let vspace = validation_space();
    let venergy = energy_fn(&specs, &vspace);
    let totals = exhaustive_totals(&engine, &specs, &vspace);
    let vpoints: Vec<(usize, f64, u64)> = totals
        .iter()
        .enumerate()
        .filter_map(|(ci, t)| t.map(|(e, c)| (ci, e, c)))
        .collect();
    let exhaustive_frontier = pareto_frontier(&vpoints);
    let vsearch = run_search(
        &engine,
        &specs,
        &vspace,
        FlowVariant::Cab,
        &venergy,
        &SearchOptions::default(),
    );
    let frontier_match = vsearch.frontier == exhaustive_frontier;
    let recall = if exhaustive_frontier.is_empty() {
        1.0
    } else {
        exhaustive_frontier
            .iter()
            .filter(|ci| vsearch.frontier.contains(ci))
            .count() as f64
            / exhaustive_frontier.len() as f64
    };
    let feasible_points: Vec<(f64, u64)> = vpoints.iter().map(|&(_, e, c)| (e, c)).collect();
    let hv_exhaustive = hypervolume(
        &exhaustive_frontier
            .iter()
            .map(|&ci| totals[ci].expect("frontier members are feasible"))
            .collect::<Vec<_>>(),
        &feasible_points,
    );
    let hv_search = hypervolume(
        &vsearch
            .frontier
            .iter()
            .map(|&ci| {
                let e = &vsearch.evaluated[ci];
                (e.energy, e.cycles)
            })
            .collect::<Vec<_>>(),
        &feasible_points,
    );
    let cache = engine.stats();

    // Phase 3: resume — kill a search over a fresh small space, restart
    // it over the same store, count re-executions.
    let rdir = scratch_dir("resume");
    let _ = std::fs::remove_dir_all(&rdir);
    let rspace = generate_space(&SpaceParams {
        target: 40,
        seed: params.seed.wrapping_add(1),
    });
    let renergy = energy_fn(&specs, &rspace);
    let rcached = |jobs: usize| {
        Engine::new(EngineOptions {
            jobs,
            cache_dir: Some(rdir.clone()),
            cache_bytes: None,
        })
    };
    let killed = run_search(
        &rcached(params.jobs),
        &specs,
        &rspace,
        FlowVariant::Cab,
        &renergy,
        &SearchOptions {
            max_jobs: Some(rspace.len() + 10),
            ..SearchOptions::default()
        },
    );
    let resumed = run_search(
        &rcached(params.jobs),
        &specs,
        &rspace,
        FlowVariant::Cab,
        &renergy,
        &SearchOptions::default(),
    );
    let _ = std::fs::remove_dir_all(&rdir);
    let _ = std::fs::remove_dir_all(&dir);

    let decided = result.evaluated.len();
    DseBenchReport {
        space_target: params.space,
        space_generated: space.len(),
        seed: params.seed,
        kernels: nk,
        search_wall_ms: wall.as_secs_f64() * 1e3,
        configs_per_sec: if wall.as_secs_f64() > 0.0 {
            decided as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        jobs_scheduled: result.stats.jobs_scheduled,
        executed,
        evals_ratio: executed as f64 / exhaustive_jobs as f64,
        probed: result.stats.probed,
        promoted: result.stats.promoted,
        dominated: result.stats.dominated,
        raced: result.stats.raced,
        infeasible: result.stats.infeasible,
        completed: result
            .evaluated
            .iter()
            .filter(|e| e.status == cmam_engine::ConfigStatus::Completed)
            .count(),
        frontier_size: result.frontier.len(),
        validation_configs: vspace.len(),
        exhaustive_frontier: exhaustive_frontier
            .iter()
            .map(|&ci| vspace[ci].name().to_owned())
            .collect(),
        search_frontier: vsearch
            .frontier
            .iter()
            .map(|&ci| vspace[ci].name().to_owned())
            .collect(),
        frontier_match,
        recall,
        hypervolume_exhaustive: hv_exhaustive,
        hypervolume_search: hv_search,
        cache_submitted: cache.submitted,
        cache_memory_hits: cache.memory_hits,
        cache_disk_hits: cache.disk_hits,
        cache_hit_ratio: if cache.submitted > 0 {
            (cache.memory_hits + cache.disk_hits) as f64 / cache.submitted as f64
        } else {
            0.0
        },
        resume_killed_executed: killed.stats.engine.executed,
        resume_disk_hits: resumed.stats.engine.disk_hits,
        resume_ok: resumed.stats.engine.disk_hits == killed.stats.engine.executed
            && killed.stats.engine.executed > 0,
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0".to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_arr(items: &[String]) -> String {
    let mut s = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(item));
    }
    s.push(']');
    s
}

/// Renders the report as the `BENCH_dse.json` document.
pub fn render_json(r: &DseBenchReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {},", json_str(SCHEMA));
    s.push_str("  \"search\": {\n");
    let _ = writeln!(s, "    \"space_target\": {},", r.space_target);
    let _ = writeln!(s, "    \"space_generated\": {},", r.space_generated);
    let _ = writeln!(s, "    \"seed\": {},", r.seed);
    let _ = writeln!(s, "    \"kernels\": {},", r.kernels);
    let _ = writeln!(s, "    \"wall_ms\": {},", json_f64(r.search_wall_ms));
    let _ = writeln!(
        s,
        "    \"configs_per_sec\": {},",
        json_f64(r.configs_per_sec)
    );
    let _ = writeln!(s, "    \"jobs_scheduled\": {},", r.jobs_scheduled);
    let _ = writeln!(s, "    \"executed\": {},", r.executed);
    let _ = writeln!(s, "    \"evals_ratio\": {},", json_f64(r.evals_ratio));
    let _ = writeln!(s, "    \"probed\": {},", r.probed);
    let _ = writeln!(s, "    \"promoted\": {},", r.promoted);
    let _ = writeln!(s, "    \"dominated\": {},", r.dominated);
    let _ = writeln!(s, "    \"raced\": {},", r.raced);
    let _ = writeln!(s, "    \"infeasible\": {},", r.infeasible);
    let _ = writeln!(s, "    \"completed\": {},", r.completed);
    let _ = writeln!(s, "    \"frontier_size\": {}", r.frontier_size);
    s.push_str("  },\n");
    s.push_str("  \"validation\": {\n");
    let _ = writeln!(s, "    \"configs\": {},", r.validation_configs);
    let _ = writeln!(
        s,
        "    \"exhaustive_frontier\": {},",
        json_str_arr(&r.exhaustive_frontier)
    );
    let _ = writeln!(
        s,
        "    \"search_frontier\": {},",
        json_str_arr(&r.search_frontier)
    );
    let _ = writeln!(s, "    \"frontier_match\": {},", r.frontier_match);
    let _ = writeln!(s, "    \"recall\": {},", json_f64(r.recall));
    let _ = writeln!(
        s,
        "    \"hypervolume_exhaustive\": {},",
        json_f64(r.hypervolume_exhaustive)
    );
    let _ = writeln!(
        s,
        "    \"hypervolume_search\": {}",
        json_f64(r.hypervolume_search)
    );
    s.push_str("  },\n");
    s.push_str("  \"cache\": {\n");
    let _ = writeln!(s, "    \"submitted\": {},", r.cache_submitted);
    let _ = writeln!(s, "    \"memory_hits\": {},", r.cache_memory_hits);
    let _ = writeln!(s, "    \"disk_hits\": {},", r.cache_disk_hits);
    let _ = writeln!(s, "    \"hit_ratio\": {}", json_f64(r.cache_hit_ratio));
    s.push_str("  },\n");
    s.push_str("  \"resume\": {\n");
    let _ = writeln!(s, "    \"killed_executed\": {},", r.resume_killed_executed);
    let _ = writeln!(s, "    \"disk_hits\": {},", r.resume_disk_hits);
    let _ = writeln!(s, "    \"ok\": {}", r.resume_ok);
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

pub use cmam_obs::json;

/// CI's gate over a freshly rendered document and the committed
/// baseline. Exactness is absolute on the current document — frontier
/// match, recall 1.0, evals ratio ≤ [`MAX_EVALS_RATIO`], resume with
/// zero re-executions — and throughput (`configs_per_sec`) must reach
/// `min_ratio` of the baseline's. Returns the verdict line on success.
pub fn check_against_baseline(
    current: &str,
    baseline: &str,
    min_ratio: f64,
) -> Result<String, String> {
    fn parse(doc: &str, what: &str) -> Result<json::Value, String> {
        let doc = json::parse(doc).map_err(|e| format!("{what}: not valid JSON: {e}"))?;
        let schema = doc.get("schema").and_then(json::Value::as_str);
        if schema != Some(SCHEMA) {
            return Err(format!("{what}: schema {schema:?}, want {SCHEMA:?}"));
        }
        Ok(doc)
    }
    fn f64_at(doc: &json::Value, section: &str, key: &str, what: &str) -> Result<f64, String> {
        doc.get(section)
            .and_then(|s| s.get(key))
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{what}: missing {section}.{key}"))
    }
    let cur = parse(current, "current")?;
    let base = parse(baseline, "baseline")?;

    let evals_ratio = f64_at(&cur, "search", "evals_ratio", "current")?;
    if evals_ratio > MAX_EVALS_RATIO {
        return Err(format!(
            "search executed {:.1}% of exhaustive evaluations (budget {:.0}%)",
            evals_ratio * 100.0,
            MAX_EVALS_RATIO * 100.0
        ));
    }
    let recall = f64_at(&cur, "validation", "recall", "current")?;
    if recall < 1.0 {
        return Err(format!("frontier recall {recall} < 1.0"));
    }
    if cur
        .get("validation")
        .and_then(|v| v.get("frontier_match"))
        .and_then(json::Value::as_bool)
        != Some(true)
    {
        return Err("searched frontier differs from exhaustive".to_owned());
    }
    if cur
        .get("resume")
        .and_then(|v| v.get("ok"))
        .and_then(json::Value::as_bool)
        != Some(true)
    {
        return Err("resumed search re-executed finished jobs".to_owned());
    }
    let cur_rate = f64_at(&cur, "search", "configs_per_sec", "current")?;
    let base_rate = f64_at(&base, "search", "configs_per_sec", "baseline")?;
    if base_rate <= 0.0 {
        return Err(format!("baseline configs_per_sec is {base_rate}"));
    }
    let ratio = cur_rate / base_rate;
    if ratio < min_ratio {
        return Err(format!(
            "search throughput regressed: {cur_rate:.1} configs/s vs baseline {base_rate:.1} \
             (ratio {ratio:.3} < required {min_ratio})"
        ));
    }
    Ok(format!(
        "ok: {cur_rate:.1} configs/s vs baseline {base_rate:.1} (ratio {ratio:.3} >= \
         {min_ratio}); evals ratio {:.3}, recall {recall}",
        evals_ratio
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DseBenchReport {
        DseBenchReport {
            space_target: 100,
            space_generated: 100,
            seed: 7,
            kernels: 7,
            search_wall_ms: 1000.0,
            configs_per_sec: 100.0,
            jobs_scheduled: 250,
            executed: 200,
            evals_ratio: 200.0 / 700.0,
            probed: 6,
            promoted: 12,
            dominated: 10,
            raced: 60,
            infeasible: 10,
            completed: 20,
            frontier_size: 5,
            validation_configs: 24,
            exhaustive_frontier: vec!["U16-L1".into(), "U64-L2".into()],
            search_frontier: vec!["U16-L1".into(), "U64-L2".into()],
            frontier_match: true,
            recall: 1.0,
            hypervolume_exhaustive: 0.51,
            hypervolume_search: 0.51,
            cache_submitted: 500,
            cache_memory_hits: 150,
            cache_disk_hits: 50,
            cache_hit_ratio: 0.4,
            resume_killed_executed: 50,
            resume_disk_hits: 50,
            resume_ok: true,
        }
    }

    #[test]
    fn json_schema_has_all_required_fields() {
        let doc = json::parse(&render_json(&sample())).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some(SCHEMA)
        );
        let search = doc.get("search").expect("search");
        for key in [
            "space_target",
            "space_generated",
            "seed",
            "kernels",
            "wall_ms",
            "configs_per_sec",
            "jobs_scheduled",
            "executed",
            "evals_ratio",
            "probed",
            "promoted",
            "dominated",
            "raced",
            "infeasible",
            "completed",
            "frontier_size",
        ] {
            assert!(search.get(key).is_some(), "search missing {key}");
        }
        let validation = doc.get("validation").expect("validation");
        for key in [
            "configs",
            "exhaustive_frontier",
            "search_frontier",
            "frontier_match",
            "recall",
            "hypervolume_exhaustive",
            "hypervolume_search",
        ] {
            assert!(validation.get(key).is_some(), "validation missing {key}");
        }
        let cache = doc.get("cache").expect("cache");
        for key in ["submitted", "memory_hits", "disk_hits", "hit_ratio"] {
            assert!(cache.get(key).is_some(), "cache missing {key}");
        }
        let resume = doc.get("resume").expect("resume");
        for key in ["killed_executed", "disk_hits", "ok"] {
            assert!(resume.get(key).is_some(), "resume missing {key}");
        }
    }

    #[test]
    fn baseline_gate_enforces_exactness_and_throughput() {
        let good = render_json(&sample());
        assert!(check_against_baseline(&good, &good, 0.5).is_ok());

        // Throughput regression vs a faster baseline.
        let mut fast = sample();
        fast.configs_per_sec = 1000.0;
        let fast = render_json(&fast);
        assert!(check_against_baseline(&good, &fast, 0.5).is_err());
        assert!(check_against_baseline(&good, &fast, 0.05).is_ok());

        // Exactness failures are hard errors regardless of the baseline.
        let mut bad = sample();
        bad.recall = 0.5;
        assert!(check_against_baseline(&render_json(&bad), &good, 0.01).is_err());
        let mut bad = sample();
        bad.frontier_match = false;
        assert!(check_against_baseline(&render_json(&bad), &good, 0.01).is_err());
        let mut bad = sample();
        bad.evals_ratio = 0.9;
        assert!(check_against_baseline(&render_json(&bad), &good, 0.01).is_err());
        let mut bad = sample();
        bad.resume_ok = false;
        assert!(check_against_baseline(&render_json(&bad), &good, 0.01).is_err());

        // Garbage fails loudly.
        assert!(check_against_baseline("{}", &good, 0.5).is_err());
        assert!(check_against_baseline(&good, "not json", 0.5).is_err());
    }

    #[test]
    fn hypervolume_matches_hand_computed_rectangles() {
        // Two points in a unit-ish box; reference = 1.05 x maxima.
        let reference = [(1.0, 100u64), (2.0, 50u64)];
        let frontier = [(1.0, 100u64), (2.0, 50u64)];
        let hv = hypervolume(&frontier, &reference);
        // ref = (2.1, 105); normalized points (0.476, 0.952), (0.952, 0.476).
        // Sweep: first rect (0.952-0.476)*(1-0.952), then (1-0.952)*(1-0.476)...
        // computed against the closed form below.
        let e0 = 1.0 / 2.1;
        let c0 = 100.0 / 105.0;
        let e1 = 2.0 / 2.1;
        let c1 = 50.0 / 105.0;
        let want = (e1 - e0) * (1.0 - c0) + (1.0 - e1) * (1.0 - c1);
        assert!((hv - want).abs() < 1e-12, "hv {hv} want {want}");
        // A dominating frontier has strictly larger hypervolume.
        let better = [(0.5, 25u64)];
        assert!(hypervolume(&better, &reference) > hv);
        // Degenerate inputs.
        assert_eq!(hypervolume(&[], &reference), 0.0);
        assert_eq!(hypervolume(&frontier, &[]), 0.0);
    }
}
